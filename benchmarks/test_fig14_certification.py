"""Figure 14 — certification-based database replication.

Two concurrent conflicting transactions execute optimistically on shadow
copies; ABCAST orders their writesets; the deterministic certification
commits one and aborts the other at every site.
"""

from conftest import figure_block, report
from repro import AC, END, EX, RE, Operation, ReplicatedSystem


def scenario():
    system = ReplicatedSystem("certification", replicas=3, clients=2, seed=1)
    ops = [Operation.update("x", "add", 1)]
    f0 = system.client(0).submit(ops)
    f1 = system.client(1).submit(list(ops))
    r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
    system.settle(300)
    return system, r0, r1


def test_fig14_certification(once):
    system, r0, r1 = once(scenario)
    winner = r0 if r0.committed else r1
    loser = r1 if r0.committed else r0
    assert winner.committed and not loser.committed
    assert "certification" in loser.reason

    observed = system.tracer.observed_sequence(winner.request_id,
                                               source=winner.server)
    assert observed == [RE, EX, AC, END], observed
    # Certification outcomes are identical at every site, with no voting.
    outcomes = {
        (system.protocol_at(n).certifier.certified,
         system.protocol_at(n).certifier.rejected)
        for n in system.replica_names
    }
    assert outcomes == {(1, 1)}
    assert system.net.stats.by_type.get("2pc.prepare", 0) == 0
    assert all(system.store_of(n).read("x") == 1 for n in system.replica_names)

    report(
        "fig14_certification",
        figure_block(
            system, winner, "Figure 14: Certification-based replication",
            notes=[
                "EX before any coordination (shadow copies, optimistic)",
                "AC = ABCAST + deterministic certification; no extra messages",
                f"conflicting transaction {loser.request_id} aborted at all sites",
            ],
        ),
        system=system,
    )
