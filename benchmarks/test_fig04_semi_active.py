"""Figure 4 — semi-active replication.

A request with two non-deterministic points: the EX/AC pair repeats per
choice, with the leader resolving each via VSCAST.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, SC, Operation


def scenario():
    return run_single_request(
        "semi_active",
        [Operation.update("x", "random_token"), Operation.update("y", "random_token")],
        replicas=3,
        seed=1,
    )


def test_fig04_semi_active_replication(once):
    system, result = once(scenario)
    assert result.committed

    for lane in system.replica_names:
        observed = system.tracer.observed_sequence(result.request_id, source=lane)
        assert observed == [RE, SC, EX, AC, EX, AC, END], (lane, observed)
    mechanisms = system.tracer.mechanisms_used(result.request_id)
    assert mechanisms[SC] == "abcast" and mechanisms[AC] == "vscast"
    # Followers adopted the leader's choices on both items.
    for item in ("x", "y"):
        values = {system.store_of(n).read(item) for n in system.replica_names}
        assert len(values) == 1, f"divergence on {item}"

    report(
        "fig04_semi_active",
        figure_block(
            system, result, "Figure 4: Semi-active replication",
            notes=[
                "EX and AC repeated once per non-deterministic choice (2 here)",
                "leader r0 decided both choices and VSCAST them to followers",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
