"""Performance study (Section 6) — the point of replicating at all.

Section 4 opens: "Replication in database systems is done mainly for
performance reasons.  The objective is to access data locally in order to
improve response times and eliminate the overhead of having to
communicate with other sites."

This benchmark builds a WAN: three sites, each client co-located with one
replica (0.2-unit link) and far from the others (8-unit links), running a
read-heavy workload.  The baseline is the same workload against a single
unreplicated server that two of the three clients must reach over the
WAN.  Expected shape: replication collapses read latency to the local
round-trip for every technique that serves reads locally, while the
*update* cost depends on the technique — lazy pays nothing, eager pays
WAN coordination.
"""

from conftest import format_rows, report
from repro import ReplicatedSystem
from repro.analysis import LatencyStats
from repro.net import ConstantLatency, PerLinkLatency
from repro.workload import ClosedLoopDriver, WorkloadGenerator, WorkloadSpec

LOCAL = 0.2
WAN = 8.0
SPEC = WorkloadSpec(items=12, read_fraction=0.8, ops_per_transaction=1)


def wan_latency(replicas, clients):
    """Each client is local to at most one distinct site.

    With fewer replicas than clients (the unreplicated baseline), the
    surplus clients have no nearby copy and must cross the WAN — which is
    the whole point of the comparison.
    """
    latency = PerLinkLatency(default=ConstantLatency(WAN))
    for i in range(min(clients, replicas)):
        latency.set_link(f"c{i}", f"r{i}", ConstantLatency(LOCAL))
    return latency


def run_one(protocol, replicas=3):
    system = ReplicatedSystem(
        protocol, replicas=replicas, clients=3, seed=51,
        latency=wan_latency(replicas, 3),
        config={"abcast": "sequencer", "propagation_delay": 10.0},
    )
    driver = ClosedLoopDriver(
        system, WorkloadGenerator(SPEC, seed=51),
        requests_per_client=12, think_time=5.0,
    )
    driver.run(settle=300.0)
    reads = [r for r in driver.results if r.committed and not any(
        op.is_write for op in r.operations)]
    writes = [r for r in driver.results if r.committed and any(
        op.is_write for op in r.operations)]
    return {
        "read": LatencyStats.of(r.latency for r in reads).mean,
        "write": LatencyStats.of(r.latency for r in writes).mean,
        "reads": len(reads),
        "writes": len(writes),
    }


def sweep():
    rows = {
        name: run_one(name)
        for name in ("lazy_ue", "lazy_primary", "eager_ue_abcast", "eager_primary")
    }
    rows["unreplicated"] = run_one("lazy_primary", replicas=1)
    return rows


def test_perf_local_reads(once):
    rows = once(sweep)

    unreplicated_read = rows["unreplicated"]["read"]
    # Replication's raison d'etre: local reads beat WAN reads by ~the
    # WAN/LAN ratio for every technique that reads locally.
    for name in ("lazy_ue", "lazy_primary", "eager_ue_abcast", "eager_primary"):
        assert rows[name]["read"] < unreplicated_read / 5, (name, rows)
    # Lazy UE also keeps updates local; eager techniques pay WAN rounds.
    assert rows["lazy_ue"]["write"] < rows["eager_ue_abcast"]["write"]
    assert rows["lazy_ue"]["write"] < rows["eager_primary"]["write"]

    table = [
        [name, f"{row['read']:.2f}", f"{row['write']:.2f}",
         f"{row['reads']}/{row['writes']}"]
        for name, row in rows.items()
    ]
    report(
        "perf_local_reads",
        "Performance study: local access on a WAN "
        f"(local link {LOCAL}, WAN link {WAN}; 80% reads)\n\n"
        + format_rows(["configuration", "mean read lat", "mean write lat",
                       "reads/writes"], table)
        + "\n\nshape: replication collapses read latency to the local "
        "round-trip;\nupdate latency then depends on eager vs lazy coordination",
    )
