"""Figure 3 — passive (primary-backup) replication.

The primary executes (even a non-deterministic operation), VSCASTs the
after-image, and responds; backups only apply.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, Operation


def scenario():
    return run_single_request(
        "passive", [Operation.update("x", "random_token")], replicas=3, seed=1
    )


def test_fig03_passive_replication(once):
    system, result = once(scenario)
    assert result.committed and result.server == "r0"

    primary = system.tracer.observed_sequence(result.request_id, source="r0")
    assert primary == [RE, EX, AC, END], primary
    assert system.tracer.mechanisms_used(result.request_id)[AC] == "vscast"
    for backup in ("r1", "r2"):
        observed = system.tracer.observed_sequence(result.request_id, source=backup)
        assert observed == [AC], "backups apply, they do not execute"
    # Non-determinism is safe: all replicas hold the primary's value.
    values = {system.store_of(n).read("x") for n in system.replica_names}
    assert len(values) == 1

    report(
        "fig03_passive",
        figure_block(
            system, result, "Figure 3: Passive replication",
            notes=[
                "no SC phase; AC = VSCAST of the primary's after-image",
                "operation was non-deterministic (random_token) yet replicas agree",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
