"""Ablation — failure-detector aggressiveness (Section 3.5's trade-off).

"The main advantage [of semi-passive] ... is to allow for aggressive
time-outs ... without incurring a too important cost for incorrect
failure suspicions."  This ablation sweeps the suspicion timeout and
measures, under jittery latency (which provokes wrong suspicions):

* how many wrong suspicions occur,
* what they cost in **passive** replication — view changes (full
  reconfiguration protocol runs), and
* what they cost in **semi-passive** replication — merely redundant
  executions at extra coordinators, with no membership machinery at all.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.net import UniformLatency

TIMEOUTS = [1.5, 4.0, 12.0]


def run_one(protocol, fd_timeout, seed=31):
    system = ReplicatedSystem(
        protocol, replicas=3, clients=1, seed=seed,
        latency=UniformLatency(0.4, 2.2),
        fd_interval=1.0, fd_timeout=fd_timeout, client_timeout=60.0,
    )

    def loop():
        for _ in range(10):
            yield system.client(0).submit([Operation.update("x", "add", 1)])
            yield system.sim.timeout(12.0)

    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    system.settle(400)
    wrong = sum(
        system.replicas[n].detector.wrong_suspicions for n in system.replica_names
    )
    if protocol == "passive":
        reconfig_cost = max(
            system.protocol_at(n).view_group.view.view_id
            for n in system.replica_names
        )
    else:
        # Redundant executions: every coordinator that evaluated its thunk,
        # minus the 10 winning evaluations the requests actually needed.
        executed = sum(
            len(system.protocol_at(n).consensus._computed)
            for n in system.replica_names
        )
        reconfig_cost = max(0, executed - 10)
    committed = sum(1 for r in system.client(0).results if r.committed)
    value = max(
        system.store_of(n).read("x") or 0 for n in system.live_replicas()
    )
    return {
        "wrong": wrong,
        "cost": reconfig_cost,
        "committed": committed,
        "exact": value == committed,
    }


def sweep():
    table = {}
    for timeout in TIMEOUTS:
        for protocol in ("passive", "semi_passive"):
            table[(protocol, timeout)] = run_one(protocol, timeout)
    return table


def test_ablation_fd_timeout(once):
    table = once(sweep)

    # Aggressive timeouts provoke more wrong suspicions in both.
    for protocol in ("passive", "semi_passive"):
        wrongs = [table[(protocol, t)]["wrong"] for t in TIMEOUTS]
        assert wrongs[0] >= wrongs[-1], (protocol, wrongs)
    # At the most aggressive setting the scenario must actually misfire.
    assert table[("passive", 1.5)]["wrong"] + table[("semi_passive", 1.5)]["wrong"] > 0
    # Passive pays wrong suspicions with membership reconfigurations;
    # semi-passive never reconfigures (its cost is bounded redundant work).
    assert table[("passive", 1.5)]["cost"] > table[("passive", 12.0)]["cost"]
    # Correctness must survive the flapping everywhere.
    for key, row in table.items():
        assert row["committed"] == 10, key
        assert row["exact"], key

    rows = []
    for timeout in TIMEOUTS:
        for protocol in ("passive", "semi_passive"):
            row = table[(protocol, timeout)]
            cost_label = "view changes" if protocol == "passive" else "extra execs"
            rows.append([
                protocol, f"{timeout:g}", str(row["wrong"]),
                f"{row['cost']} {cost_label}", "yes" if row["exact"] else "NO",
            ])
    report(
        "ablation_fd_timeout",
        "Ablation: failure-detector timeout under jittery latency\n"
        "(10 updates; wrong suspicions and what they cost)\n\n"
        + format_rows(
            ["technique", "fd timeout", "wrong suspicions", "suspicion cost", "exact"],
            rows,
        )
        + "\n\nshape: aggressive timeouts -> more wrong suspicions; passive "
        "pays with\nview changes, semi-passive only with redundant executions "
        "(Section 3.5's claim)",
    )
