"""Performance study (Section 6) — behaviour under failures.

Crashes one replica mid-run under every technique and measures the
client-visible disruption: worst-case response time, retries, and lost
requests.  Expected shape (Figure 5's transparency column made
quantitative): active/semi-passive mask the crash entirely; passive and
the primary-copy database techniques stall for roughly the failure-
detection + reconfiguration time; 2PC blocking shows up in the eager
primary technique's in-doubt handling.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem

TECHNIQUES = ["active", "semi_passive", "passive", "eager_primary", "lazy_primary"]
CRASH_AT = 40.5  # between two requests, so one is always freshly in flight
FD_TIMEOUT = 8.0
GAP = 8.0


def run_one(name):
    system = ReplicatedSystem(
        name, replicas=3, seed=17, fd_interval=2.0, fd_timeout=FD_TIMEOUT,
        client_timeout=30.0,
    )
    system.injector.crash_at(CRASH_AT, "r0")

    def loop():
        results = []
        for i in range(12):
            results.append(
                (yield system.client(0).submit([Operation.update("x", "add", 1)]))
            )
            yield system.sim.timeout(GAP)
        return results

    handle = system.sim.spawn(loop())
    results = system.sim.run_until_done(handle)
    system.settle(400)
    worst = max(r.latency for r in results)
    retries = sum(r.retries for r in results)
    committed = sum(1 for r in results if r.committed)
    survivors_value = {
        system.store_of(n).read("x") for n in system.live_replicas()
    }
    return {
        "worst": worst,
        "retries": retries,
        "committed": committed,
        "consistent": len(survivors_value) == 1,
        "final": survivors_value.pop(),
    }


def sweep():
    return {name: run_one(name) for name in TECHNIQUES}


def test_perf_failover(once):
    rows = once(sweep)

    # Transparent techniques: no retries, no visible stall beyond a round.
    for name in ("active", "semi_passive"):
        assert rows[name]["retries"] == 0, (name, rows[name])
        assert rows[name]["committed"] == 12
    # Primary-based techniques: the crash is visible as at least one retry
    # and a worst-case latency of the order of detection + reconfiguration.
    for name in ("passive", "eager_primary", "lazy_primary"):
        assert rows[name]["retries"] >= 1, (name, rows[name])
        assert rows[name]["worst"] > FD_TIMEOUT, (name, rows[name])
    # Transparent techniques' worst case beats the primary-based ones.
    assert rows["active"]["worst"] < rows["passive"]["worst"]
    # Survivors must agree in every technique.
    for name, row in rows.items():
        assert row["consistent"], name
    # Strong-consistency techniques lose nothing and double-apply nothing;
    # lazy primary copy may genuinely LOSE updates the crashed primary had
    # committed but not yet propagated — the paper's weak-consistency price.
    for name in ("active", "semi_passive", "passive", "eager_primary"):
        assert rows[name]["final"] == rows[name]["committed"], (name, rows[name])
    assert rows["lazy_primary"]["final"] <= rows["lazy_primary"]["committed"]

    table = [
        [name, f"{rows[name]['worst']:.1f}", str(rows[name]["retries"]),
         f"{rows[name]['committed']}/12", str(rows[name]["final"]),
         str(rows[name]["committed"] - rows[name]["final"])]
        for name in TECHNIQUES
    ]
    report(
        "perf_failover",
        "Performance study: crash of one replica (the primary, where "
        "applicable) at t=40.5\n\n"
        + format_rows(
            ["technique", "worst latency", "client retries", "committed",
             "final x", "lost updates"],
            table,
        )
        + "\n\nshape: transparent techniques (active, semi-passive) mask the "
        "crash;\nprimary-based ones stall for detection + failover and force retries",
    )
