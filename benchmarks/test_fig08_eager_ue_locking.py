"""Figure 8 — eager update everywhere with distributed locking.

One update from a client to its local replica: write locks at all sites
(SC), symmetric execution (EX), 2PC (AC), then the response.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, SC, Operation


def scenario():
    return run_single_request(
        "eager_ue_locking", [Operation.update("x", "add", 5)], replicas=3, seed=1
    )


def test_fig08_eager_ue_locking(once):
    system, result = once(scenario)
    assert result.committed

    delegate = system.tracer.observed_sequence(result.request_id, source="r0")
    assert delegate == [RE, SC, EX, AC, END], delegate
    mechanisms = system.tracer.mechanisms_used(result.request_id)
    assert mechanisms[SC] == "locks" and mechanisms[AC] == "2pc"
    # Lock requests reached every site; all installed the update.
    assert system.net.stats.by_type["ueld.lock"] == 3
    for name in system.replica_names:
        assert system.store_of(name).read("x") == 5
        assert system.replicas[name].tm.locks.holders_of("x") == {}

    report(
        "fig08_eager_ue_locking",
        figure_block(
            system, result, "Figure 8: Eager update everywhere, distributed locking",
            notes=[
                "SC = write lock granted at all 3 sites; AC = 2PC",
                "locks released everywhere after the commit decision",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
