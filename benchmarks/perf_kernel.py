"""Kernel & network hot-path microbenchmarks — the perf trajectory seed.

Measures the raw cost of the discrete-event kernel and the network
fabric under workloads shaped like the Section 6 performance study:

* ``timer_churn`` — events/sec through the bare event loop under the
  RPC-guard pattern (arm a far-future timer, do a short wait, cancel
  the guard).  This is exactly the load ``Node.call(timeout=...)`` puts
  on the heap, and the one lazy-deletion compaction targets.
* ``rpc`` — messages/sec through ``Node.call``/``Node.reply`` round
  trips with a timeout guard on every call.
* ``broadcast`` — messages/sec through ``Network.broadcast`` fan-out
  with a nested payload, across partition/heal churn.
* ``soak`` — events/sec and messages/sec of the real soak workload
  (same spec as ``benchmarks/test_perf_soak.py``) for one DS and one DB
  technique: kernel + protocols + workload driver, end to end.

``python benchmarks/perf_kernel.py --json BENCH_kernel.json`` (or
``make bench-json``) writes the trajectory file: the measured figures
next to the recorded pre-optimization baseline
(``benchmarks/kernel_baseline.json``) and the speedup per workload.
``--record-baseline`` rewrites the baseline file instead — only done
once, on the commit *before* a round of kernel work, so every later run
has a fixed reference point.

Wall-clock timing lives here, outside ``src/repro`` — the library
itself must stay free of real time (repro.lint D103); the simulated
executions these benchmarks time are fully deterministic, only their
duration varies by machine.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional

if __name__ == "__main__":  # direct script run: make src/ importable
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.net import Network, Node
from repro.net.latency import ConstantLatency
from repro.sim import Simulator
from repro.workload import WorkloadSpec, run_workload

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "kernel_baseline.json")

SOAK_SPEC = WorkloadSpec(items=24, read_fraction=0.5, ops_per_transaction=1)
SOAK_TECHNIQUES = ("active", "eager_ue_locking")


def _noop() -> None:
    return None


# -- workloads ---------------------------------------------------------------


def bench_timer_churn(procs: int = 32, iters: int = 4000,
                      guard_delay: float = 50_000.0) -> Dict[str, float]:
    """Event-loop throughput under timer arm/cancel churn.

    Every iteration mirrors one guarded RPC: schedule a far-future
    timeout guard, wait a short simulated delay, cancel the guard.  The
    cancelled guards are dead heap entries until compaction (or, before
    it existed, until their fire time)."""
    sim = Simulator(seed=7)

    def churn():
        for _ in range(iters):
            guard = sim.schedule(guard_delay, _noop)
            yield sim.timeout(1.0)
            guard.cancel()

    for index in range(procs):
        sim.spawn(churn(), name=f"churn-{index}")
    start = time.perf_counter()
    sim.run(until=iters / 2.0)
    mid_pending = sim.pending_events  # dead-entry bloat shows up here
    sim.run()
    wall = time.perf_counter() - start
    return {
        "events": sim.events_processed,
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.events_processed / wall, 1),
        "mid_run_pending": mid_pending,
    }


class _EchoServer(Node):
    def __init__(self, sim: Simulator, network: Network, name: str) -> None:
        super().__init__(sim, network, name)
        self.on("req", self._on_req)

    def _on_req(self, message) -> None:
        self.reply(message, ack=message["seq"])


def bench_rpc(clients: int = 8, servers: int = 4, calls: int = 2000,
              call_timeout: float = 400.0) -> Dict[str, float]:
    """Request/reply throughput with a timeout guard on every call."""
    sim = Simulator(seed=11)
    net = Network(sim, latency=ConstantLatency(1.0))
    for index in range(servers):
        _EchoServer(sim, net, f"s{index}")

    def client(node: Node) -> Any:
        for seq in range(calls):
            yield node.call(f"s{seq % servers}", "req",
                            timeout=call_timeout, seq=seq)

    for index in range(clients):
        node = Node(sim, net, f"c{index}")
        node.spawn(client(node))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    expected = clients * calls * 2  # one data + one reply per call
    assert net.stats.delivered == expected, (net.stats.delivered, expected)
    return {
        "messages": net.stats.delivered,
        "events": sim.events_processed,
        "wall_s": round(wall, 4),
        "messages_per_sec": round(net.stats.delivered / wall, 1),
        "events_per_sec": round(sim.events_processed / wall, 1),
    }


def bench_broadcast(fanout: int = 40, rounds: int = 400) -> Dict[str, float]:
    """Broadcast fan-out with a nested payload and partition churn."""
    sim = Simulator(seed=13)
    net = Network(sim, latency=ConstantLatency(1.0))
    hub = Node(sim, net, "hub")
    sinks = []
    for index in range(fanout):
        node = Node(sim, net, f"r{index}")
        node.on("state", lambda message: None)
        sinks.append(node.name)
    half = ["hub"] + sinks[: fanout // 2]
    payload = {"vector": {name: 0 for name in sinks[:8]},
               "body": "x" * 64, "round": 0}

    def driver():
        for round_no in range(rounds):
            if round_no % 50 == 25:
                net.partition(half)
            elif round_no % 50 == 0:
                net.heal()
            payload["round"] = round_no
            net.broadcast("hub", sinks, "state", payload=payload)
            yield sim.timeout(1.0)

    hub.spawn(driver())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {
        "messages": net.stats.sent,
        "delivered": net.stats.delivered,
        "events": sim.events_processed,
        "wall_s": round(wall, 4),
        "messages_per_sec": round(net.stats.sent / wall, 1),
        "events_per_sec": round(sim.events_processed / wall, 1),
    }


def bench_soak(technique: str) -> Dict[str, float]:
    """The real Section 6 soak row for one technique, timed end to end."""
    start = time.perf_counter()
    system, driver, summary = run_workload(
        technique, spec=SOAK_SPEC, replicas=5, clients=4,
        requests_per_client=30, seed=101, think_time=8.0, retry_aborts=True,
        settle=600.0, config={"abcast": "sequencer"},
        system_kwargs={"trace_max_events": 200_000},
    )
    wall = time.perf_counter() - start
    events = system.sim.events_processed
    messages = system.net.stats.sent
    assert summary.requests == 120, summary.requests
    return {
        "events": events,
        "messages": messages,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
        "messages_per_sec": round(messages / wall, 1),
    }


WORKLOADS: Dict[str, Callable[[], Dict[str, float]]] = {
    "timer_churn": bench_timer_churn,
    "rpc": bench_rpc,
    "broadcast": bench_broadcast,
}
for _technique in SOAK_TECHNIQUES:
    WORKLOADS[f"soak_{_technique}"] = (
        lambda technique=_technique: bench_soak(technique)
    )


# -- harness -----------------------------------------------------------------


def run_benchmarks(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every workload ``repeats`` times; keep the fastest wall time.

    Event and message counts are asserted identical across repeats —
    the simulated executions are deterministic, only wall time moves.
    """
    results: Dict[str, Dict[str, float]] = {}
    for name, workload in WORKLOADS.items():
        best: Optional[Dict[str, float]] = None
        for _ in range(repeats):
            # Collect between samples so one workload's garbage (e.g. the
            # churn bench's heap) is not paid for by the next sample.
            gc.collect()
            sample = workload()
            if best is not None:
                assert sample["events"] == best["events"], name
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        assert best is not None
        results[name] = best
    return results


def load_baseline() -> Optional[Dict[str, Any]]:
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def trajectory(results: Dict[str, Dict[str, float]],
               baseline: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine measured figures with the recorded baseline into one doc."""
    doc: Dict[str, Any] = {
        "schema": 1,
        "unit": "per wall-clock second, best of N repeats",
        "python": platform.python_version(),
        "workloads": results,
        "events_per_sec": results["timer_churn"]["events_per_sec"],
        "messages_per_sec": results["rpc"]["messages_per_sec"],
        "soak": {
            name[len("soak_"):]: {
                "events_per_sec": row["events_per_sec"],
                "messages_per_sec": row["messages_per_sec"],
            }
            for name, row in results.items() if name.startswith("soak_")
        },
    }
    if baseline is not None:
        speedup_events = {}
        speedup_wall = {}
        for name, row in results.items():
            base_row = baseline.get("workloads", {}).get(name)
            if not base_row:
                continue
            if base_row.get("events_per_sec"):
                speedup_events[name] = round(
                    row["events_per_sec"] / base_row["events_per_sec"], 2
                )
            if base_row.get("wall_s") and row.get("wall_s"):
                # Fair even when an optimization removes dead events:
                # same simulated workload, less wall time.
                speedup_wall[name] = round(base_row["wall_s"] / row["wall_s"], 2)
        doc["baseline"] = baseline
        doc["speedup_events_per_sec"] = speedup_events
        doc["speedup_wall"] = speedup_wall
    return doc


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the trajectory JSON to PATH")
    parser.add_argument("--record-baseline", action="store_true",
                        help="rewrite benchmarks/kernel_baseline.json "
                             "with this run's figures")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    results = run_benchmarks(repeats=args.repeats)
    if args.record_baseline:
        doc = {
            "schema": 1,
            "recorded": "pre-optimization kernel (see CHANGES.md)",
            "python": platform.python_version(),
            "workloads": results,
        }
        with open(BASELINE_PATH, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"baseline recorded -> {BASELINE_PATH}")

    doc = trajectory(results, load_baseline())
    text = json.dumps(doc, indent=1, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"trajectory -> {args.json}")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
