"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one artefact of the paper — a phase-diagram
figure (2-4, 7-14), a classification matrix (5, 6, 15, 16) or a row of
the Section 6 performance study — prints it, and writes it under
``benchmarks/output/`` for inspection.
"""

from __future__ import annotations

import os
from typing import List, Optional

import pytest

from repro import Operation, ReplicatedSystem
from repro.obs import write_artifacts
from repro.viz import render_figure, render_phase_timeline

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def report(name: str, text: str, system=None) -> str:
    """Print a reproduction block and persist it to benchmarks/output/.

    When ``system`` is an observed :class:`ReplicatedSystem`, the run's
    span trace (Perfetto JSON + JSONL) and metrics report are written
    beside the text artefact under the same stem.
    """
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if system is not None and getattr(system, "observer", None) is not None:
        node_order = system.replica_names + [c.name for c in system.clients]
        write_artifacts(
            system.observer, os.path.join(OUTPUT_DIR, name),
            node_order=node_order, title=name,
        )
    print()
    print(text)
    return path


def run_single_request(
    protocol: str,
    operations: List[Operation],
    replicas: int = 3,
    seed: int = 1,
    config: Optional[dict] = None,
    settle: float = 300.0,
    observe: bool = True,
    **system_kwargs,
):
    """Build a system, execute one request, let background work finish.

    Observed by default so every figure benchmark can drop its trace
    beside its text output (pass the system to :func:`report`).
    """
    system = ReplicatedSystem(
        protocol, replicas=replicas, seed=seed, config=config,
        observe=observe, **system_kwargs
    )
    result = system.execute(operations)
    system.settle(settle)
    return system, result


def figure_block(system, result, title: str, lanes=None, notes=None) -> str:
    """Render a figure: declared descriptor + observed swim-lane timeline."""
    lanes = lanes if lanes is not None else system.replica_names
    descriptor = system.info.descriptor_for(len(result.operations))
    timeline = render_phase_timeline(system.trace, result.request_id, lanes)
    return render_figure(title, descriptor.render(), timeline, notes=notes)


def format_rows(headers: List[str], rows: List[List[object]]) -> str:
    """Aligned text table for performance-study outputs."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


@pytest.fixture
def once(benchmark):
    """Run a scenario exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
