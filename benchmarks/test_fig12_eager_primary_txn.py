"""Figure 12 — eager primary copy for multi-operation transactions.

A three-operation transaction: the EX / AC(change propagation) pair
repeats per operation, then one final AC(2PC) commits everywhere.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, Operation


def scenario():
    return run_single_request(
        "eager_primary",
        [
            Operation.update("x", "add", 1),
            Operation.update("y", "add", 2),
            Operation.update("z", "add", 3),
        ],
        replicas=3,
        seed=1,
    )


def test_fig12_eager_primary_transactions(once):
    system, result = once(scenario)
    assert result.committed

    observed = system.tracer.observed_sequence(result.request_id, source="r0")
    # RE, then (EX, AC-propagation) x 3, final AC-2pc, END.
    assert observed == [RE, EX, AC, EX, AC, EX, AC, AC, END], observed
    descriptor = system.info.txn_descriptor
    assert system.tracer.matches(
        descriptor, result.request_id, source="r0", iterations=3
    )
    # Atomicity: either all three items or none — here, all.
    for name in system.replica_names:
        assert system.store_of(name).read("x") == 1
        assert system.store_of(name).read("y") == 2
        assert system.store_of(name).read("z") == 3

    report(
        "fig12_eager_primary_txn",
        figure_block(
            system, result,
            "Figure 12: Eager primary copy, multi-operation transaction",
            notes=[
                "EX/AC(change propagation) looped once per operation (3 ops)",
                "final AC = 2PC committing the whole transaction atomically",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
