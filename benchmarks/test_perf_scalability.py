"""Performance study (Section 6) — scaling the number of replicas.

Sweeps the group size and reports per-technique message cost and response
time.  Expected shape: coordination-bound techniques pay linearly (or
worse) more messages per transaction as replicas are added, while their
response time stays roughly flat (rounds run in parallel); lazy primary's
response time is independent of the group size, it only ships more log
copies afterwards.
"""

from conftest import format_rows, report
from repro.analysis import messages_per_request
from repro.workload import WorkloadSpec, run_workload

SPEC = WorkloadSpec(items=16, read_fraction=0.0, ops_per_transaction=1)
SIZES = [2, 3, 5, 7]
TECHNIQUES = ["eager_primary", "eager_ue_locking", "lazy_primary", "active"]


def sweep():
    table = {}
    for name in TECHNIQUES:
        for n in SIZES:
            system, driver, summary = run_workload(
                name, spec=SPEC, replicas=n, clients=1, requests_per_client=8,
                seed=5, think_time=15.0, settle=300.0,
                config={"abcast": "sequencer"},
            )
            table[(name, n)] = (
                summary.latency.mean,
                messages_per_request(system.net.stats, summary.requests),
            )
    return table


def test_perf_scalability(once):
    table = once(sweep)

    for name in TECHNIQUES:
        messages = [table[(name, n)][1] for n in SIZES]
        assert messages == sorted(messages), (
            f"{name}: message cost must not shrink as replicas grow: {messages}"
        )
        assert messages[-1] > messages[0], f"{name}: cost must grow with group size"
    # Locking pays the steepest growth (per-op lock round at every site
    # plus 2PC), lazy primary the shallowest (one ship per secondary).
    lock_growth = table[("eager_ue_locking", 7)][1] - table[("eager_ue_locking", 2)][1]
    lazy_growth = table[("lazy_primary", 7)][1] - table[("lazy_primary", 2)][1]
    assert lock_growth > lazy_growth
    # Lazy primary's response time does not depend on the group size.
    lazy_latencies = {round(table[("lazy_primary", n)][0], 2) for n in SIZES}
    assert len(lazy_latencies) == 1, lazy_latencies

    rows = []
    for name in TECHNIQUES:
        for n in SIZES:
            latency, msgs = table[(name, n)]
            rows.append([name, str(n), f"{latency:.2f}", f"{msgs:.1f}"])
    report(
        "perf_scalability",
        "Performance study: scaling the replica count\n\n"
        + format_rows(["technique", "replicas", "mean latency", "messages/txn"], rows)
        + "\n\nshape: message cost grows with group size; steepest for "
        "distributed locking, shallowest for lazy primary",
    )
