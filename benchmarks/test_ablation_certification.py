"""Ablation — certification test: backward read validation vs
first-committer-wins write validation.

Section 5.4.2's certification "decides whether the operations can be
executed correctly"; *which* conflicts count is a policy knob.  The
``read`` mode (serializability: a transaction dies if anything it read
changed) aborts read-write conflicts that the ``write`` mode (snapshot-
isolation style: only write-write conflicts matter) lets through.  The
workload: transactions read a hot item and write a private one, while a
writer keeps updating the hot item — pure read-write conflicts.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem


def run_one(mode, seed=47):
    system = ReplicatedSystem(
        "certification", replicas=3, clients=2, seed=seed,
        config={"certification_mode": mode, "abcast": "sequencer"},
    )

    def hot_writer():
        for i in range(10):
            yield system.client(0).submit([Operation.write("hot", i)])
            yield system.sim.timeout(7.0)

    def reader_writer():
        outcomes = []
        for i in range(10):
            outcomes.append((yield system.client(1).submit([
                Operation.read("hot"),
                Operation.write(f"private-{i}", i),
            ])))
            yield system.sim.timeout(7.0)
        return outcomes

    writer = system.sim.spawn(hot_writer())
    reader = system.sim.spawn(reader_writer())
    system.sim.run_until_done(system.sim.all_of([writer, reader]))
    system.settle(300)
    outcomes = reader.result
    aborted = sum(1 for r in outcomes if not r.committed)
    return {
        "aborted": aborted,
        "converged": system.converged(),
        "rejected_total": system.protocol_at("r0").certifier.rejected,
    }


def sweep():
    return {mode: run_one(mode) for mode in ("read", "write")}


def test_ablation_certification_mode(once):
    table = once(sweep)

    # Read validation kills read-write conflicts; write validation does
    # not see any conflict in this workload at all.
    assert table["read"]["aborted"] > 0, "read mode must abort rw-conflicts"
    assert table["write"]["aborted"] == 0, table["write"]
    assert table["read"]["aborted"] > table["write"]["aborted"]
    for mode in ("read", "write"):
        assert table[mode]["converged"], mode

    rows = [
        [mode, f"{table[mode]['aborted']}/10", str(table[mode]["rejected_total"]),
         "yes" if table[mode]["converged"] else "NO"]
        for mode in ("read", "write")
    ]
    report(
        "ablation_certification",
        "Ablation: certification policy on a read-write-conflict workload\n"
        "(reader-writer txns racing a hot-item writer)\n\n"
        + format_rows(
            ["mode", "reader aborts", "site rejections", "converged"], rows
        )
        + "\n\nshape: backward read validation (one-copy serializability) "
        "aborts what\nfirst-committer-wins (snapshot-style) admits — the "
        "consistency/abort-rate dial",
    )
