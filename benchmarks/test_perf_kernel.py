"""Performance study — kernel & network hot-path microbenchmarks.

Pytest wrapper around :mod:`benchmarks.perf_kernel`: runs every kernel
workload (timer churn, RPC round trips, broadcast fan-out, the two soak
rows), prints the figures next to the recorded pre-optimization baseline
and asserts the simulated executions still look right (event/message
counts, timeout hygiene).  ``make bench-json`` runs the same harness
from the command line and writes ``BENCH_kernel.json`` at the repo root.

Wall-clock thresholds are deliberately absent — CI machines vary too
much for hard time limits; the trajectory file is the artefact, and the
recorded baseline in ``benchmarks/kernel_baseline.json`` is the fixed
reference point for speedup claims.
"""

from conftest import format_rows, report
from perf_kernel import WORKLOADS, load_baseline, run_benchmarks, trajectory


def test_perf_kernel(once):
    results = once(lambda: run_benchmarks(repeats=3))

    churn = results["timer_churn"]
    # Lazy-deletion compaction: the cancelled guard timers must not pile
    # up in the heap (pre-compaction this figure was ~64k).
    assert churn["mid_run_pending"] < 5_000, churn

    rpc = results["rpc"]
    assert rpc["messages"] == 8 * 2000 * 2, rpc

    for name in ("soak_active", "soak_eager_ue_locking"):
        assert results[name]["events"] > 0, name

    doc = trajectory(results, load_baseline())
    table = []
    for name, row in results.items():
        speedup = doc.get("speedup_wall", {}).get(name)
        table.append([
            name,
            f"{row['events_per_sec']:.0f}" if "events_per_sec" in row else "-",
            f"{row.get('messages_per_sec', 0):.0f}" if "messages_per_sec" in row else "-",
            f"{row['wall_s']:.4f}",
            f"{speedup:.2f}x" if speedup else "n/a",
        ])
    report(
        "perf_kernel",
        "Kernel & network hot paths: best-of-3 wall clock per workload\n"
        "(speedup vs benchmarks/kernel_baseline.json, recorded "
        "pre-optimization)\n\n"
        + format_rows(
            ["workload", "events/s", "msgs/s", "wall s", "speedup"],
            table,
        ),
    )
