"""Performance study (Section 6) — response time across techniques.

The paper closes by planning "a performance study of the different
approaches"; the eager/lazy distinction is explicitly about response
time ("Response times have to be short not allowing any communication
within a transaction", Section 4.6).  This benchmark runs the identical
update workload under every technique and reports the latency
distribution.

Expected shape: lazy techniques answer after one client round-trip;
primary-copy eager pays propagation + 2PC; update-everywhere eager pays
the most coordination; active/semi-* pay the ordering protocol.
"""

import os

from conftest import OUTPUT_DIR, format_rows, report
from repro.obs import write_artifacts
from repro.profiling import dominant_phase_for
from repro.workload import WorkloadSpec, run_workload

TECHNIQUES = [
    "active", "passive", "semi_active", "semi_passive",
    "eager_primary", "eager_ue_locking", "eager_ue_abcast",
    "lazy_primary", "lazy_ue", "certification",
]

SPEC = WorkloadSpec(items=16, read_fraction=0.0, ops_per_transaction=1)


def sweep():
    rows = {}
    dominant = {}
    for name in TECHNIQUES:
        config = {"abcast": "sequencer"}  # identical, cheap ordering for all
        system, driver, summary = run_workload(
            name, spec=SPEC, replicas=3, clients=2, requests_per_client=10,
            seed=21, think_time=10.0, settle=300.0, config=config,
            observe=True,
        )
        dominant[name] = dominant_phase_for(
            system.observer, (r.request_id for r in driver.results)
        )
        write_artifacts(
            system.observer,
            os.path.join(OUTPUT_DIR, f"perf_response_time_{name}"),
            node_order=system.replica_names + [c.name for c in system.clients],
            title=f"perf_response_time {name}",
        )
        rows[name] = summary
    return rows, dominant


def test_perf_response_time(once):
    rows, dominant = once(sweep)

    mean = {name: rows[name].latency.mean for name in TECHNIQUES}
    # Qualitative shape asserted, not absolute numbers:
    # 1. the paper's eager/lazy claim (Section 4.5/4.6): among the
    #    database techniques, lazy responds strictly faster than eager.
    #    (Distributed-systems techniques with merged RE+SC can also answer
    #    in two hops — they pay in messages, not latency.)
    for lazy in ("lazy_primary", "lazy_ue"):
        for eager in ("eager_primary", "eager_ue_locking", "eager_ue_abcast",
                      "certification"):
            assert mean[lazy] < mean[eager], (lazy, eager, mean)
    # 2. distributed locking + 2PC is the most expensive database path.
    assert mean["eager_ue_locking"] >= mean["eager_ue_abcast"]
    assert mean["eager_ue_locking"] >= mean["eager_primary"]
    # 3. everything committed.
    for name in ("active", "passive", "eager_primary", "lazy_primary", "lazy_ue"):
        assert rows[name].abort_rate == 0.0, name

    table = [
        [name, f"{rows[name].latency.mean:.2f}", f"{rows[name].latency.p95:.2f}",
         f"{rows[name].latency.p99:.2f}", f"{rows[name].abort_rate:.2f}",
         dominant[name]]
        for name in sorted(TECHNIQUES, key=lambda n: mean[n])
    ]
    report(
        "perf_response_time",
        "Performance study: response time (identical update workload, "
        "3 replicas, 2 clients, latency unit = 1 per hop)\n\n"
        + format_rows(
            ["technique", "mean latency", "p95 latency", "p99 latency",
             "abort rate", "dominant phase"],
            table,
        )
        + "\n\nshape: lazy < primary-eager < coordinated update-everywhere; "
        "the dominant phase is where the critical-path profiler puts the "
        "largest share of summed response time (docs/phasecost.md)",
    )
