"""Figure 13 — eager update everywhere (distributed locking) for
multi-operation transactions.

The SC(locks)/EX pair repeats per operation; one 2PC closes the
transaction.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, SC, Operation


def scenario():
    return run_single_request(
        "eager_ue_locking",
        [
            Operation.update("x", "add", 1),
            Operation.update("y", "add", 2),
            Operation.update("z", "add", 3),
        ],
        replicas=3,
        seed=1,
    )


def test_fig13_eager_ue_locking_transactions(once):
    system, result = once(scenario)
    assert result.committed

    observed = system.tracer.observed_sequence(result.request_id, source="r0")
    assert observed == [RE, SC, EX, SC, EX, SC, EX, AC, END], observed
    descriptor = system.info.txn_descriptor
    assert system.tracer.matches(
        descriptor, result.request_id, source="r0", iterations=3
    )
    # Three operations x three sites of lock traffic.
    assert system.net.stats.by_type["ueld.lock"] == 9
    for name in system.replica_names:
        assert (
            system.store_of(name).read("x"),
            system.store_of(name).read("y"),
            system.store_of(name).read("z"),
        ) == (1, 2, 3)

    report(
        "fig13_eager_ue_locking_txn",
        figure_block(
            system, result,
            "Figure 13: Eager update everywhere, multi-operation transaction",
            notes=[
                "SC(locks)/EX looped once per operation (3 ops, 9 lock grants)",
                "single final 2PC commits at all sites",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
