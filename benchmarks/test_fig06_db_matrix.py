"""Figure 6 — classification of database techniques (Gray et al.'s axes).

Eager vs. lazy propagation and primary-copy vs. update-everywhere,
derived from metadata and verified against live behaviour: laziness is
measured as "responded before the secondaries had the data", update
location as "which sites accept update transactions".
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.core.classification import db_matrix, render_matrix
from repro.core.protocols import REGISTRY

DB = ["eager_primary", "eager_ue_locking", "eager_ue_abcast", "lazy_primary", "lazy_ue"]


def behavioural_probe():
    probes = {}
    for name in DB:
        # Laziness: immediately after the response, do all replicas
        # already hold the write?
        system = ReplicatedSystem(name, replicas=3, seed=3,
                                  config={"propagation_delay": 50.0})
        result = system.execute([Operation.write("probe", "v")])
        assert result.committed
        fresh_everywhere = all(
            system.store_of(n).read("probe") == "v" for n in system.replica_names
        )
        measured_eager = fresh_everywhere

        # Update location: does a non-primary site accept an update?
        system2 = ReplicatedSystem(name, replicas=3, clients=2, seed=3,
                                   client_timeout=60.0, max_client_retries=0)
        result2 = system2.execute([Operation.write("w", 1)], client=1)  # home r1
        accepts_anywhere = result2.committed and result2.server == "r1"
        probes[name] = (measured_eager, accepts_anywhere)
    return probes


def test_fig06_db_classification(once):
    probes = once(behavioural_probe)
    matrix = db_matrix()

    assert matrix[("eager", "primary")] == ["eager_primary"]
    assert sorted(matrix[("eager", "everywhere")]) == [
        "certification", "eager_ue_abcast", "eager_ue_locking",
    ]
    assert matrix[("lazy", "primary")] == ["lazy_primary"]
    assert matrix[("lazy", "everywhere")] == ["lazy_ue"]

    for name, (measured_eager, accepts_anywhere) in probes.items():
        info = REGISTRY[name].info
        assert measured_eager == (info.propagation == "eager"), name
        assert accepts_anywhere == (info.update_location == "everywhere"), name

    rendered = render_matrix(
        matrix,
        row_labels={"eager": "eager", "lazy": "lazy"},
        column_labels={"primary": "primary copy", "everywhere": "update everywhere"},
    )
    rows = [
        [name, "eager" if e else "lazy", "everywhere" if a else "primary"]
        for name, (e, a) in sorted(probes.items())
    ]
    report(
        "fig06_db_matrix",
        "Figure 6: Replication in database systems\n\n"
        + rendered
        + "\n\nbehavioural verification (measured, not declared):\n"
        + format_rows(["technique", "propagation", "update location"], rows),
    )
