"""Performance study (Section 6) — the staleness window of lazy replication.

Measures, with a periodic probe, how long secondaries lag the primary as
the propagation delay grows.  Eager primary copy is the control: its
staleness window is (by construction) zero at response boundaries.
Also reports lazy update everywhere's reconciliation casualties ("which
transactions must be undone") as conflict probability rises.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.analysis import StalenessProbe
from repro.profiling import dominant_phase_for
from repro.workload import WorkloadSpec, run_workload

DELAYS = [5.0, 20.0, 60.0]


def staleness_of(protocol, delay):
    system = ReplicatedSystem(
        protocol, replicas=3, seed=23, observe=True,
        config={"propagation_delay": delay} if protocol != "eager_primary" else None,
    )
    probe = StalenessProbe(system, "x")
    probe.every(2.0, 400.0)
    results = []

    def loop():
        for i in range(8):
            result = yield system.client(0).submit([Operation.write("x", i)])
            results.append(result)
            yield system.sim.timeout(40.0)

    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    system.sim.run(until=400.0)
    dominant = dominant_phase_for(
        system.observer, (r.request_id for r in results)
    )
    return probe, dominant


def undone_at_conflict(items):
    spec = WorkloadSpec(items=items, read_fraction=0.0)
    system, driver, summary = run_workload(
        "lazy_ue", spec=spec, replicas=3, clients=3, requests_per_client=6,
        seed=29, settle=600.0, config={"propagation_delay": 15.0},
    )
    assert system.converged(), "lazy UE must still converge"
    return sum(system.protocol_at(n).undone_transactions for n in system.replica_names)


def sweep():
    lazy = {delay: staleness_of("lazy_primary", delay) for delay in DELAYS}
    eager, eager_dominant = staleness_of("eager_primary", 0.0)
    undone = {items: undone_at_conflict(items) for items in (32, 4, 1)}
    return lazy, (eager, eager_dominant), undone


def test_perf_staleness(once):
    lazy, (eager, eager_dominant), undone = once(sweep)

    fractions = [lazy[delay][0].stale_fraction() for delay in DELAYS]
    windows = [lazy[delay][0].max_staleness_duration() for delay in DELAYS]
    # The staleness window grows with the propagation delay.
    assert fractions == sorted(fractions), fractions
    assert windows == sorted(windows), windows
    assert fractions[-1] > 0.2
    # Eager primary copy never shows a stale window at the probe.
    assert eager.stale_fraction() <= 0.1, eager.stale_fraction()  # only in-flight 2PC skew
    # Reconciliation casualties grow with conflict probability.
    assert undone[1] >= undone[32], undone
    assert undone[1] >= 1

    rows = [
        [f"lazy_primary (delay={delay:g})",
         f"{lazy[delay][0].stale_fraction():.2f}",
         f"{lazy[delay][0].max_staleness_duration():.0f}",
         lazy[delay][1]]
        for delay in DELAYS
    ]
    rows.append(["eager_primary", f"{eager.stale_fraction():.2f}",
                 f"{eager.max_staleness_duration():.0f}", eager_dominant])
    undone_rows = [[str(items), str(count)] for items, count in sorted(undone.items())]
    report(
        "perf_staleness",
        "Performance study: weak consistency made visible\n\n"
        "staleness of secondaries (probe every 2 time units):\n"
        + format_rows(
            ["configuration", "stale fraction", "max window", "dominant phase"],
            rows,
        )
        + "\n\nlazy update everywhere: transactions undone by reconciliation "
        "vs data-set size (hotter = fewer items):\n"
        + format_rows(["items", "undone txns"], undone_rows),
    )
