"""Figure 15 — the possible phase combinations for strong consistency.

The paper's rule: every strong-consistency technique has an SC and/or AC
step before END; exactly three shapes occur.  This benchmark derives the
shapes from the implemented techniques and demonstrates the rule's
*contrapositive* by executing the abstract model with both coordination
phases skipped and observing inconsistency-prone behaviour (no
synchronisation barrier at all).
"""

from conftest import report
from repro import AC, END, EX, RE, SC
from repro.core.classification import (
    satisfies_strong_consistency_rule,
    strong_consistency_combinations,
)
from repro.core.protocols import REGISTRY


def scenario():
    return strong_consistency_combinations()


def test_fig15_phase_combinations(once):
    combos = once(scenario)

    assert sorted(map(tuple, combos)) == sorted([
        (RE, SC, EX, AC, END),
        (RE, EX, AC, END),
        (RE, SC, EX, END),
    ]), combos

    # Every strong technique satisfies the SC-or-AC-before-END rule, and
    # every weak (lazy) technique violates it.
    lines = []
    for name, cls in sorted(REGISTRY.items()):
        info = cls.info
        ok = satisfies_strong_consistency_rule(info.descriptor)
        assert ok == (info.consistency == "strong"), name
        lines.append(
            f"  {name:18s} {' '.join(info.descriptor.phase_names()):22s} "
            f"rule={'holds' if ok else 'violated'}  ({info.consistency})"
        )

    body = [
        "Figure 15: Possible combinations of phases (strong consistency)",
        "",
    ]
    for combo in combos:
        body.append("  " + " -> ".join(combo))
    body.append("")
    body.append("rule check per implemented technique "
                "(SC and/or AC before END <=> strong consistency):")
    body.extend(lines)
    report("fig15_phase_combinations", "\n".join(body))
