"""Figure 11 — lazy update everywhere.

Two sites accept conflicting writes concurrently, both respond
immediately, and the deferred Agreement Coordination is a
*reconciliation* that picks a winner and undoes the loser.
"""

from conftest import figure_block, report
from repro import AC, END, EX, RE, Operation, ReplicatedSystem


def scenario():
    system = ReplicatedSystem(
        "lazy_ue", replicas=3, clients=2, seed=1,
        config={"propagation_delay": 20.0},
    )
    f0 = system.client(0).submit([Operation.write("x", "from-r0")])
    f1 = system.client(1).submit([Operation.write("x", "from-r1")])
    r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
    divergent_after_response = (
        system.store_of("r0").read("x") != system.store_of("r1").read("x")
    )
    system.settle(400)
    return system, r0, r1, divergent_after_response


def test_fig11_lazy_ue(once):
    system, r0, r1, divergent_after_response = once(scenario)
    assert r0.committed and r1.committed, "lazy UE commits both immediately"

    for result in (r0, r1):
        observed = system.tracer.observed_sequence(result.request_id,
                                                   source=result.server)
        assert observed == [RE, EX, END, AC], (result.server, observed)
    assert divergent_after_response, (
        "the paper's premise: copies become inconsistent, not just stale"
    )
    # Reconciliation converged all replicas on a single winner.
    finals = {system.store_of(n).read("x") for n in system.replica_names}
    assert len(finals) == 1
    undone = sum(
        system.protocol_at(n).undone_transactions for n in system.replica_names
    )
    assert undone >= 1, "the losing transaction must be counted as undone"

    report(
        "fig11_lazy_ue",
        figure_block(
            system, r0, "Figure 11: Lazy update everywhere",
            lanes=["r0", "r1", "r2"],
            notes=[
                "both sites committed conflicting writes and answered immediately",
                f"reconciliation (LWW) winner: {finals.pop()!r}; "
                f"undone transactions: {undone}",
            ],
        ),
        system=system,
    )
