"""Figure 9 — eager update everywhere based on atomic broadcast.

The delegate broadcasts the transaction; the ABCAST total order *is* the
server coordination, execution follows delivery order, and no AC phase
exists.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, SC, Operation


def scenario():
    return run_single_request(
        "eager_ue_abcast", [Operation.update("x", "add", 5)], replicas=3, seed=1
    )


def test_fig09_eager_ue_abcast(once):
    system, result = once(scenario)
    assert result.committed

    delegate = system.tracer.observed_sequence(result.request_id, source="r0")
    assert delegate == [RE, SC, EX, END], delegate
    assert system.tracer.mechanisms_used(result.request_id)[SC] == "abcast"
    # Non-delegates execute in delivery order but record no RE/END.
    for other in ("r1", "r2"):
        observed = system.tracer.observed_sequence(result.request_id, source=other)
        assert observed == [SC, EX], (other, observed)
    for name in system.replica_names:
        assert system.store_of(name).read("x") == 5
    assert system.net.stats.by_type.get("2pc.prepare", 0) == 0, "no 2PC here"

    report(
        "fig09_eager_ue_abcast",
        figure_block(
            system, result, "Figure 9: Eager update everywhere with ABCAST",
            notes=[
                "SC = total order of the atomic broadcast; no AC phase",
                "compare Figure 2: same shape, but the client contacts ONE server",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
