"""Performance study — sustained mixed workload across every technique.

The closest thing to the paper's "different workloads" axis run at scale:
5 replicas, 4 clients, 30 transactions each (120 total), a 50/50
read/update mix over a 24-item database, one seed.  Reported per
technique: throughput, latency, abort rate, messages per transaction —
with every consistency oracle checked at the end.  This is the soak test
that catches slow corruption the single-shot benchmarks cannot.
"""

from conftest import format_rows, report
from repro import DB_TECHNIQUES, DS_TECHNIQUES
from repro.analysis import counter_check, messages_per_request
from repro.workload import WorkloadSpec, run_workload

SPEC = WorkloadSpec(items=24, read_fraction=0.5, ops_per_transaction=1)
STRONG = {"active", "passive", "semi_active", "semi_passive",
          "eager_primary", "eager_ue_locking", "eager_ue_abcast",
          "certification"}


def sweep():
    rows = {}
    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        system, driver, summary = run_workload(
            name, spec=SPEC, replicas=5, clients=4, requests_per_client=30,
            seed=101, think_time=8.0, retry_aborts=True, settle=600.0,
            config={"abcast": "sequencer"},
            # Soak runs generate the longest traces; bound the structured
            # log so memory stays flat (the summaries are already computed
            # from results, not the trace).
            system_kwargs={"trace_max_events": 200_000},
        )
        committed = [r for r in driver.results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        exact = (
            not counter_check(committed, stores, strict=False)
            if name in STRONG else None
        )
        rows[name] = {
            "summary": summary,
            "messages": messages_per_request(system.net.stats, summary.requests),
            "converged": system.converged(),
            "exact": exact,
            "extra_attempts": driver.extra_attempts,
        }
    return rows


def test_perf_soak(once):
    rows = once(sweep)

    for name, row in rows.items():
        assert row["summary"].requests == 120, name
        assert row["summary"].abort_rate == 0.0, (name, "driver retries aborts")
        assert row["converged"], name
        if name in STRONG:
            assert row["exact"], f"{name} corrupted counters under soak"

    table = []
    for name, row in sorted(rows.items(), key=lambda kv: -kv[1]["summary"].throughput):
        summary = row["summary"]
        table.append([
            name,
            f"{summary.throughput:.3f}",
            f"{summary.latency.mean:.2f}",
            f"{summary.latency.p95:.2f}",
            f"{summary.latency.p99:.2f}",
            f"{row['messages']:.1f}",
            str(row["extra_attempts"]),
            "n/a" if row["exact"] is None else ("yes" if row["exact"] else "NO"),
        ])
    report(
        "perf_soak",
        "Performance study: 120-transaction soak, 5 replicas, 4 clients, "
        "50% reads\n(aborted transactions retried by the driver)\n\n"
        + format_rows(
            ["technique", "throughput", "mean lat", "p95 lat", "p99 lat",
             "msgs/txn", "retried aborts", "exact"],
            table,
        ),
    )
