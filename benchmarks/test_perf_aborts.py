"""Performance study (Section 6) — conflicts: blocking vs. aborting.

Sweeps contention (shrinking item count concentrates the update traffic)
and contrasts the two eager update-everywhere strategies:

* distributed locking *blocks* — conflicting transactions queue on locks,
  so latency climbs with contention while aborts stay rare (only
  distributed deadlocks / timeouts);
* certification *aborts* — latency stays flat (optimistic execution) but
  the abort rate climbs with contention.

This is the classic optimistic-vs-pessimistic crossover.
"""

from conftest import format_rows, report
from repro.workload import WorkloadSpec, run_workload

CONTENTION = [32, 8, 2, 1]  # items: fewer items = hotter


def sweep():
    table = {}
    for items in CONTENTION:
        for name in ("eager_ue_locking", "certification"):
            spec = WorkloadSpec(items=items, read_fraction=0.0,
                                ops_per_transaction=2)
            system, driver, summary = run_workload(
                name, spec=spec, replicas=3, clients=4, requests_per_client=6,
                seed=13, settle=500.0, config={"abcast": "sequencer"},
            )
            table[(name, items)] = summary
    return table


def test_perf_abort_behaviour(once):
    table = once(sweep)

    cert_aborts = [table[("certification", items)].abort_rate for items in CONTENTION]
    lock_latency = [
        table[("eager_ue_locking", items)].latency.mean for items in CONTENTION
    ]
    cert_latency = [
        table[("certification", items)].latency.mean for items in CONTENTION
    ]

    # Certification aborts grow monotonically with contention...
    assert cert_aborts[-1] > cert_aborts[0], cert_aborts
    assert cert_aborts[-1] >= 0.3, "hot spot must cause substantial aborts"
    # ...while its latency stays essentially flat (no blocking).
    assert max(cert_latency) <= min(cert_latency) * 2.5, cert_latency
    # Locking blocks: latency under the hottest setting far exceeds the
    # cold setting, and exceeds certification's.
    assert lock_latency[-1] > lock_latency[0] * 1.5, lock_latency
    assert lock_latency[-1] > cert_latency[-1]

    rows = []
    for items in CONTENTION:
        for name in ("eager_ue_locking", "certification"):
            summary = table[(name, items)]
            rows.append([
                name, str(items), f"{summary.latency.mean:.2f}",
                f"{summary.abort_rate:.2f}",
            ])
    report(
        "perf_aborts",
        "Performance study: contention — blocking (locking) vs aborting "
        "(certification)\n\n"
        + format_rows(["technique", "items", "mean latency", "abort rate"], rows)
        + "\n\nshape: locking latency climbs under contention; "
        "certification latency flat but abort rate climbs",
    )
