"""Figure 16 — the synthetic view of all techniques.

Each technique's phase row is both declared (metadata) and *observed*: the
benchmark executes every technique once and checks that the live phase
trace collapses to exactly the declared Figure 16 row.
"""

from conftest import format_rows, report
from repro import AC, END, EX, RE, SC, Operation, ReplicatedSystem
from repro.core.classification import render_synthetic_view
from repro.core.protocols import REGISTRY

PAPER_ROWS = {
    "active": [RE, SC, EX, END],
    "passive": [RE, EX, AC, END],
    "semi_active": [RE, SC, EX, AC, END],
    "semi_passive": [RE, EX, AC, END],
    "eager_primary": [RE, EX, AC, END],
    "eager_ue_locking": [RE, SC, EX, AC, END],
    "eager_ue_abcast": [RE, SC, EX, END],
    "lazy_primary": [RE, EX, END, AC],
    "lazy_ue": [RE, EX, END, AC],
    "certification": [RE, EX, AC, END],
}

# Operations that exercise each technique's full phase structure (the
# semi-active row needs a non-deterministic point to show its AC).
CANONICAL_OPS = {
    "semi_active": [Operation.update("x", "random_token")],
}


def observe_all():
    observed = {}
    for name in PAPER_ROWS:
        system = ReplicatedSystem(name, replicas=3, seed=2)
        ops = CANONICAL_OPS.get(name, [Operation.update("x", "add", 1)])
        result = system.execute(ops)
        assert result.committed, name
        system.settle(300)
        source = result.server or "r0"
        observed[name] = system.tracer.observed_sequence(
            result.request_id, source=source, collapse=True
        )
    return observed


def test_fig16_synthetic_view(once):
    observed = once(observe_all)

    rows = []
    for name, paper_row in sorted(PAPER_ROWS.items()):
        declared = REGISTRY[name].info.descriptor.phase_names()
        assert declared == paper_row, f"{name}: declared {declared}"
        assert observed[name] == paper_row, (
            f"{name}: observed {observed[name]}, paper says {paper_row}"
        )
        rows.append([
            REGISTRY[name].info.title,
            " ".join(paper_row),
            " ".join(observed[name]),
            REGISTRY[name].info.consistency,
        ])

    report(
        "fig16_synthetic_view",
        "Figure 16: Synthetic view of approaches\n\n"
        + format_rows(["technique", "paper row", "observed row", "consistency"], rows)
        + "\n\n" + render_synthetic_view(),
    )
