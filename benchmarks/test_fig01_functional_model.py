"""Figure 1 — the functional model with its five phases.

Reproduces the paper's introductory diagram by executing the *abstract*
replication protocol (client contact, server coordination, execution,
agreement coordination, client response) on a simulated network and
rendering the observed phase timeline.
"""

from conftest import report
from repro import AC, END, EX, RE, SC
from repro.core.model import GENERIC_DESCRIPTOR, AbstractReplicationProtocol
from repro.viz import render_figure, render_phase_timeline


def scenario():
    model = AbstractReplicationProtocol(replicas=3, seed=1)
    latency = model.run_update("x", "update")
    return model, latency


def test_fig01_functional_model(once):
    model, latency = once(scenario)

    observed = model.contact_sequence()
    assert observed == [RE, SC, EX, AC, END], observed
    assert model.tracer.matches(GENERIC_DESCRIPTOR, "req-1", source="replica1")
    assert model.consistent(), "all replicas must apply the update"
    # Non-contact replicas take part in both coordination rounds.
    for lane in ("replica2", "replica3"):
        assert model.tracer.observed_sequence("req-1", source=lane) == [SC, AC]

    timeline = render_phase_timeline(
        model.trace, "req-1", ["client", "replica1", "replica2", "replica3"]
    )
    report(
        "fig01_functional_model",
        render_figure(
            "Figure 1: Functional model with the five phases",
            GENERIC_DESCRIPTOR.render(),
            timeline,
            notes=[
                f"client latency: {latency:.1f} time units "
                "(RE hop + SC round + AC round + END hop)",
                "replica state identical at all three replicas",
            ],
        ),
    )
