"""Figure 7 — eager primary copy (hot-standby) replication.

Single-operation transaction at the primary: EX locally, change
propagation + 2PC as the Agreement Coordination, response strictly after.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, Operation


def scenario():
    return run_single_request(
        "eager_primary", [Operation.update("x", "add", 5)], replicas=3, seed=1
    )


def test_fig07_eager_primary(once):
    system, result = once(scenario)
    assert result.committed and result.server == "r0"

    primary = system.tracer.observed_sequence(
        result.request_id, source="r0", collapse=True
    )
    assert primary == [RE, EX, AC, END], primary
    assert system.tracer.mechanisms_used(result.request_id)[AC] == "2pc"
    # Eager: at response time the secondaries have installed the update.
    for name in system.replica_names:
        assert system.store_of(name).read("x") == 5
    # Secondaries took part in the agreement phase only.
    for backup in ("r1", "r2"):
        observed = system.tracer.observed_sequence(result.request_id, source=backup)
        assert observed == [AC], (backup, observed)
    assert system.net.stats.by_type["2pc.prepare"] == 2

    report(
        "fig07_eager_primary",
        figure_block(
            system, result, "Figure 7: Eager primary copy",
            notes=[
                "no SC phase (primary orders everything); AC = 2PC",
                "secondaries held the update before the client response (eager)",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
