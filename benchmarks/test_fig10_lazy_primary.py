"""Figure 10 — lazy primary copy.

The response precedes the agreement coordination: the client hears back
after the local commit; the secondaries receive the changes later.
"""

from conftest import figure_block, report
from repro import AC, END, EX, RE, Operation, ReplicatedSystem


def scenario():
    system = ReplicatedSystem(
        "lazy_primary", replicas=3, seed=1, config={"propagation_delay": 30.0}
    )
    result = system.execute([Operation.write("x", "fresh")])
    # Capture the staleness window before letting propagation finish.
    stale_at_response = [
        name for name in ("r1", "r2") if system.store_of(name).read("x") is None
    ]
    system.settle(300)
    return system, result, stale_at_response


def test_fig10_lazy_primary(once):
    system, result, stale_at_response = once(scenario)
    assert result.committed

    observed = system.tracer.observed_sequence(result.request_id, source="r0")
    assert observed == [RE, EX, END, AC], "END must precede AC (lazy)"
    assert stale_at_response == ["r1", "r2"], (
        "secondaries must still be stale when the client hears back"
    )
    # Eventually all replicas converge.
    for name in system.replica_names:
        assert system.store_of(name).read("x") == "fresh"

    report(
        "fig10_lazy_primary",
        figure_block(
            system, result, "Figure 10: Lazy primary copy",
            notes=[
                "phase order observed: RE EX END AC — response before agreement",
                f"at response time both secondaries were stale; converged by t={system.sim.now:.0f}",
                f"client latency: {result.latency:.1f} (vs ~4 for eager primary copy)",
            ],
        ),
        system=system,
    )
