"""Figure 5 — classification of distributed-systems techniques.

The 2x2 matrix (failure transparency x server determinism) is derived
from protocol metadata and then *verified against live behaviour*: the
claimed quadrant properties are demonstrated by execution, not asserted
from the table.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.core.classification import ds_matrix, render_matrix


def behavioural_probe():
    """Measure the two axes empirically for every DS technique."""
    probes = {}
    for name in ("active", "passive", "semi_active", "semi_passive"):
        # Axis 1: is a replica crash transparent (no client retry)?  The
        # request is in flight when the replica dies: transparent
        # techniques mask it, primary-based ones force a client retry.
        system = ReplicatedSystem(name, replicas=3, seed=7,
                                  fd_interval=2.0, fd_timeout=6.0,
                                  client_timeout=40.0)
        system.injector.crash_at(29.5, "r0")

        def loop(system=system):
            yield system.sim.timeout(29.0)  # lands at r0 just after the crash
            return (yield system.client(0).submit([Operation.update("x", "add", 1)]))
        result = system.sim.run_until_done(system.sim.spawn(loop()))
        transparent = result.committed and result.retries == 0

        # Axis 2: does a non-deterministic op diverge the replicas?
        system2 = ReplicatedSystem(name, replicas=3, seed=7)
        system2.execute([Operation.update("x", "random_token")])
        system2.settle(300)
        values = {system2.store_of(n).read("x") for n in system2.replica_names}
        needs_determinism = len(values) > 1
        probes[name] = (transparent, needs_determinism)
    return probes


def test_fig05_ds_classification(once):
    probes = once(behavioural_probe)
    matrix = ds_matrix()

    # The declared matrix equals the paper's Figure 5.
    assert matrix[(True, True)] == ["active"]
    assert sorted(matrix[(True, False)]) == ["semi_active", "semi_passive"]
    assert matrix[(False, False)] == ["passive"]

    # And the declared coordinates match behaviour.
    for name, (transparent, needs_det) in probes.items():
        from repro.core.protocols import REGISTRY
        info = REGISTRY[name].info
        assert transparent == info.failure_transparent, name
        assert needs_det == info.requires_determinism, name

    rendered = render_matrix(
        matrix,
        row_labels={True: "failure transparent", False: "failure visible"},
        column_labels={True: "determinism needed", False: "determinism not needed"},
    )
    rows = [
        [name, "yes" if t else "no", "yes" if d else "no"]
        for name, (t, d) in sorted(probes.items())
    ]
    report(
        "fig05_ds_matrix",
        "Figure 5: Replication in distributed systems\n\n"
        + rendered
        + "\n\nbehavioural verification (measured, not declared):\n"
        + format_rows(["technique", "crash transparent", "nondet diverges"], rows),
    )
