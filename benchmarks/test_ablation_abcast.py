"""Ablation — ABCAST implementation: fixed sequencer vs consensus.

Both implement the same primitive (Section 3.1's total order), so active
replication runs unchanged on either.  The trade-off: the sequencer costs
two hops and few messages but is a single point of order — when it
crashes, ordering stops; the Chandra–Toueg reduction costs more messages
but masks a minority of crashes.
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.analysis import messages_per_request


def run_one(flavour, crash=False, seed=41):
    system = ReplicatedSystem(
        "active", replicas=3, clients=1, seed=seed,
        fd_interval=2.0, fd_timeout=6.0,
        config={"abcast": flavour},
    )
    if crash:
        # r0 is both round-0 consensus coordinator and the sequencer.
        system.injector.crash_at(25.0, "r0")

    def loop():
        results = []
        for _ in range(8):
            results.append(
                (yield system.sim.any_of([
                    system.client(0).submit([Operation.update("x", "add", 1)]),
                    system.sim.timeout(150.0, None),
                ]))
            )
            yield system.sim.timeout(12.0)
        return results

    handle = system.sim.spawn(loop())
    outcomes = system.sim.run_until_done(handle)
    system.settle(300)
    answered = sum(1 for index, value in outcomes if index == 0)
    return {
        "answered": answered,
        "messages": messages_per_request(system.net.stats, 8),
        "value": max(
            (system.store_of(n).read("x") or 0) for n in system.live_replicas()
        ),
    }


def sweep():
    return {
        ("sequencer", False): run_one("sequencer"),
        ("consensus", False): run_one("consensus"),
        ("sequencer", True): run_one("sequencer", crash=True),
        ("consensus", True): run_one("consensus", crash=True),
    }


def test_ablation_abcast(once):
    table = once(sweep)

    # Failure-free: both answer everything; sequencer is cheaper.
    assert table[("sequencer", False)]["answered"] == 8
    assert table[("consensus", False)]["answered"] == 8
    assert (
        table[("sequencer", False)]["messages"]
        < table[("consensus", False)]["messages"]
    )
    # Sequencer crash: ordering stops, requests go unanswered; the
    # consensus reduction keeps delivering.
    assert table[("sequencer", True)]["answered"] < 8, "sequencer is a SPOF"
    assert table[("consensus", True)]["answered"] == 8

    rows = [
        [flavour, "crash" if crash else "none",
         f"{row['answered']}/8", f"{row['messages']:.1f}", str(row["value"])]
        for (flavour, crash), row in sorted(table.items())
    ]
    report(
        "ablation_abcast",
        "Ablation: ABCAST implementation under active replication\n"
        "(8 updates; 150-unit client give-up per request)\n\n"
        + format_rows(
            ["abcast", "fault", "answered", "messages/txn", "final x"], rows
        )
        + "\n\nshape: fixed sequencer = cheap but a single point of order; "
        "consensus\nreduction = more messages, crash of a minority fully masked",
    )
