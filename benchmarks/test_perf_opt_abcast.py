"""Performance study — optimistic atomic broadcast ([KPAS99a]).

The paper's introduction: "we have also shown how some of the overheads
associated with group communication can be hidden behind the cost of
executing transactions, thereby greatly enhancing performance and
removing one of the serious limitations of group communication
primitives."  This benchmark reproduces that result on the
certification-based technique: transaction processing starts at
*tentative* delivery and overlaps the ordering protocol.

Reported: mean latency classic vs optimistic, per processing cost and
network jitter (jitter breaks spontaneous order, shrinking the benefit —
the result's own caveat).
"""

from conftest import format_rows, report
from repro import Operation, ReplicatedSystem
from repro.net import UniformLatency

PROCESSING = [2.0, 4.0, 8.0]


def run_one(optimistic, processing_time, jitter, seed=61, concurrent=False):
    system = ReplicatedSystem(
        "certification", replicas=3, clients=2, seed=seed,
        latency=UniformLatency(0.3, 3.5) if jitter else None,
        config={
            "abcast": "sequencer",
            "optimistic": optimistic,
            "processing_time": processing_time,
        },
    )
    results = []

    def loop():
        for i in range(10):
            if concurrent:
                # A competing client at another site submits at the same
                # instant: the two tentative orders genuinely race and can
                # invert relative to the final order (a real spontaneous-
                # order violation), invalidating the speculation.
                system.client(0).submit([Operation.update(f"other{i}", "add", 1)])
            results.append((yield system.client(1).submit(
                [Operation.update(f"k{i}", "add", 1)]
            )))
            yield system.sim.timeout(20.0)

    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    system.settle(300)
    assert system.converged()
    mean = sum(r.latency for r in results) / len(results)
    match_rate = (
        system.protocol_at("r1").abcast.match_rate if optimistic else None
    )
    return mean, match_rate


def sweep():
    table = {}
    for processing_time in PROCESSING:
        for scenario in ("solo", "concurrent"):
            concurrent = scenario == "concurrent"
            classic, _ = run_one(False, processing_time, jitter=concurrent,
                                 concurrent=concurrent)
            optimistic, match_rate = run_one(True, processing_time,
                                             jitter=concurrent,
                                             concurrent=concurrent)
            table[(processing_time, scenario)] = (classic, optimistic, match_rate)
    return table


def test_perf_optimistic_abcast(once):
    table = once(sweep)

    for processing_time in PROCESSING:
        classic, optimistic, match_rate = table[(processing_time, "solo")]
        # On the quiet network the ordering gap (2 hops) is fully hidden.
        assert optimistic <= classic - 1.5, (processing_time, classic, optimistic)
        assert match_rate == 1.0
    # Concurrent cross-site traffic under jitter breaks spontaneous order:
    # the match rate drops and so does the benefit — but optimism must
    # never be slower than the classic protocol by more than noise.
    for processing_time in PROCESSING:
        classic, optimistic, match_rate = table[(processing_time, "concurrent")]
        assert match_rate < 1.0, "concurrency must provoke order violations"
        assert optimistic <= classic + 0.5, (processing_time, classic, optimistic)

    rows = []
    for (processing_time, scenario), (classic, optimistic, match_rate) in sorted(table.items()):
        rows.append([
            f"{processing_time:g}",
            scenario,
            f"{classic:.2f}",
            f"{optimistic:.2f}",
            f"{classic - optimistic:+.2f}",
            f"{match_rate:.2f}" if match_rate is not None else "-",
        ])
    report(
        "perf_opt_abcast",
        "Performance study: optimistic atomic broadcast (certification "
        "technique,\nprocessing overlapped with ordering; delegate not "
        "co-located with sequencer)\n\n"
        + format_rows(
            ["processing", "network", "classic lat", "optimistic lat",
             "saved", "match rate"],
            rows,
        )
        + "\n\nshape: solo traffic on a quiet network hides the full "
        "ordering gap\n(match rate 1.0); concurrent cross-site traffic under "
        "jitter violates\nspontaneous order, shrinking the benefit — never "
        "below classic",
    )
