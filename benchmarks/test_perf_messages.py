"""Performance study (Section 6) — message overhead per technique.

Counts protocol messages (heartbeats excluded) per update transaction.
Expected shape: lazy primary is the cheapest (one log ship per
secondary); distributed locking + 2PC is the most expensive (per-item
lock round at every site plus the vote round); broadcast-based
techniques sit in between; active replication's relayed reliable
broadcast costs O(n^2) dissemination.
"""

from conftest import format_rows, report
from repro.analysis import messages_per_request
from repro.workload import WorkloadSpec, run_workload

TECHNIQUES = [
    "active", "passive", "semi_passive",
    "eager_primary", "eager_ue_locking", "eager_ue_abcast",
    "lazy_primary", "lazy_ue", "certification",
]

SPEC = WorkloadSpec(items=16, read_fraction=0.0, ops_per_transaction=1)


def sweep():
    rows = {}
    for name in TECHNIQUES:
        system, driver, summary = run_workload(
            name, spec=SPEC, replicas=3, clients=1, requests_per_client=10,
            seed=33, think_time=20.0, settle=400.0,
            config={"abcast": "sequencer"},
        )
        rows[name] = messages_per_request(system.net.stats, summary.requests)
    return rows


def test_perf_message_overhead(once):
    rows = once(sweep)

    # Shapes from the paper's cost discussion:
    assert rows["lazy_primary"] < rows["eager_primary"], rows
    assert rows["eager_ue_locking"] > rows["eager_ue_abcast"], (
        "per-op lock rounds + 2PC must beat one broadcast"
    )
    assert rows["eager_ue_locking"] > rows["eager_primary"]
    assert rows["lazy_primary"] == min(rows.values()), (
        "lazy primary ships one log record per secondary and nothing else"
    )

    table = [
        [name, f"{rows[name]:.1f}"]
        for name in sorted(TECHNIQUES, key=lambda n: rows[n])
    ]
    report(
        "perf_messages",
        "Performance study: protocol messages per update transaction\n"
        "(3 replicas, heartbeats excluded; includes acks/retransmission frames)\n\n"
        + format_rows(["technique", "messages/txn"], table),
    )
