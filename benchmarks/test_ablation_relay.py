"""Ablation — reliable-broadcast relaying: the price of Agreement.

The ABCAST atomicity property (Section 3.1) needs reliable dissemination:
if any member delivers, all correct members must.  Our reliable broadcast
buys this by relaying first receipts — O(n^2) messages.  This ablation
measures that price and shows what the money buys: with relaying
disabled, a sender crashing mid-broadcast under message loss leaves the
group *non-uniform* (some members delivered, others never will).
"""

from conftest import format_rows, report
from repro.groupcomm import ReliableBroadcast
from repro.net import ConstantLatency, Network, Node
from repro.sim import Simulator
from repro.groupcomm import ReliableTransport


def run_trial(relay, seed, n=4, loss_rate=0.35):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(1.0), loss_rate=loss_rate)
    names = [f"n{i}" for i in range(n)]
    delivered = {name: 0 for name in names}
    endpoints = {}
    for name in names:
        node = Node(sim, net, name)
        transport = ReliableTransport(node, retry_interval=2.0)
        endpoints[name] = ReliableBroadcast(
            node, transport, names,
            lambda o, m, b, nm=name: delivered.__setitem__(nm, delivered[nm] + 1),
            relay=relay,
        )
        endpoints[name].node = node
    endpoints["n0"].broadcast("evt")
    sim.schedule(0.5, endpoints["n0"].node.crash)
    sim.run(until=600)
    counts = {name: delivered[name] for name in names[1:]}
    uniform = len(set(counts.values())) == 1
    return uniform, counts, net.stats.by_type.get("rt.data", 0)


def sweep():
    trials = 25
    results = {}
    for relay in (True, False):
        non_uniform = 0
        messages = 0
        for seed in range(trials):
            uniform, counts, msgs = run_trial(relay, seed)
            non_uniform += 0 if uniform else 1
            messages += msgs
        results[relay] = {
            "non_uniform": non_uniform,
            "trials": trials,
            "avg_messages": messages / trials,
        }
    return results


def test_ablation_relay(once):
    results = once(sweep)

    # Relaying guarantees agreement in every trial.
    assert results[True]["non_uniform"] == 0, results[True]
    # Without it, crash+loss produces observable non-uniform deliveries.
    assert results[False]["non_uniform"] > 0, (
        "expected at least one agreement violation without relaying"
    )
    # And relaying costs more dissemination messages.
    assert results[True]["avg_messages"] > results[False]["avg_messages"]

    rows = [
        ["relay on" if relay else "relay off",
         f"{row['non_uniform']}/{row['trials']}",
         f"{row['avg_messages']:.1f}"]
        for relay, row in results.items()
    ]
    report(
        "ablation_relay",
        "Ablation: reliable-broadcast relaying\n"
        "(sender crashes right after broadcasting; 35% message loss; "
        "25 seeds)\n\n"
        + format_rows(
            ["configuration", "non-uniform outcomes", "avg rt.data msgs"], rows
        )
        + "\n\nshape: relaying costs O(n^2) messages and buys the Agreement "
        "property\n(all-or-none delivery at correct members) that ABCAST "
        "atomicity rests on",
    )
