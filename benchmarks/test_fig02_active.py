"""Figure 2 — active replication.

One update, three replicas: RE and SC merge into the atomic broadcast, no
AC phase exists, every replica executes and responds.
"""

from conftest import figure_block, report, run_single_request
from repro import AC, END, EX, RE, SC, Operation


def scenario():
    return run_single_request(
        "active", [Operation.update("x", "add", 10)], replicas=3, seed=1
    )


def test_fig02_active_replication(once):
    system, result = once(scenario)
    assert result.committed and result.value == 10

    # Every replica runs the full RE,SC,EX,END sequence — and no AC.
    for lane in system.replica_names:
        observed = system.tracer.observed_sequence(result.request_id, source=lane)
        assert observed == [RE, SC, EX, END], (lane, observed)
    assert system.tracer.mechanisms_used(result.request_id)[SC] == "abcast"
    assert system.converged(values_only=False)
    # All replicas answered; the client kept exactly one response.
    assert len(system.client(0).results) == 1

    report(
        "fig02_active",
        figure_block(
            system, result, "Figure 2: Active replication",
            notes=[
                "RE+SC merged into the Atomic Broadcast; no AC phase",
                "all 3 replicas executed and responded; client used first reply",
                f"client latency: {result.latency:.1f}",
            ],
        ),
        system=system,
    )
