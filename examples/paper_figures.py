#!/usr/bin/env python3
"""Regenerate every figure of the paper from live executions.

Prints, in order: the functional model (Figure 1), each technique's phase
timeline as observed in a real run (Figures 2-4, 7-14), and the derived
classification matrices (Figures 5, 6, 15, 16).

Run:  python examples/paper_figures.py
"""

from repro import Operation, ReplicatedSystem
from repro.core.classification import (
    db_matrix,
    ds_matrix,
    render_matrix,
    render_synthetic_view,
    strong_consistency_combinations,
)
from repro.core.model import GENERIC_DESCRIPTOR, AbstractReplicationProtocol
from repro.viz import render_figure, render_phase_timeline

TIMELINE_FIGURES = [
    ("Figure 2: Active replication", "active",
     [Operation.update("x", "add", 1)], {}),
    ("Figure 3: Passive replication", "passive",
     [Operation.update("x", "random_token")], {}),
    ("Figure 4: Semi-active replication", "semi_active",
     [Operation.update("x", "random_token")], {}),
    ("Figure 7: Eager primary copy", "eager_primary",
     [Operation.update("x", "add", 1)], {}),
    ("Figure 8: Eager update everywhere (distributed locking)",
     "eager_ue_locking", [Operation.update("x", "add", 1)], {}),
    ("Figure 9: Eager update everywhere (ABCAST)", "eager_ue_abcast",
     [Operation.update("x", "add", 1)], {}),
    ("Figure 10: Lazy primary copy", "lazy_primary",
     [Operation.write("x", 1)], {}),
    ("Figure 11: Lazy update everywhere", "lazy_ue",
     [Operation.write("x", 1)], {}),
    ("Figure 12: Eager primary copy (3-operation transaction)",
     "eager_primary",
     [Operation.write("x", 1), Operation.write("y", 2), Operation.write("z", 3)],
     {}),
    ("Figure 13: Eager UE locking (3-operation transaction)",
     "eager_ue_locking",
     [Operation.write("x", 1), Operation.write("y", 2), Operation.write("z", 3)],
     {}),
    ("Figure 14: Certification-based replication", "certification",
     [Operation.update("x", "add", 1)], {}),
]


def main() -> None:
    # Figure 1: the abstract model itself.
    model = AbstractReplicationProtocol(replicas=3, seed=1)
    model.run_update("x", "update")
    print(render_figure(
        "Figure 1: Functional model with the five phases",
        GENERIC_DESCRIPTOR.render(),
        render_phase_timeline(
            model.trace, "req-1", ["client", "replica1", "replica2", "replica3"]
        ),
    ))
    print()

    for title, technique, operations, config in TIMELINE_FIGURES:
        system = ReplicatedSystem(technique, replicas=3, seed=1, config=config)
        result = system.execute(operations)
        system.settle(400)
        descriptor = system.info.descriptor_for(len(operations))
        print(render_figure(
            title,
            descriptor.render(),
            render_phase_timeline(
                system.trace, result.request_id, system.replica_names
            ),
        ))
        print()

    print("Figure 5: Replication in distributed systems")
    print(render_matrix(
        ds_matrix(),
        row_labels={True: "failure transparent", False: "failure visible"},
        column_labels={True: "determinism needed", False: "determinism not needed"},
    ))
    print()
    print("Figure 6: Replication in database systems")
    print(render_matrix(
        db_matrix(),
        row_labels={"eager": "eager", "lazy": "lazy"},
        column_labels={"primary": "primary copy", "everywhere": "update everywhere"},
    ))
    print()
    print("Figure 15: Possible combinations of phases (strong consistency)")
    for combo in strong_consistency_combinations():
        print("  " + " -> ".join(combo))
    print()
    print("Figure 16: Synthetic view of approaches")
    print(render_synthetic_view())


if __name__ == "__main__":
    main()
