#!/usr/bin/env python3
"""An ATM session: the Section 5 transaction model, interactively.

Section 5 drops the paper's stored-procedure simplification:
"transactions are a partial order of read and write operations which are
not necessarily available for processing at the same time".  This example
runs exactly that against eager-primary-copy replication: the customer's
decisions happen *between* operations of one open transaction, while the
per-operation change-propagation loop of Figure 12 runs underneath — and
a concurrent session on the same account shows strict two-phase locking
serialising them.

Run:  python examples/interactive_atm.py
"""

from repro import ReplicatedSystem, Operation


def main() -> None:
    system = ReplicatedSystem("eager_primary", replicas=3, seed=11)
    system.execute([Operation.write("checking", 900)])
    system.execute([Operation.write("savings", 2500)])

    def customer():
        session = system.client(0).session()
        yield session.begin()
        print(f"t={system.sim.now:6.1f}  [customer] card inserted, txn open")
        checking = yield session.read("checking")
        savings = yield session.read("savings")
        print(f"t={system.sim.now:6.1f}  [customer] sees checking={checking} "
              f"savings={savings}")
        yield system.sim.timeout(40.0)  # deciding how much to move...
        print(f"t={system.sim.now:6.1f}  [customer] transfers 400 savings->checking")
        yield session.update("savings", "add", -400)
        yield session.update("checking", "add", 400)
        yield system.sim.timeout(20.0)  # double-checking the screen...
        committed = yield session.commit()
        print(f"t={system.sim.now:6.1f}  [customer] commit -> {committed}")
        return committed

    def partner():
        # The partner tries to withdraw from checking mid-session; the
        # write lock held by the open transaction makes them wait.
        yield system.sim.timeout(50.0)
        session = system.client(0).session()
        yield session.begin()
        print(f"t={system.sim.now:6.1f}  [partner ] wants 100 from checking "
              "(will block on the lock)")
        balance = yield session.update("checking", "add", -100)
        print(f"t={system.sim.now:6.1f}  [partner ] got the lock, "
              f"balance now {balance}")
        committed = yield session.commit()
        print(f"t={system.sim.now:6.1f}  [partner ] commit -> {committed}")
        return committed

    h1 = system.sim.spawn(customer())
    h2 = system.sim.spawn(partner())
    system.sim.run_until_done(system.sim.all_of([h1, h2]))
    system.settle(200)

    print("\nfinal balances (identical at every replica):")
    for name in system.replica_names:
        store = system.store_of(name)
        print(f"  {name}: checking={store.read('checking')} "
              f"savings={store.read('savings')}")
    assert system.converged()
    total = system.store_of("r0").read("checking") + system.store_of("r0").read("savings")
    assert total == 3400 - 100, total
    print("\nmoney conserved; the partner's withdrawal waited for the "
          "customer's open transaction (strict 2PL)")


if __name__ == "__main__":
    main()
