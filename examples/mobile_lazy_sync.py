#!/usr/bin/env python3
"""A mobile site syncing lazily over a slow, flaky link.

Section 2.2 motivates lazy replication with "the proliferation of
applications for mobile users, where a copy is not always connected to
the rest of the system and it does not make sense to wait until updates
take place".  This example builds exactly that scenario with lazy update
everywhere:

* two well-connected office sites and one "laptop" behind a slow link,
* concurrent edits to the same document field while the laptop is
  partitioned away,
* reconnection, propagation, and last-writer-wins reconciliation —
  convergence with an explicit casualty count.

Run:  python examples/mobile_lazy_sync.py
"""

from repro import Operation, ReplicatedSystem
from repro.net import ConstantLatency, PerLinkLatency


def main() -> None:
    latency = PerLinkLatency(default=ConstantLatency(1.0))
    system = ReplicatedSystem(
        "lazy_ue", replicas=3, clients=3, seed=5,
        latency=latency, config={"propagation_delay": 10.0},
        client_timeout=None,
    )
    # r2 is the laptop: 25x slower link to everyone (set after the
    # system exists so we know the names).
    for office in ("r0", "r1", "c0", "c1", "c2"):
        latency.set_link(office, "r2", ConstantLatency(25.0))

    # The laptop disconnects entirely between t=5 and t=120.
    system.injector.partition_at(5.0, ["r0", "r1", "c0", "c1"], ["r2", "c2"])
    system.injector.heal_at(120.0)

    def office_worker():
        yield system.sim.timeout(20.0)
        result = yield system.client(0).submit(
            [Operation.write("doc.title", "Quarterly Plan (office edit)")]
        )
        print(f"t={system.sim.now:6.1f}  office edit committed at {result.server}")
        yield system.sim.timeout(30.0)
        result = yield system.client(1).submit(
            [Operation.write("doc.owner", "alice")]
        )
        print(f"t={system.sim.now:6.1f}  office owner set at {result.server}")

    def laptop_worker():
        yield system.sim.timeout(40.0)
        # Disconnected: the local replica still commits instantly.
        result = yield system.client(2).submit(
            [Operation.write("doc.title", "Quarterly Plan v2 (laptop edit)")]
        )
        print(
            f"t={system.sim.now:6.1f}  laptop edit committed LOCALLY at "
            f"{result.server} while disconnected (latency={result.latency:.1f})"
        )

    handles = [system.sim.spawn(office_worker()), system.sim.spawn(laptop_worker())]
    system.sim.run_until_done(system.sim.all_of(handles))

    print(f"\nt={system.sim.now:6.1f}  before reconnection:")
    for name in system.replica_names:
        print(f"  {name}: {system.store_of(name).dump()}")
    assert not system.converged(), "sites must diverge while partitioned"

    system.sim.run(until=400.0)

    print(f"\nt={system.sim.now:6.1f}  after reconnection + reconciliation:")
    for name in system.replica_names:
        print(f"  {name}: {system.store_of(name).dump()}")
    assert system.converged(), "reconciliation must converge all copies"

    undone = sum(
        system.protocol_at(n).undone_transactions for n in system.replica_names
    )
    winner = system.store_of("r0").read("doc.title")
    print(f"\nconflict winner for doc.title: {winner!r}")
    print(f"transactions undone by reconciliation: {undone}")
    print("(the laptop's later timestamp wins under last-writer-wins; "
          "the office edit is the reconciliation casualty)")


if __name__ == "__main__":
    main()
