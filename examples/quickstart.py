#!/usr/bin/env python3
"""Quickstart: replicate a counter under any of the paper's techniques.

Builds a three-replica system, performs a few transactions, and shows
what the client saw and what every replica stored.  Change ``TECHNIQUE``
to any registry name to feel the differences: response latency, where
updates are accepted, and when secondaries catch up.

Run:  python examples/quickstart.py [technique]
"""

import sys

from repro import DB_TECHNIQUES, DS_TECHNIQUES, Operation, ReplicatedSystem

TECHNIQUE = sys.argv[1] if len(sys.argv) > 1 else "passive"


def main() -> None:
    print(f"available techniques: {DS_TECHNIQUES + DB_TECHNIQUES}")
    print(f"running quickstart under: {TECHNIQUE}\n")

    system = ReplicatedSystem(TECHNIQUE, replicas=3, clients=1, seed=42)

    # A blind write, a functional update, a multi-operation transaction
    # and a read — the request shapes of Sections 2.2 and 5.
    steps = [
        ("write x := 100", [Operation.write("x", 100)]),
        ("update x += 20", [Operation.update("x", "add", 20)]),
        (
            "transfer 30 from x to y",
            [Operation.update("x", "add", -30), Operation.update("y", "add", 30)],
        ),
        ("read x", [Operation.read("x")]),
    ]
    for label, operations in steps:
        result = system.execute(operations)
        verdict = "committed" if result.committed else f"ABORTED ({result.reason})"
        print(
            f"{label:28s} -> {verdict:10s} latency={result.latency:4.1f} "
            f"served by {result.server}"
            + (f"  value={result.value}" if result.values else "")
        )

    # Let lazy propagation / background agreement finish, then compare
    # the physical copies.
    system.settle(500)
    print("\nreplica stores after settling:")
    for name in system.replica_names:
        print(f"  {name}: {system.store_of(name).dump()}")
    print(f"\nconverged: {system.converged()}")
    print(f"protocol phase row (Figure 16): "
          f"{' '.join(system.info.descriptor.phase_names())} "
          f"[{system.info.consistency} consistency]")


if __name__ == "__main__":
    main()
