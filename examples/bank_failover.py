#!/usr/bin/env python3
"""A replicated bank account surviving a primary crash.

Demonstrates passive (primary-backup) replication — Section 3.3 — end to
end: deposits flow to the primary, backups apply the after-images via
VSCAST, the primary is killed mid-stream, the group reconfigures, and
the client fails over and continues.  The final balance shows exactly-
once semantics: no deposit is lost, none is applied twice, even though
one request was retried across the failover.

Run:  python examples/bank_failover.py
"""

from repro import Operation, ReplicatedSystem


def main() -> None:
    system = ReplicatedSystem(
        "passive", replicas=3, clients=1, seed=7,
        fd_interval=2.0, fd_timeout=8.0, client_timeout=40.0,
    )
    # Kill the primary while deposits are streaming in.
    system.injector.crash_at(95.0, "r0")

    deposits = [100, 250, 80, 40, 500, 25, 125, 380]

    def teller():
        results = []
        for amount in deposits:
            result = yield system.client(0).submit(
                [Operation.update("balance", "add", amount)]
            )
            note = f" (retries={result.retries})" if result.retries else ""
            print(
                f"t={system.sim.now:6.1f}  deposit {amount:4d} -> "
                f"{'ok' if result.committed else 'FAILED'} via {result.server}{note}"
            )
            results.append(result)
            yield system.sim.timeout(25.0)
        return results

    handle = system.sim.spawn(teller())
    results = system.sim.run_until_done(handle)
    system.settle(400)

    print(f"\nprimary after failover: {system.directory.primary} "
          f"(directory changed {system.directory.changes} time(s))")
    print("balances at surviving replicas:")
    for name in system.live_replicas():
        print(f"  {name}: {system.store_of(name).read('balance')}")

    expected = sum(a for a, r in zip(deposits, results) if r.committed)
    actual = system.store_of(system.directory.primary).read("balance")
    assert actual == expected == sum(deposits), (actual, expected)
    print(f"\nexpected balance {expected}; ledger agrees — "
          "no deposit lost or double-applied across the crash")


if __name__ == "__main__":
    main()
