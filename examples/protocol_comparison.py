#!/usr/bin/env python3
"""Run one workload under every technique and compare the trade-offs.

The table this prints is the practical upshot of the whole paper: the
same stream of update transactions costs very different amounts of
latency, messages and aborts depending on where updates are accepted
(primary vs everywhere) and when they are propagated (eager vs lazy) —
and the weak-consistency techniques pay instead with lost updates.

Run:  python examples/protocol_comparison.py

After the trade-off table, the script re-runs two representative
techniques (active vs eager_primary) with the observability layer on and
prints their metrics snapshots side by side — the same workload seen as
counters and latency histograms rather than one summary row.
"""

from repro import DB_TECHNIQUES, DS_TECHNIQUES
from repro.analysis import counter_check, messages_per_request
from repro.workload import WorkloadSpec, run_workload


def main() -> None:
    spec = WorkloadSpec(items=8, read_fraction=0.0, ops_per_transaction=1)
    print(
        f"workload: {spec.items} items, all updates, "
        "3 replicas, 2 clients x 10 transactions, seed 99\n"
    )
    header = (
        f"{'technique':18s} {'mean lat':>8s} {'p95 lat':>8s} {'msgs/txn':>9s} "
        f"{'aborts':>7s} {'converged':>10s} {'lost upd':>9s}"
    )
    print(header)
    print("-" * len(header))

    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        system, driver, summary = run_workload(
            name, spec=spec, replicas=3, clients=2, requests_per_client=10,
            seed=99, think_time=10.0, settle=500.0,
            config={"abcast": "sequencer"},
        )
        msgs = messages_per_request(system.net.stats, summary.requests)
        committed = [r for r in driver.results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        lost = "yes" if violations else "no"
        print(
            f"{name:18s} {summary.latency.mean:8.2f} {summary.latency.p95:8.2f} "
            f"{msgs:9.1f} {summary.abort_rate:7.2f} "
            f"{str(system.converged()):>10s} {lost:>9s}"
        )

    print(
        "\nreading the table:\n"
        "  - lazy techniques answer fastest but lazy_ue loses updates to\n"
        "    reconciliation (the paper's Section 4.6 warning);\n"
        "  - distributed locking pays the most messages (per-item lock\n"
        "    rounds at every site plus 2PC);\n"
        "  - certification trades latency for aborts under conflict;\n"
        "  - every strong technique converges with no lost updates."
    )

    compare_metrics("active", "eager_primary", spec)


def compare_metrics(left: str, right: str, spec: WorkloadSpec) -> None:
    """Observed re-run of two techniques; metrics snapshots side by side.

    A distributed-systems technique (every message is group
    communication) against a database one (lock waits, 2PC decisions)
    makes the snapshot differences speak: same workload, different
    counters light up.
    """
    snapshots = {}
    for name in (left, right):
        system, _driver, _summary = run_workload(
            name, spec=spec, replicas=3, clients=2, requests_per_client=10,
            seed=99, think_time=10.0, settle=500.0,
            config={"abcast": "sequencer"}, observe=True,
        )
        system.observer.finalize()
        snapshots[name] = system.observer.metrics.snapshot()

    print(f"\nmetrics snapshots, same workload: {left} vs {right}")
    print("(counters; histograms show count/mean — see docs/observability.md)")
    keys = sorted(set(snapshots[left]["counters"]) | set(snapshots[right]["counters"]))
    width = max(len(k) for k in keys) if keys else 10
    print(f"{'counter':{width}s} {left:>14s} {right:>14s}")
    print("-" * (width + 30))
    for key in keys:
        lv = snapshots[left]["counters"].get(key, 0)
        rv = snapshots[right]["counters"].get(key, 0)
        print(f"{key:{width}s} {lv:14d} {rv:14d}")
    for name in (left, right):
        hists = snapshots[name]["histograms"]
        interesting = {
            k: v for k, v in hists.items()
            if k.split("{")[0] in ("request.latency", "lock.wait_time",
                                   "lock.hold_time", "message.flight_time")
        }
        print(f"\n{name} histograms:")
        for key in sorted(interesting):
            summary = interesting[key]
            print(f"  {key}: count={summary['count']} mean={summary['mean']:.2f} "
                  f"p95={summary['p95']:.2f} p99={summary['p99']:.2f}")


if __name__ == "__main__":
    main()
