#!/usr/bin/env python3
"""Run one workload under every technique and compare the trade-offs.

The table this prints is the practical upshot of the whole paper: the
same stream of update transactions costs very different amounts of
latency, messages and aborts depending on where updates are accepted
(primary vs everywhere) and when they are propagated (eager vs lazy) —
and the weak-consistency techniques pay instead with lost updates.

Run:  python examples/protocol_comparison.py
"""

from repro import DB_TECHNIQUES, DS_TECHNIQUES
from repro.analysis import counter_check, messages_per_request
from repro.workload import WorkloadSpec, run_workload


def main() -> None:
    spec = WorkloadSpec(items=8, read_fraction=0.0, ops_per_transaction=1)
    print(
        f"workload: {spec.items} items, all updates, "
        "3 replicas, 2 clients x 10 transactions, seed 99\n"
    )
    header = (
        f"{'technique':18s} {'mean lat':>8s} {'p95 lat':>8s} {'msgs/txn':>9s} "
        f"{'aborts':>7s} {'converged':>10s} {'lost upd':>9s}"
    )
    print(header)
    print("-" * len(header))

    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        system, driver, summary = run_workload(
            name, spec=spec, replicas=3, clients=2, requests_per_client=10,
            seed=99, think_time=10.0, settle=500.0,
            config={"abcast": "sequencer"},
        )
        msgs = messages_per_request(system.net.stats, summary.requests)
        committed = [r for r in driver.results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        lost = "yes" if violations else "no"
        print(
            f"{name:18s} {summary.latency.mean:8.2f} {summary.latency.p95:8.2f} "
            f"{msgs:9.1f} {summary.abort_rate:7.2f} "
            f"{str(system.converged()):>10s} {lost:>9s}"
        )

    print(
        "\nreading the table:\n"
        "  - lazy techniques answer fastest but lazy_ue loses updates to\n"
        "    reconciliation (the paper's Section 4.6 warning);\n"
        "  - distributed locking pays the most messages (per-item lock\n"
        "    rounds at every site plus 2PC);\n"
        "  - certification trades latency for aborts under conflict;\n"
        "  - every strong technique converges with no lost updates."
    )


if __name__ == "__main__":
    main()
