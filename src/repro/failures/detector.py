"""Heartbeat-based unreliable failure detector.

Section 2.1 of the paper observes that in the asynchronous model crash
detection is necessarily *incorrect* at times: a slow process may be
suspected although it has not crashed.  This detector reproduces that
behaviour faithfully:

* every monitored node emits heartbeats each ``interval``;
* a peer is **suspected** when no heartbeat arrived for ``timeout``;
* a heartbeat from a suspected peer **rehabilitates** it and, in adaptive
  mode, increases that peer's timeout — the classic eventually-perfect
  (diamond-P style) construction, strong enough to stand in for the
  eventually-strong detector that Chandra–Toueg consensus requires.

Small timeouts give fast crash detection but frequent wrong suspicions —
exactly the trade-off the paper's semi-passive discussion (Section 3.5)
refers to with "aggressive time-outs".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..net import Message, Node
from ..sim import TraceLog

__all__ = ["FailureDetector"]

HEARTBEAT = "fd.heartbeat"


class FailureDetector:
    """Per-node failure-detector module.

    Parameters
    ----------
    node:
        The hosting node.  The detector registers its message handler and
        periodic timers on it, so it dies with the node.
    peers:
        Names of the nodes to monitor (may include ``node.name``; the local
        node is never suspected).
    interval:
        Heartbeat emission period.
    timeout:
        Initial silence threshold before suspecting a peer.
    adaptive:
        When true, each wrong suspicion increases the victim's timeout by
        ``backoff``, so suspicions of live peers eventually stop.
    """

    def __init__(
        self,
        node: Node,
        peers: List[str],
        interval: float = 5.0,
        timeout: float = 20.0,
        adaptive: bool = True,
        backoff: float = 10.0,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.peers = [p for p in peers if p != node.name]
        self.interval = interval
        self.adaptive = adaptive
        self.backoff = backoff
        self.trace = trace
        self.suspected: Set[str] = set()
        self.wrong_suspicions = 0
        self._timeouts: Dict[str, float] = {p: timeout for p in self.peers}
        self._last_heard: Dict[str, float] = {p: node.sim.now for p in self.peers}
        self._suspect_listeners: List[Callable[[str], None]] = []
        self._restore_listeners: List[Callable[[str], None]] = []
        node.on(HEARTBEAT, self._on_heartbeat)
        node.every(interval, self._emit)
        node.every(interval, self._check)
        node.add_recover_hook(self._restart)

    # -- observation API --------------------------------------------------

    def is_suspected(self, peer: str) -> bool:
        return peer in self.suspected

    def on_suspect(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(peer)`` whenever a peer becomes suspected."""
        self._suspect_listeners.append(listener)

    def on_restore(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(peer)`` when a suspected peer proves alive."""
        self._restore_listeners.append(listener)

    # -- internals ------------------------------------------------------------

    def _emit(self) -> None:
        for peer in self.peers:
            self.node.send(peer, HEARTBEAT)

    def _on_heartbeat(self, message: Message) -> None:
        peer = message.src
        self._last_heard[peer] = self.node.sim.now
        if peer in self.suspected:
            self.suspected.discard(peer)
            self.wrong_suspicions += 1
            if self.adaptive:
                self._timeouts[peer] = self._timeouts.get(peer, 0.0) + self.backoff
            if self.trace is not None:
                self.trace.record("fd", self.node.name, action="restore", peer=peer)
            for listener in self._restore_listeners:
                listener(peer)

    def _restart(self) -> None:
        """Re-arm heartbeats after the hosting node recovers.

        The crash cancelled both periodic timers, and the stale
        ``last_heard`` entries would instantly (and wrongly) suspect every
        peer, so the horizon is reset to the recovery instant.
        """
        now = self.node.sim.now
        for peer in self.peers:
            self._last_heard[peer] = now
        self.suspected.clear()
        self.node.every(self.interval, self._emit)
        self.node.every(self.interval, self._check)
        self._emit()

    def _check(self) -> None:
        now = self.node.sim.now
        for peer in self.peers:
            if peer in self.suspected:
                continue
            if now - self._last_heard[peer] > self._timeouts[peer]:
                self.suspected.add(peer)
                if self.trace is not None:
                    self.trace.record("fd", self.node.name, action="suspect", peer=peer)
                for listener in self._suspect_listeners:
                    listener(peer)

    def __repr__(self) -> str:
        return (
            f"<FailureDetector@{self.node.name} suspected={sorted(self.suspected)} "
            f"wrong={self.wrong_suspicions}>"
        )
