"""Declarative fault injection.

The injector schedules crashes, recoveries, partitions and heals at fixed
simulated times, so a failure scenario is data (a schedule) rather than
code sprinkled through a test.  The Section 6 performance-study benchmarks
("taking into account different workloads and failures assumptions") use it
to compare protocols under identical fault timelines.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..net import Network
from ..sim import Simulator, TraceLog

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules faults against a network's nodes.

    All methods may be called before or during a run; effects occur at the
    given absolute simulated times.
    """

    def __init__(self, sim: Simulator, network: Network, trace: Optional[TraceLog] = None) -> None:
        self.sim = sim
        self.network = network
        self.trace = trace
        self.planned: List[Tuple[float, str, str]] = []

    def crash_at(self, time: float, node_name: str) -> None:
        """Crash ``node_name`` at absolute time ``time``."""
        self.planned.append((time, "crash", node_name))
        self.sim.schedule_at(time, self._crash, node_name)

    def recover_at(self, time: float, node_name: str) -> None:
        """Recover ``node_name`` at absolute time ``time``."""
        self.planned.append((time, "recover", node_name))
        self.sim.schedule_at(time, self._recover, node_name)

    def partition_at(self, time: float, *groups: Iterable[str]) -> None:
        """Partition the network into ``groups`` at time ``time``."""
        label = " | ".join(",".join(sorted(g)) for g in groups)
        self.planned.append((time, "partition", label))
        frozen = [list(g) for g in groups]
        self.sim.schedule_at(time, self._partition, frozen)

    def heal_at(self, time: float) -> None:
        """Remove any partition at time ``time``."""
        self.planned.append((time, "heal", ""))
        self.sim.schedule_at(time, self._heal)

    def random_crashes(
        self,
        node_names: List[str],
        count: int,
        window: Tuple[float, float],
        recover_after: Optional[float] = None,
    ) -> List[Tuple[float, str]]:
        """Schedule ``count`` crashes of distinct nodes at random times.

        Times are drawn uniformly from ``window`` using the simulator RNG
        (deterministic under a fixed seed).  Returns the schedule for
        logging.  If ``recover_after`` is set, each crashed node recovers
        that long after its crash.
        """
        if count > len(node_names):
            raise ValueError(f"cannot crash {count} of {len(node_names)} nodes")
        victims = self.sim.rng.sample(node_names, count)
        schedule = []
        for victim in victims:
            when = self.sim.rng.uniform(*window)
            self.crash_at(when, victim)
            if recover_after is not None:
                self.recover_at(when + recover_after, victim)
            schedule.append((when, victim))
        return sorted(schedule)

    # -- effect callbacks --------------------------------------------------

    def _crash(self, node_name: str) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="crash", node=node_name)
        self.network.node(node_name).crash()

    def _recover(self, node_name: str) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="recover", node=node_name)
        self.network.node(node_name).recover()

    def _partition(self, groups: List[List[str]]) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="partition")
        self.network.partition(*groups)

    def _heal(self) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="heal")
        self.network.heal()
