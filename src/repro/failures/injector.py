"""Declarative fault injection.

The injector schedules crashes, recoveries, partitions and heals at fixed
simulated times, so a failure scenario is data (a schedule) rather than
code sprinkled through a test.  The Section 6 performance-study benchmarks
("taking into account different workloads and failures assumptions") use it
to compare protocols under identical fault timelines.

Beyond the crash-stop faults of the paper's model, the injector also arms
the network fault plane (message drop, duplication, reordering jitter and
gray-failure slow nodes — see :meth:`repro.net.Network.set_fault`), which
the chaos campaigns in :mod:`repro.resilience` compose into named
scenarios.

Node names are validated when a fault is *scheduled*, not when it fires:
``crash_at(t, "typo")`` raises immediately instead of detonating deep in a
run.  Random schedules draw from the dedicated ``failures.injector``
stream, so adding or removing a campaign never perturbs workload
randomness under the same seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..net import Network
from ..sim import Simulator, TraceLog

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules faults against a network's nodes.

    All methods may be called before or during a run; effects occur at the
    given absolute simulated times.
    """

    def __init__(self, sim: Simulator, network: Network, trace: Optional[TraceLog] = None) -> None:
        self.sim = sim
        self.network = network
        self.trace = trace
        self.planned: List[Tuple[float, str, str]] = []
        # Own random stream: scheduling random faults must not advance
        # `sim.rng`, which feeds latencies and workload generation.
        self.rng = sim.stream("failures.injector")

    def _validate(self, *node_names: str) -> None:
        """Fail fast on unknown node names (raises NetworkError)."""
        for name in node_names:
            self.network.node(name)

    def crash_at(self, time: float, node_name: str) -> None:
        """Crash ``node_name`` at absolute time ``time``."""
        self._validate(node_name)
        self.planned.append((time, "crash", node_name))
        self.sim.schedule_at(time, self._crash, node_name)

    def recover_at(self, time: float, node_name: str) -> None:
        """Recover ``node_name`` at absolute time ``time``."""
        self._validate(node_name)
        self.planned.append((time, "recover", node_name))
        self.sim.schedule_at(time, self._recover, node_name)

    def partition_at(self, time: float, *groups: Iterable[str]) -> None:
        """Partition the network into ``groups`` at time ``time``."""
        frozen = [list(g) for g in groups]
        self._validate(*(name for group in frozen for name in group))
        label = " | ".join(",".join(sorted(g)) for g in frozen)
        self.planned.append((time, "partition", label))
        self.sim.schedule_at(time, self._partition, frozen)

    def heal_at(self, time: float) -> None:
        """Remove any partition at time ``time``."""
        self.planned.append((time, "heal", ""))
        self.sim.schedule_at(time, self._heal)

    # -- link-fault windows (network fault plane) --------------------------

    def fault_at(
        self,
        time: float,
        node_name: str,
        kind: str,
        value: float,
        duration: Optional[float] = None,
    ) -> None:
        """Arm a link fault on ``node_name`` at ``time``.

        ``kind`` is one of ``"drop"``, ``"duplicate"``, ``"jitter"``,
        ``"slow"`` (see :meth:`repro.net.Network.set_fault` for the
        semantics and value ranges — values are validated here, at
        schedule time).  With ``duration`` the fault self-clears after
        that long; otherwise it stays armed until :meth:`clear_faults_at`.
        """
        self._validate(node_name)
        # Borrow the network's range validation without arming anything.
        if kind not in Network._FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {Network._FAULT_KINDS}"
            )
        if kind in ("drop", "duplicate") and not 0.0 <= value < 1.0:
            raise ValueError(f"{kind} probability must be in [0, 1), got {value}")
        if kind == "jitter" and not value >= 0.0:
            raise ValueError(f"jitter bound must be >= 0, got {value}")
        if kind == "slow" and not value >= 1.0:
            raise ValueError(f"slow factor must be >= 1, got {value}")
        self.planned.append((time, kind, node_name))
        self.sim.schedule_at(time, self._set_fault, node_name, kind, value)
        if duration is not None:
            self.clear_faults_at(time + duration, node_name)

    def drop_at(self, time: float, node_name: str, rate: float,
                duration: Optional[float] = None) -> None:
        """Drop each message to/from ``node_name`` with probability ``rate``."""
        self.fault_at(time, node_name, "drop", rate, duration)

    def duplicate_at(self, time: float, node_name: str, rate: float,
                     duration: Optional[float] = None) -> None:
        """Duplicate delivered messages to/from ``node_name`` with probability ``rate``."""
        self.fault_at(time, node_name, "duplicate", rate, duration)

    def jitter_at(self, time: float, node_name: str, magnitude: float,
                  duration: Optional[float] = None) -> None:
        """Add uniform ``[0, magnitude]`` post-FIFO delay (reordering) on the node's links."""
        self.fault_at(time, node_name, "jitter", magnitude, duration)

    def slow_at(self, time: float, node_name: str, factor: float,
                duration: Optional[float] = None) -> None:
        """Multiply the node's link latency by ``factor`` (gray-failure slow node)."""
        self.fault_at(time, node_name, "slow", factor, duration)

    def clear_faults_at(self, time: float, node_name: Optional[str] = None) -> None:
        """Disarm link faults for one node (or all nodes) at ``time``."""
        if node_name is not None:
            self._validate(node_name)
        self.planned.append((time, "clear-faults", node_name or "*"))
        self.sim.schedule_at(time, self._clear_faults, node_name)

    def random_crashes(
        self,
        node_names: List[str],
        count: int,
        window: Tuple[float, float],
        recover_after: Optional[float] = None,
    ) -> List[Tuple[float, str]]:
        """Schedule ``count`` crashes of distinct nodes at random times.

        Times are drawn uniformly from ``window`` using the injector's own
        named stream (deterministic under a fixed seed, and independent of
        the workload draws on ``sim.rng``).  Returns the schedule for
        logging.  If ``recover_after`` is set, each crashed node recovers
        that long after its crash.
        """
        if count > len(node_names):
            raise ValueError(f"cannot crash {count} of {len(node_names)} nodes")
        self._validate(*node_names)
        victims = self.rng.sample(node_names, count)
        schedule = []
        for victim in victims:
            when = self.rng.uniform(*window)
            self.crash_at(when, victim)
            if recover_after is not None:
                self.recover_at(when + recover_after, victim)
            schedule.append((when, victim))
        return sorted(schedule)

    # -- effect callbacks --------------------------------------------------

    def _crash(self, node_name: str) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="crash", node=node_name)
        self.network.node(node_name).crash()

    def _recover(self, node_name: str) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="recover", node=node_name)
        self.network.node(node_name).recover()

    def _partition(self, groups: List[List[str]]) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="partition")
        self.network.partition(*groups)

    def _heal(self) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="heal")
        self.network.heal()

    def _set_fault(self, node_name: str, kind: str, value: float) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action=kind, node=node_name,
                              value=value)
        self.network.set_fault(node_name, kind, value)

    def _clear_faults(self, node_name: Optional[str]) -> None:
        if self.trace is not None:
            self.trace.record("fault", "injector", action="clear-faults",
                              node=node_name or "*")
        self.network.clear_faults(node_name)
