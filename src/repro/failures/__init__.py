"""Fault model: crash/partition injection and unreliable failure detection."""

from .detector import FailureDetector
from .injector import FailureInjector

__all__ = ["FailureDetector", "FailureInjector"]
