"""The simulated network fabric.

The :class:`Network` connects named nodes, delivers messages after a
latency sampled from a :class:`~repro.net.latency.LatencyModel`, and
implements the fault model needed by the paper's discussion:

* **Crash-stop nodes** — messages to or from a crashed node vanish.
* **Partitions** — the node set can be split into groups; cross-group
  messages are dropped until :meth:`heal` is called.
* **Message loss** — an optional uniform drop probability, used to test
  that the reliable channels in :mod:`repro.groupcomm` mask losses.
* **FIFO links** — by default each directed link delivers in send order
  (TCP-like), which Section 3.3 of the paper assumes for primary-backup
  communication.  Set ``fifo=False`` to allow reordering.

The network also keeps per-message-type counters: the message-overhead
benchmark (Section 6's promised performance study) reads protocol cost
directly from these.
"""

from __future__ import annotations

import copy
import itertools
from collections import Counter
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, TYPE_CHECKING

from ..errors import NetworkError, SimulationError
from ..sim import Simulator, TraceLog
from .latency import ConstantLatency, LatencyModel
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

__all__ = ["Network", "NetworkStats"]


_IMMUTABLE_TYPES = (str, int, float, bool, bytes, type(None))


def _deeply_immutable(value: Any) -> bool:
    """True when ``value`` cannot be mutated, not even through nesting."""
    if isinstance(value, _IMMUTABLE_TYPES):
        return True
    if isinstance(value, tuple):
        return all(_deeply_immutable(item) for item in value)
    if isinstance(value, frozenset):
        return all(_deeply_immutable(item) for item in value)
    return False


def _copy_tree(value: Any) -> Any:
    """Deep copy of the payload trees that travel the simulated wire.

    Specialized for the dict/list nesting that message payloads are made
    of — much cheaper than ``copy.deepcopy`` (no memo bookkeeping), with
    a deepcopy fallback for exotic mutable values.
    """
    cls = value.__class__
    if cls is dict or cls is _SharedPayload:
        return {key: _copy_tree(item) for key, item in value.items()}
    if cls is list:
        return [_copy_tree(item) for item in value]
    if _deeply_immutable(value):
        return value
    return copy.deepcopy(value)


def _copier_for(value: Any) -> Callable[[Any], Any]:
    """Cheapest per-delivery copier that isolates ``value``.

    A dict or list whose elements are themselves deeply immutable only
    needs a C-level shallow copy (``dict``/``list``); anything deeper
    falls back to the recursive :func:`_copy_tree`.
    """
    cls = value.__class__
    if cls is dict and all(_deeply_immutable(item) for item in value.values()):
        return dict
    if cls is list and all(_deeply_immutable(item) for item in value):
        return list
    return _copy_tree


class _SharedPayload(dict):
    """Broadcast payload snapshot shared by every destination envelope.

    ``Network.broadcast`` snapshots the caller's payload once and
    precomputes ``copiers`` — a ``(key, copier)`` pair for every value
    that could be mutated through nesting.  Each *delivered* message then
    materializes its own copy just before dispatch: a C-speed shallow
    ``dict`` plus the precomputed copier on only the mutable values.
    Copy-on-write beats the old per-destination ``dict()``: dropped
    messages never pay for a copy, immutable values are shared outright,
    and — unlike the old shallow copy — one replica mutating a nested
    value can no longer leak into its siblings' envelopes.
    """

    __slots__ = ("copiers",)

    def materialize(self) -> dict:
        copied = dict(self)
        for key, copier in self.copiers:
            copied[key] = copier(copied[key])
        return copied


class NetworkStats:
    """Counters describing network usage during a run.

    Conservation invariant (checked by the robustness property tests):
    every envelope that enters the fabric leaves it exactly once, so
    ``delivered + dropped_loss + dropped_partition + dropped_crash +
    dropped_fault == sent + duplicated`` — fault-plane duplicates are
    extra envelopes and are counted on the right-hand side.
    """

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_partition = 0
        self.dropped_crash = 0
        self.dropped_fault = 0
        self.duplicated = 0
        self.by_type: Counter = Counter()

    def messages_matching(self, prefix: str) -> int:
        """Total sends whose message type starts with ``prefix``."""
        return sum(count for mtype, count in self.by_type.items() if mtype.startswith(prefix))

    def reset(self) -> None:
        self.__init__()

    def __repr__(self) -> str:
        return (
            f"<NetworkStats sent={self.sent} delivered={self.delivered} "
            f"lost={self.dropped_loss} partitioned={self.dropped_partition} "
            f"crashed={self.dropped_crash}>"
        )


class Network:
    """Message fabric connecting all nodes of a simulation.

    Parameters
    ----------
    sim:
        The simulator providing the clock, RNG and event queue.
    latency:
        Latency model for all links; defaults to one time unit per hop.
    loss_rate:
        Probability in ``[0, 1)`` that any individual message is silently
        dropped.  Reliable channels recover from this via retransmission.
    fifo:
        When true (default), each directed link is FIFO: a message can
        never overtake an earlier message on the same link.
    trace:
        Optional :class:`TraceLog` receiving a ``message`` event per send.
    obs:
        Optional observer (duck-typed, see :mod:`repro.obs`): opens a
        flight span per send and closes it at delivery or drop.  The
        network never imports the observability layer — ``obs`` sits
        above ``net`` in the import DAG.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        fifo: bool = True,
        trace: Optional[TraceLog] = None,
        obs: Optional[Any] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.loss_rate = loss_rate
        self.fifo = fifo
        self.trace = trace
        self.obs = obs
        self.stats = NetworkStats()
        self._nodes: Dict[str, "Node"] = {}
        self._partition: Optional[List[FrozenSet[str]]] = None
        # node name -> partition-group index, rebuilt on partition()/heal():
        # turns the per-message _same_side check into two dict lookups
        # instead of a scan over every group.
        self._group_of: Optional[Dict[str, int]] = None
        self._last_arrival: Dict[tuple, float] = {}
        self._message_ids = itertools.count(1)
        # Fault plane (chaos campaigns): per-node link misbehaviour, keyed
        # by node name.  All randomness draws from the dedicated
        # ``net.faults`` stream so arming a fault never perturbs the
        # latency/loss draws of the base run under the same seed.
        self._fault_drop: Dict[str, float] = {}
        self._fault_dup: Dict[str, float] = {}
        self._fault_jitter: Dict[str, float] = {}
        self._fault_slow: Dict[str, float] = {}
        self._have_faults = False
        self._faults_rng: Optional[Any] = None

    # -- membership -----------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach a node; called by the :class:`Node` constructor."""
        if node.name in self._nodes:
            raise SimulationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def node(self, name: str) -> "Node":
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    # -- partitions ------------------------------------------------------------

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network into isolated groups.

        Nodes not named in any group form an implicit final group.
        Messages between different groups are dropped until :meth:`heal`.
        """
        named = [frozenset(group) for group in groups]
        seen = set().union(*named) if named else set()
        rest = frozenset(name for name in self._nodes if name not in seen)
        self._partition = named + ([rest] if rest else [])
        group_of: Dict[str, int] = {}
        for index, group in enumerate(self._partition):
            for name in sorted(group):
                if name not in group_of:  # first group wins, like the old scan
                    group_of[name] = index
        self._group_of = group_of

    def heal(self) -> None:
        """Remove any active partition."""
        self._partition = None
        self._group_of = None

    # -- fault plane -----------------------------------------------------------

    _FAULT_KINDS = ("drop", "duplicate", "jitter", "slow")

    def set_fault(self, node: str, kind: str, value: float) -> None:
        """Arm a link fault on every link touching ``node``.

        Kinds:

        * ``"drop"`` — probability in ``[0, 1)`` that a message to or from
          the node is silently discarded (gray packet loss beyond what the
          reliable channels were tuned for).
        * ``"duplicate"`` — probability in ``[0, 1)`` that a delivered
          message is followed by a second, independently delayed copy of
          the same envelope (same ``msg_id``: receivers must deduplicate).
        * ``"jitter"`` — extra delay bound: each message gains a uniform
          ``[0, value]`` delay *after* the FIFO clamp, so a jittered link
          can reorder (the reordering fault of the campaign DSL).
        * ``"slow"`` — latency multiplier ``>= 1`` on the node's links
          (a gray-failure slow replica: alive, just late).
        """
        self.node(node)  # validate at arm time, not at first send
        if kind not in self._FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {self._FAULT_KINDS}")
        if kind in ("drop", "duplicate") and not 0.0 <= value < 1.0:
            raise ValueError(f"{kind} probability must be in [0, 1), got {value}")
        if kind == "jitter" and not value >= 0.0:
            raise ValueError(f"jitter bound must be >= 0, got {value}")
        if kind == "slow" and not value >= 1.0:
            raise ValueError(f"slow factor must be >= 1, got {value}")
        table = getattr(self, f"_fault_{'dup' if kind == 'duplicate' else kind}")
        table[node] = value
        self._have_faults = True
        if self._faults_rng is None:
            self._faults_rng = self.sim.stream("net.faults")

    def clear_faults(self, node: Optional[str] = None) -> None:
        """Disarm faults for ``node``, or all faults when ``node`` is None."""
        for table in (self._fault_drop, self._fault_dup, self._fault_jitter, self._fault_slow):
            if node is None:
                table.clear()
            else:
                table.pop(node, None)
        self._have_faults = any(
            (self._fault_drop, self._fault_dup, self._fault_jitter, self._fault_slow)
        )

    def active_faults(self, node: str) -> Dict[str, float]:
        """The faults currently armed on ``node`` (kind -> value)."""
        found = {}
        for kind, table in (
            ("drop", self._fault_drop), ("duplicate", self._fault_dup),
            ("jitter", self._fault_jitter), ("slow", self._fault_slow),
        ):
            if node in table:
                found[kind] = table[node]
        return found

    def _same_side(self, a: str, b: str) -> bool:
        group_of = self._group_of
        if group_of is None:
            return True
        group = group_of.get(a)
        # A node absent from the map (registered after partition()) is
        # isolated, matching the old whole-group scan.
        return group is not None and group == group_of.get(b)

    # -- sending ---------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        type: str,
        payload: Optional[dict] = None,
        reply_to: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Message:
        """Send one message; returns the envelope (delivery not guaranteed).

        ``deadline`` stamps the envelope with an absolute give-up time
        (see :class:`Message`); it is metadata, not payload.
        """
        message = Message(
            src=src,
            dst=dst,
            type=type,
            payload=payload,
            send_time=self.sim.now,
            reply_to=reply_to,
            msg_id=next(self._message_ids),
        )
        message.deadline = deadline
        self.stats.sent += 1
        self.stats.by_type[type] += 1
        if self.trace is not None:
            self.trace.record("message", src, dst=dst, type=type, msg_id=message.msg_id)
        if self.obs is not None:
            self.obs.on_message_send(message)
        self._route(message)
        return message

    def broadcast(
        self,
        src: str,
        dsts: Iterable[str],
        type: str,
        payload: Optional[dict] = None,
    ) -> List[Message]:
        """Point-to-point send to each destination (no extra semantics).

        The payload is snapshotted once and shared copy-on-write across
        the destination envelopes; each delivered message materializes
        its own (deep, if needed) copy in :meth:`_deliver`.
        """
        shared = _SharedPayload(payload or {})
        shared.copiers = tuple(
            (key, _copier_for(value))
            for key, value in shared.items()
            if not _deeply_immutable(value)
        )
        return [self.send(src, dst, type, payload=shared) for dst in dsts]

    def _route(self, message: Message) -> None:
        sender = self._nodes.get(message.src)
        if sender is not None and sender.crashed:
            self.stats.dropped_crash += 1
            self._drop(message, "crash")
            return
        if message.dst not in self._nodes:
            # Close the flight span the observer just opened; the raise
            # below would otherwise leave it dangling forever.
            self._drop(message, "no-route")
            raise NetworkError(f"unknown destination {message.dst!r}")
        if not self._same_side(message.src, message.dst):
            self.stats.dropped_partition += 1
            self._drop(message, "partition")
            return
        if self.loss_rate > 0.0 and self.sim.rng.random() < self.loss_rate:
            self.stats.dropped_loss += 1
            self._drop(message, "loss")
            return
        delay = self.latency.sample(self.sim.rng, message.src, message.dst)
        if self._have_faults:
            dropped, delay, extra = self._apply_faults(message, delay)
            if dropped:
                return
        else:
            extra = 0.0
        arrival = self.sim.now + delay
        if self.fifo:
            link = (message.src, message.dst)
            arrival = max(arrival, self._last_arrival.get(link, 0.0))
            self._last_arrival[link] = arrival
        # Jitter lands *after* the FIFO clamp: a jittered link may reorder.
        self.sim.schedule_at(arrival + extra, self._deliver, message)

    def _apply_faults(self, message: Message, delay: float) -> tuple:
        """Apply armed link faults; returns ``(dropped, delay, extra)``."""
        rng = self._faults_rng
        src, dst = message.src, message.dst
        drop = max(self._fault_drop.get(src, 0.0), self._fault_drop.get(dst, 0.0))
        if drop > 0.0 and rng.random() < drop:
            self.stats.dropped_fault += 1
            self._drop(message, "fault")
            return True, delay, 0.0
        slow = max(self._fault_slow.get(src, 1.0), self._fault_slow.get(dst, 1.0))
        if slow > 1.0:
            delay *= slow
        jitter = self._fault_jitter.get(src, 0.0) + self._fault_jitter.get(dst, 0.0)
        extra = rng.uniform(0.0, jitter) if jitter > 0.0 else 0.0
        dup = max(self._fault_dup.get(src, 0.0), self._fault_dup.get(dst, 0.0))
        if dup > 0.0 and rng.random() < dup:
            self._duplicate(message, delay)
        return False, delay, extra

    def _duplicate(self, message: Message, delay: float) -> None:
        """Inject a second, independently delayed copy of ``message``.

        The copy keeps the original ``msg_id`` — it models the *same*
        packet arriving twice, which is exactly what idempotency keys and
        the duplicate-reply cache exist to absorb — but gets its own
        payload tree so the two receivers' dispatches cannot alias.  The
        copy is unobserved (``span_id`` stays None): the observer opened
        one flight span for one logical send.
        """
        ghost = Message(
            src=message.src,
            dst=message.dst,
            type=message.type,
            payload=_copy_tree(message.payload),
            send_time=message.send_time,
            reply_to=message.reply_to,
            msg_id=message.msg_id,
        )
        ghost.deadline = message.deadline
        self.stats.duplicated += 1
        lag = self._faults_rng.uniform(0.0, delay if delay > 0.0 else 1.0)
        self.sim.schedule_at(self.sim.now + delay + lag, self._deliver, ghost)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or node.crashed:
            self.stats.dropped_crash += 1
            self._drop(message, "crash")
            return
        if not self._same_side(message.src, message.dst):
            # Partition formed while the message was in flight.
            self.stats.dropped_partition += 1
            self._drop(message, "partition")
            return
        payload = message.payload
        if payload.__class__ is _SharedPayload:
            # Copy-on-write materialization: this destination gets its own
            # payload the moment the message is actually delivered.
            message.payload = payload.materialize()
        self.stats.delivered += 1
        if self.obs is not None:
            self.obs.on_message_deliver(message)
        node._dispatch(message)

    def _drop(self, message: Message, cause: str) -> None:
        if self.obs is not None:
            self.obs.on_message_drop(message, cause)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} {self.stats!r}>"
