"""Network message representation.

Messages are small typed envelopes: a ``type`` string used for handler
dispatch plus a free-form payload dictionary.  Protocol layers agree on the
payload keys for each message type; keeping the payload schemaless avoids a
combinatorial explosion of dataclasses across the dozen protocols in the
library while the ``type`` field keeps dispatch explicit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

__all__ = ["Message"]


class Message:
    """An envelope travelling between two nodes.

    Attributes
    ----------
    msg_id:
        Identifier assigned by the :class:`~repro.net.network.Network`
        that sends the message (unique within one network).
    src, dst:
        Names of the sending and receiving nodes.
    type:
        Dispatch key, e.g. ``"abcast.deliver"`` or ``"2pc.vote_request"``.
    payload:
        Message body.  Accessible via mapping syntax: ``msg["key"]``.
    send_time:
        Simulated time at which the message entered the network.
    reply_to:
        Correlation id for request/reply exchanges (see ``Node.call``).
    span_id:
        Observability metadata: id of the flight span an observer opened
        for this envelope (``None`` when the run is not observed).  It
        piggybacks on the envelope — not the payload — so observed and
        unobserved runs put identical bytes on the simulated wire.
    deadline:
        Absolute simulated time after which the sender no longer cares
        about this request (``None`` when the sender set no budget).  Like
        ``span_id`` it rides on the envelope, not the payload: a deadline
        is routing/service metadata, not protocol state, and servers use
        it to shed work for requests the client has already abandoned.
    """

    __slots__ = (
        "msg_id", "src", "dst", "type", "payload", "send_time", "reply_to",
        "span_id", "deadline",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        type: str,
        payload: Optional[Dict[str, Any]] = None,
        send_time: float = 0.0,
        reply_to: Optional[int] = None,
        msg_id: int = 0,
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.type = type
        self.payload = payload if payload is not None else {}
        self.send_time = send_time
        self.reply_to = reply_to
        self.span_id: Optional[int] = None
        self.deadline: Optional[float] = None

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def __contains__(self, key: str) -> bool:
        return key in self.payload

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)

    def keys(self) -> Iterator[str]:
        return iter(self.payload.keys())

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.src}->{self.dst} "
            f"{self.type} {self.payload!r}>"
        )
