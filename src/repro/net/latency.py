"""Message latency models.

A latency model maps a (source, destination) pair to a delivery delay.
Models are sampled with the simulator's seeded RNG, so runs remain
deterministic.  All delays are in abstract simulated time units; the
benchmarks interpret one unit as one millisecond.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerLinkLatency",
]


class LatencyModel:
    """Base class: subclasses implement :meth:`sample`."""

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """``base`` plus an exponential tail with the given ``mean``.

    Models a LAN with occasional queueing: most messages arrive near
    ``base`` but a long tail exists.  ``cap`` bounds the tail so a single
    unlucky sample cannot stall a whole benchmark.
    """

    def __init__(self, base: float = 0.5, mean: float = 0.5, cap: float = 50.0) -> None:
        if base < 0 or mean <= 0 or cap <= 0:
            raise ValueError("base >= 0, mean > 0 and cap > 0 required")
        self.base = base
        self.mean = mean
        self.cap = cap

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.base + min(rng.expovariate(1.0 / self.mean), self.cap)

    def __repr__(self) -> str:
        return f"ExponentialLatency(base={self.base}, mean={self.mean})"


class PerLinkLatency(LatencyModel):
    """Different models per directed link, with a default fallback.

    Useful for WAN topologies where some replica pairs are remote: the
    lazy-replication benchmarks use this to model a mobile client syncing
    over a slow link.
    """

    def __init__(self, default: LatencyModel) -> None:
        self.default = default
        self._links: Dict[Tuple[str, str], LatencyModel] = {}

    def set_link(self, src: str, dst: str, model: LatencyModel, symmetric: bool = True) -> None:
        """Override the latency model for ``src -> dst`` (and back)."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        model = self._links.get((src, dst), self.default)
        return model.sample(rng, src, dst)

    def __repr__(self) -> str:
        return f"PerLinkLatency(default={self.default!r}, overrides={len(self._links)})"
