"""Node: an addressable process attached to the network.

A node owns message handlers, timers, and simulated processes.  Crashing a
node atomically silences it: in-flight handlers are interrupted, timers
cancelled, pending RPCs failed, and the network stops delivering to it.
This implements the crash-stop model used throughout the paper; database
nodes additionally keep *durable* state (storage, logs) that survives
:meth:`Node.recover`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import NodeCrashed, SimulationError
from ..sim import Future, Process, Simulator, Timer
from .message import Message
from .network import Network

__all__ = ["Node"]

REPLY_TYPE = "$reply"


class Node:
    """A named participant in the simulation.

    Subclasses register message handlers with :meth:`on` (usually in their
    constructor) and use :meth:`send`, :meth:`call` and :meth:`reply` to
    communicate.  All activity started through :meth:`spawn`, :meth:`after`
    and :meth:`every` is tracked and torn down on :meth:`crash`.
    """

    def __init__(self, sim: Simulator, network: Network, name: str) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.crashed = False
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._default_handler: Optional[Callable[[Message], None]] = None
        self._pending_calls: Dict[int, Future] = {}
        self._processes: List[Process] = []
        self._timers: List[Timer] = []
        # Dead-entry sweeps are amortized: each list is filtered only once
        # it reaches its watermark, and the watermark is then set to twice
        # the surviving length — O(1) amortized per spawn/after instead of
        # the old O(n) filter on every append past a fixed threshold.
        self._processes_watermark = 64
        self._timers_watermark = 64
        self._recover_hooks: List[Callable[[], None]] = []
        self._uids = itertools.count(1)
        network.register(self)

    # -- handler registration ---------------------------------------------

    def on(self, msg_type: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages of ``msg_type``."""
        if msg_type in self._handlers:
            raise SimulationError(f"{self.name}: duplicate handler for {msg_type!r}")
        self._handlers[msg_type] = handler

    def on_default(self, handler: Callable[[Message], None]) -> None:
        """Register a fallback handler for unmatched message types."""
        self._default_handler = handler

    def fresh_uid(self) -> int:
        """Node-local monotonically increasing id.

        Shared by every protocol endpoint hosted on this node, so ids of
        the form ``f"{node.name}#{node.fresh_uid()}"`` are globally unique
        while staying deterministic across same-seed runs (unlike a
        module-level counter, whose value depends on interpreter history).
        """
        return next(self._uids)

    # -- communication -------------------------------------------------------

    def send(self, dst: str, msg_type: str, **payload: Any) -> None:
        """Fire-and-forget message."""
        if self.crashed:
            return
        self.network.send(self.name, dst, msg_type, payload=payload)

    def send_many(self, dsts: List[str], msg_type: str, **payload: Any) -> None:
        """Point-to-point send of the same payload to several nodes."""
        for dst in dsts:
            self.send(dst, msg_type, **payload)

    def call(
        self,
        dst: str,
        msg_type: str,
        timeout: Optional[float] = None,
        **payload: Any,
    ) -> Future:
        """Request/reply exchange.

        Returns a future that resolves with the reply message.  If
        ``timeout`` is given and no reply arrives in time, the future fails
        with :class:`TimeoutError`.  If this node crashes first, the future
        fails with :class:`NodeCrashed`.
        """
        future = self.sim.future(label=f"{self.name}->{dst}:{msg_type}")
        if self.crashed:
            future.set_exception(NodeCrashed(f"{self.name} is crashed"))
            return future
        message = self.network.send(self.name, dst, msg_type, payload=payload)
        self._pending_calls[message.msg_id] = future
        if timeout is not None:
            def expire() -> None:
                if not future.done:
                    future.set_exception(
                        TimeoutError(f"{msg_type} to {dst} timed out after {timeout}")
                    )
            timer: Optional[Timer] = self.after(timeout, expire)
        else:
            timer = None

        def cleanup(_f: Future) -> None:
            self._pending_calls.pop(message.msg_id, None)
            # Cancel the timeout guard as soon as the call resolves —
            # RPC-heavy runs would otherwise queue one dead timer per
            # reply until its distant fire time.
            if timer is not None:
                timer.cancel()

        future.add_callback(cleanup)
        return future

    def reply(self, request: Message, **payload: Any) -> None:
        """Answer a message previously sent with :meth:`call`."""
        if self.crashed:
            return
        self.network.send(
            self.name, request.src, REPLY_TYPE, payload=payload, reply_to=request.msg_id
        )

    # -- dispatch (called by the network) -----------------------------------

    def _dispatch(self, message: Message) -> None:
        if self.crashed:
            return
        obs = self.network.obs
        if obs is not None and message.span_id is not None:
            # Bracket the handler in a span parented under the message's
            # flight span, so work it performs — phase records, further
            # sends — lands in the request's causal tree.
            with obs.handler_context(self.name, message):
                self._dispatch_inner(message)
        else:
            self._dispatch_inner(message)

    def _dispatch_inner(self, message: Message) -> None:
        if message.type == REPLY_TYPE and message.reply_to is not None:
            future = self._pending_calls.pop(message.reply_to, None)
            if future is not None and not future.done:
                future.set_result(message)
            return
        handler = self._handlers.get(message.type, self._default_handler)
        if handler is None:
            raise SimulationError(
                f"{self.name}: no handler for message type {message.type!r}"
            )
        handler(message)

    # -- tracked activity -------------------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a process owned by this node (interrupted on crash).

        Under observation, the spawning span (typically the handler that
        called us) is re-pushed around every resumption of the process,
        so spans the process starts later — message flights of a 2PC
        coordinator, retry rounds — stay in the request's causal tree
        instead of becoming parentless background work.  The wrapper is
        pure bookkeeping on the tracer's context stack: no events are
        scheduled and no yields are added, so observed and unobserved
        runs interleave identically.
        """
        obs = self.network.obs
        if obs is not None and isinstance(generator, Generator):
            span = obs.tracer.current
            if span is not None:
                generator = _with_span_context(obs.tracer, span, generator)
        process = self.sim.spawn(generator, name=name or f"{self.name}-proc")
        processes = self._processes
        processes.append(process)
        if len(processes) >= self._processes_watermark:
            self._processes = [p for p in processes if p.alive]
            self._processes_watermark = max(64, 2 * len(self._processes))
        return process

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule a callback owned by this node (cancelled on crash)."""
        timer = self.sim.schedule(delay, self._guarded, callback, args)
        timers = self._timers
        timers.append(timer)
        if len(timers) >= self._timers_watermark:
            self._timers = [t for t in timers if not t.cancelled]
            self._timers_watermark = max(64, 2 * len(self._timers))
        return timer

    def every(self, interval: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` periodically until the node crashes."""
        def tick() -> None:
            callback()
            if not self.crashed:
                self.after(interval, tick)
        self.after(interval, tick)

    def _guarded(self, callback: Callable[..., None], args: tuple) -> None:
        if not self.crashed:
            callback(*args)

    # -- failure model -----------------------------------------------------------

    def crash(self) -> None:
        """Crash-stop this node.

        All owned processes are interrupted with :class:`NodeCrashed`, all
        timers cancelled, and all pending RPCs failed.  The network drops
        messages to and from crashed nodes.
        """
        if self.crashed:
            return
        self.crashed = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self._timers_watermark = 64
        for process in self._processes:
            process.interrupt(NodeCrashed(f"{self.name} crashed"))
        self._processes.clear()
        self._processes_watermark = 64
        pending, self._pending_calls = self._pending_calls, {}
        for future in pending.values():
            if not future.done:
                future.set_exception(NodeCrashed(f"{self.name} crashed"))
        self.on_crash()

    def recover(self) -> None:
        """Restart a crashed node.

        Volatile state is gone; durable state is whatever the subclass
        preserved.  Subclasses hook :meth:`on_recover` to rebuild volatile
        structures (e.g. re-acquire no locks, restart heartbeats).
        """
        if not self.crashed:
            return
        self.crashed = False
        for hook in self._recover_hooks:
            hook()
        self.on_recover()

    def add_recover_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run on every :meth:`recover`.

        Components that arm periodic timers (failure detectors, batchers)
        use this to restart them — crash cancels all timers permanently.
        """
        self._recover_hooks.append(hook)

    def on_crash(self) -> None:
        """Subclass hook invoked after the node crashes."""

    def on_recover(self) -> None:
        """Subclass hook invoked after the node recovers."""

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.name} {state}>"


def _with_span_context(
    tracer: Any, span: Any, generator: Generator
) -> Generator:
    """Drive ``generator`` with ``span`` pushed during each resumption.

    The simulator resumes processes with an empty tracer context (they
    run from the event loop, not from the dispatch that spawned them);
    this wrapper restores the spawning span for exactly the synchronous
    stretch between two yields.  ``StopIteration`` from the inner
    generator must be converted to a plain ``return`` (PEP 479 would
    otherwise turn it into a ``RuntimeError``).
    """
    value: Any = None
    error: Optional[BaseException] = None
    while True:
        tracer.push(span)
        try:
            if error is not None:
                exc, error = error, None
                item = generator.throw(exc)
            else:
                item = generator.send(value)
        except StopIteration as stop:
            return stop.value
        finally:
            tracer.pop()
        try:
            value = yield item
        except BaseException as exc:
            error, value = exc, None
