"""Simulated network: messages, latency models, fabric and nodes."""

from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
)
from .message import Message
from .network import Network, NetworkStats
from .node import Node

__all__ = [
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerLinkLatency",
]
