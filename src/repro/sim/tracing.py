"""Simulation-time structured tracing.

A :class:`TraceLog` records timestamped, categorised events during a run.
It is the backbone of the paper-figure reproduction: replication protocols
emit phase-transition records into a trace, and the figure benchmarks
render and validate those records against the paper's diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes
    ----------
    time:
        Simulated time at which the event was recorded.
    category:
        Free-form grouping key, e.g. ``"phase"``, ``"message"``, ``"crash"``.
    source:
        Identifier of the component that recorded the event (node name,
        protocol name, ...).
    data:
        Arbitrary payload describing the event.
    """

    time: float
    category: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        return f"[{self.time:9.3f}] {self.category}/{self.source}: {items}"


class TraceLog:
    """Append-only log of :class:`TraceEvent` records with query helpers."""

    def __init__(self, sim: Any = None) -> None:
        self._sim = sim
        self._events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def record(self, category: str, source: str, **data: Any) -> TraceEvent:
        """Append an event stamped with the current simulated time."""
        time = self._sim.now if self._sim is not None else 0.0
        event = TraceEvent(time=time, category=category, source=source, data=data)
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in insertion (time) order, as a copy."""
        return list(self._events)

    def select(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        **data_filters: Any,
    ) -> List[TraceEvent]:
        """Events matching all given filters.

        ``data_filters`` match against the event payload: an event is kept
        only if ``event.data[key] == value`` for every filter.
        """
        matches = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if source is not None and event.source != source:
                continue
            if any(event.data.get(k) != v for k, v in data_filters.items()):
                continue
            matches.append(event)
        return matches

    def count(self, category: Optional[str] = None, **data_filters: Any) -> int:
        """Number of events matching the filters."""
        return len(self.select(category=category, **data_filters))

    def clear(self) -> None:
        """Discard all recorded events (subscribers are kept)."""
        self._events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace, newest last."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(repr(event) for event in events)
