"""Simulation-time structured tracing.

A :class:`TraceLog` records timestamped, categorised events during a run.
It is the backbone of the paper-figure reproduction: replication protocols
emit phase-transition records into a trace, and the figure benchmarks
render and validate those records against the paper's diagrams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes
    ----------
    time:
        Simulated time at which the event was recorded.
    category:
        Free-form grouping key, e.g. ``"phase"``, ``"message"``, ``"crash"``.
    source:
        Identifier of the component that recorded the event (node name,
        protocol name, ...).
    data:
        Arbitrary payload describing the event.
    """

    time: float
    category: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        return f"[{self.time:9.3f}] {self.category}/{self.source}: {items}"


class TraceLog:
    """Append-only log of :class:`TraceEvent` records with query helpers.

    ``max_events`` turns the log into a ring buffer: once the bound is
    reached the oldest events are discarded (``dropped_events`` counts
    them), which keeps long soak runs at constant memory.  ``None``
    (default) keeps every event.

    Subscribers are *isolated*: the event is appended to the log before
    any subscriber runs, and a subscriber that raises is unsubscribed and
    its exception recorded in ``subscriber_errors`` — one broken observer
    cannot corrupt the log or starve other subscribers.
    """

    def __init__(self, sim: Any = None, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self._sim = sim
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.dropped_events = 0
        self.subscriber_errors: List[Exception] = []

    def record(self, category: str, source: str, **data: Any) -> TraceEvent:
        """Append an event stamped with the current simulated time."""
        time = self._sim.now if self._sim is not None else 0.0
        event = TraceEvent(time=time, category=category, source=source, data=data)
        if self.max_events is not None and len(self._events) == self.max_events:
            self.dropped_events += 1
        self._events.append(event)
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as exc:  # noqa: BLE001 - subscriber isolation
                self.subscriber_errors.append(exc)
                try:
                    self._subscribers.remove(subscriber)
                except ValueError:
                    pass
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in insertion (time) order, as a copy."""
        return list(self._events)

    def select(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        **data_filters: Any,
    ) -> List[TraceEvent]:
        """Events matching all given filters.

        ``data_filters`` match against the event payload: an event is kept
        only if ``event.data[key] == value`` for every filter.
        """
        matches = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if source is not None and event.source != source:
                continue
            if any(event.data.get(k) != v for k, v in data_filters.items()):
                continue
            matches.append(event)
        return matches

    def count(self, category: Optional[str] = None, **data_filters: Any) -> int:
        """Number of events matching the filters."""
        return len(self.select(category=category, **data_filters))

    def clear(self) -> None:
        """Discard all recorded events (subscribers are kept)."""
        self._events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace, newest last."""
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(repr(event) for event in events)
