"""Deterministic discrete-event simulation kernel.

The kernel provides three building blocks used by every other subsystem:

* :class:`Simulator` — the event loop.  Holds a priority queue of timed
  callbacks, the simulated clock, and a seeded random generator so that
  every run is exactly reproducible.
* :class:`Future` — a one-shot container for a value produced later in
  simulated time.  Processes wait on futures; network deliveries, protocol
  acknowledgements and timers all resolve them.
* :class:`Process` — a cooperatively scheduled activity written as a Python
  generator.  A process ``yield``\\ s *waitables* (futures, timeouts, other
  processes) and is resumed by the kernel when the waitable completes.

The design deliberately avoids threads: the paper's protocols are expressed
as message-driven state machines, and a single-threaded simulator keeps
them deterministic and debuggable while still modelling true concurrency in
simulated time.

The event loop is a hot path — the performance study pushes millions of
events through it — so the kernel trades a little bookkeeping for
throughput (see docs/internals.md, "Kernel performance"):

* Cancelled timers stay in the heap (lazy deletion) but are counted; when
  more than half the queue is dead it is compacted in one pass.  Ordering
  is untouched: entries sort by the unique ``(time, sequence)`` pair, so a
  rebuilt heap pops in exactly the same order.
* ``yield sim.timeout(...)`` uses a slot-based heap entry that resolves
  the future directly instead of allocating a :class:`Timer`, a bound
  method and an args tuple per wait.
* The ``any_of``/``all_of`` combinators use slotted callback objects
  instead of per-waitable closures.

Example
-------
>>> sim = Simulator(seed=1)
>>> def ping(sim):
...     yield sim.timeout(5.0)
...     return "pong at %.1f" % sim.now
>>> proc = sim.spawn(ping(sim))
>>> sim.run()
>>> proc.result
'pong at 5.0'
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from ..errors import Cancelled, ProcessInterrupted, SimulationError

_INFINITY = float("inf")

__all__ = [
    "Simulator",
    "Future",
    "Timeout",
    "Process",
    "Timer",
]


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Returned by :meth:`Simulator.schedule`.  Cancelling an already-fired or
    already-cancelled timer is a harmless no-op, which keeps timeout
    bookkeeping in protocols simple.  Cancellation is lazy: the heap entry
    stays queued but is counted by the simulator, which compacts the queue
    once dead entries outnumber live ones.
    """

    __slots__ = ("time", "_callback", "_args", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self._callback = callback
        self._args = args
        self._cancelled = False
        # Back-reference for dead-entry accounting; cleared on fire/cancel
        # so a queued timer is exactly one with a live back-reference.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self._cancelled:
            self._cancelled = True
            sim, self._sim = self._sim, None
            if sim is not None:
                sim._note_dead()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            self._cancelled = True  # a timer fires at most once
            self._sim = None
            self._callback(*self._args)


class Future:
    """A value that becomes available at a later simulated time.

    Futures may be awaited by processes (``value = yield future``) or
    observed through callbacks.  A future resolves exactly once, either with
    a result or with an exception; waiting on a failed future re-raises the
    exception inside the waiting process.
    """

    __slots__ = ("sim", "_done", "_result", "_exception", "_callbacks", "label")

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self.sim = sim
        self.label = label
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    # -- inspection ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        """The resolved value.  Raises if pending or failed."""
        if not self._done:
            raise SimulationError(f"future {self.label!r} is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise SimulationError(f"future {self.label!r} is not resolved yet")
        return self._exception

    @property
    def failed(self) -> bool:
        return self._done and self._exception is not None

    # -- resolution ------------------------------------------------------

    def set_result(self, value: Any = None) -> None:
        """Resolve the future successfully with ``value``."""
        self._resolve(value, None)

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the future with a failure."""
        self._resolve(None, exc)

    def try_set_result(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call resolved it.

        Useful when several events race to complete the same future, e.g.
        the first reply from a set of replicas.
        """
        if self._done:
            return False
        self.set_result(value)
        return True

    def cancel(self, reason: object = None) -> bool:
        """Abandon the future: resolve it with :class:`~repro.errors.Cancelled`.

        Returns whether this call cancelled it (``False`` if already done).
        Cancellation runs the future's callbacks like any other resolution,
        so cleanup hooks registered by the producer — e.g. the timeout-guard
        teardown :meth:`repro.net.Node.call` attaches to its reply future —
        fire immediately instead of leaking until their backstop timer.
        """
        if self._done:
            return False
        self.set_exception(Cancelled(reason if reason is not None else self.label))
        return True

    def _resolve(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._done = True
        self._result = value
        self._exception = exc
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)

    # -- observation -----------------------------------------------------

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Invoke ``callback(self)`` when resolved (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "done"
        return f"<Future {self.label!r} {state}>"


class Timeout:
    """Waitable that fires after a fixed delay of simulated time.

    Yielded by processes: ``yield Timeout(3.0)`` or, more conveniently,
    ``yield sim.timeout(3.0)``.  Resumes the process with ``value``.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        # `not (delay >= 0)` also catches NaN, which passes a `delay < 0`
        # check and then corrupts the heap ordering invariant.
        if not (delay >= 0):
            raise SimulationError(
                f"invalid timeout delay {delay!r}: must be >= 0 and not NaN"
            )
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class _TimeoutSlot:
    """Heap entry that resolves a future directly when it fires.

    The fast path for one-shot timeout futures (``yield sim.timeout(...)``
    and the combinators' timeout branches): one slotted object instead of
    a :class:`Timer` plus a bound method plus an args tuple.  Quacks like
    an uncancellable timer to the event loop.
    """

    __slots__ = ("future", "value")

    cancelled = False  # timeout futures are never cancelled, only resolved

    def __init__(self, future: Future, value: Any) -> None:
        self.future = future
        self.value = value

    def _fire(self) -> None:
        future = self.future
        if not future._done:
            future._resolve(self.value, None)


class Process(Future):
    """A generator-based simulated activity.

    A process is also a :class:`Future`: it resolves with the generator's
    return value, so processes can be joined by yielding them from other
    processes.  Processes can be interrupted, which raises
    :class:`~repro.errors.ProcessInterrupted` at their current yield point;
    this is how node crashes tear down in-flight protocol handlers.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_interrupt_pending")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        # Anonymous processes get a name from the simulator's monotonic
        # counter: id(generator) would differ between two runs of the same
        # seed and leak into traces and diagnostics.
        self.name = name or f"proc-{sim._next_anonymous_id()}"
        super().__init__(sim, label=self.name)
        self._generator = generator
        self._waiting_on: Optional[Future] = None
        self._interrupt_pending: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.done

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process.

        The interrupt is delivered at the process's current (or next) yield
        point.  Interrupting a finished process is a no-op.
        """
        if self.done:
            return
        exc = cause if isinstance(cause, BaseException) else ProcessInterrupted(cause)
        if self._waiting_on is not None:
            self._waiting_on = None
            self.sim._schedule_now(self._step_throw, exc)
        else:
            # Not yet started or currently being stepped: deliver at the
            # next resumption.
            self._interrupt_pending = exc

    def cancel(self, reason: object = None) -> bool:
        """Cancel the process by interrupting it with :class:`Cancelled`.

        Overrides :meth:`Future.cancel`: resolving a process future from
        outside while its generator keeps running would make the generator's
        own return hit "resolved twice", so cancellation is delivered as an
        interrupt at the current yield point instead.
        """
        if self.done:
            return False
        self.interrupt(Cancelled(reason if reason is not None else self.name))
        return True

    # -- kernel internals --------------------------------------------------

    def _start(self) -> None:
        self._step_send(None)

    def _step_send(self, value: Any) -> None:
        if self.done:
            return
        if self._interrupt_pending is not None:
            exc, self._interrupt_pending = self._interrupt_pending, None
            self._step_throw(exc)
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into future
            self.set_exception(exc)
            return
        self._wait_on(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self.done:
            return
        try:
            yielded = self._generator.throw(exc)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self.set_exception(raised)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            future = self.sim._timeout_future(yielded.delay, yielded.value)
        elif isinstance(yielded, Future):
            future = yielded
        else:
            self._step_throw(
                SimulationError(
                    f"process {self.name!r} yielded {yielded!r}; expected a "
                    "Future, Process or Timeout"
                )
            )
            return
        self._waiting_on = future
        future.add_callback(self._on_waited)

    def _on_waited(self, future: Future) -> None:
        if self._waiting_on is not future:
            return  # interrupted while waiting; resumption already queued
        self._waiting_on = None
        if future._exception is not None:
            self._step_throw(future._exception)
        else:
            self._step_send(future._result)

    def __repr__(self) -> str:
        state = "alive" if self.alive else ("failed" if self.failed else "done")
        return f"<Process {self.name!r} {state}>"


class _AnyOfWaiter:
    """Per-branch ``any_of`` callback.

    A slotted object instead of a closure capturing ``(combined, index)``:
    cheaper to allocate and free of cell indirection on the resolve path.
    """

    __slots__ = ("combined", "index")

    def __init__(self, combined: Future, index: int) -> None:
        self.combined = combined
        self.index = index

    def __call__(self, future: Future) -> None:
        combined = self.combined
        if combined._done:
            return
        if future._exception is not None:
            combined.set_exception(future._exception)
        else:
            combined.set_result((self.index, future._result))


class _AllOfState:
    """Shared join state for ``all_of``: result slots + outstanding count."""

    __slots__ = ("combined", "results", "remaining")

    def __init__(self, combined: Future, count: int) -> None:
        self.combined = combined
        self.results: List[Any] = [None] * count
        self.remaining = count


class _AllOfWaiter:
    """Per-branch ``all_of`` callback over the shared join state."""

    __slots__ = ("state", "index")

    def __init__(self, state: _AllOfState, index: int) -> None:
        self.state = state
        self.index = index

    def __call__(self, future: Future) -> None:
        state = self.state
        combined = state.combined
        if combined._done:
            return
        if future._exception is not None:
            combined.set_exception(future._exception)
            return
        state.results[self.index] = future._result
        state.remaining -= 1
        if state.remaining == 0:
            combined.set_result(state.results)


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All random
        choices in the library (latencies, workload generation, protocol
        tie-breaking) draw from ``sim.rng`` or generators derived from it,
        so identical seeds yield identical executions.
    """

    # Compaction kicks in only past this queue size: tiny queues are
    # cheaper to drain through the normal pop-and-skip path.
    _COMPACT_MIN_DEAD = 32

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._now = 0.0
        self._queue: List[tuple] = []
        self._sequence = 0
        self._anonymous = 0
        self._stopped = False
        self._dead = 0  # cancelled timers still sitting in the heap
        self.events_processed = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}
        self._tick_width = 0.0
        self._tick_next = _INFINITY
        self._tick_callback: Optional[Callable[[float], None]] = None

    def stream(self, name: str) -> random.Random:
        """A named random stream derived from the simulator seed.

        Each name gets its own :class:`random.Random` seeded from
        ``(seed, crc32(name))``, created on first use and cached.  Streams
        are independent of ``sim.rng`` and of each other, so a subsystem
        drawing from its own stream (fault injection, client backoff
        jitter) never perturbs workload randomness under the same seed —
        adding a chaos campaign leaves the base run byte-identical.
        """
        stream = self._streams.get(name)
        if stream is None:
            derived = (self.seed or 0) * 1_000_003 + zlib.crc32(name.encode("utf-8"))
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def _next_anonymous_id(self) -> int:
        """Deterministic id for unnamed processes (never reset)."""
        self._anonymous += 1
        return self._anonymous

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` units of simulated time."""
        if not (delay >= 0):
            raise SimulationError(
                f"cannot schedule in the past or at NaN (delay={delay!r})"
            )
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        if not (time >= self._now):
            raise SimulationError(
                f"cannot schedule at {time!r}: before current time "
                f"{self._now} or NaN"
            )
        timer = Timer(time, callback, args, self)
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, timer))
        return timer

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self.schedule_at(self._now, callback, *args)

    # Kept as an internal alias; kernel code predates the public name.
    _schedule_now = call_soon

    # -- heap hygiene --------------------------------------------------------

    def _note_dead(self) -> None:
        """Account one newly cancelled queued timer; compact if mostly dead."""
        self._dead += 1
        if self._dead > self._COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap in one pass.

        Rebuilding never changes pop order: entries compare by the unique
        ``(time, sequence)`` prefix, a total order independent of the
        heap's internal layout.  In-place so cached references in the run
        loop stay valid.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._dead = 0

    # -- processes and waitables ---------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` and return its handle."""
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"spawn expects a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        process = Process(self, generator, name=name)
        self._schedule_now(process._start)
        return process

    def future(self, label: str = "") -> Future:
        """Create a fresh unresolved future."""
        return Future(self, label=label)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Waitable firing after ``delay``; sugar for ``Timeout(delay)``."""
        return Timeout(delay, value)

    def _timeout_future(self, delay: float, value: Any = None) -> Future:
        """One-shot timeout future on the slot fast path (no Timer)."""
        if not (delay >= 0):
            raise SimulationError(
                f"invalid timeout delay {delay!r}: must be >= 0 and not NaN"
            )
        future = Future(self, label="timeout")
        self._sequence += 1
        heapq.heappush(
            self._queue,
            (self._now + delay, self._sequence, _TimeoutSlot(future, value)),
        )
        return future

    def any_of(self, waitables: Iterable[Any], label: str = "any_of") -> Future:
        """Future resolving with ``(index, value)`` of the first completion.

        Failures propagate: if the first waitable to finish failed, the
        combined future fails with the same exception.  Late completions of
        the other waitables are ignored.  An empty waitable list is
        rejected with :class:`SimulationError` — a race between zero
        waitables would never resolve, hanging its waiter forever.
        """
        futures = self._as_futures(waitables)
        if not futures:
            raise SimulationError(f"{label}: any_of() of no waitables never resolves")
        combined = Future(self, label=label)
        for index, future in enumerate(futures):
            future.add_callback(_AnyOfWaiter(combined, index))
        return combined

    def all_of(self, waitables: Iterable[Any], label: str = "all_of") -> Future:
        """Future resolving with the list of all results, in input order.

        Fails fast: the first failure resolves the combined future with
        that exception.  An empty list resolves with ``[]`` on the next
        event-loop turn.
        """
        futures = self._as_futures(waitables)
        combined = Future(self, label=label)
        if not futures:
            self._schedule_now(combined.set_result, [])
            return combined
        state = _AllOfState(combined, len(futures))
        for index, future in enumerate(futures):
            future.add_callback(_AllOfWaiter(state, index))
        return combined

    def _as_futures(self, waitables: Iterable[Any]) -> List[Future]:
        futures = []
        for waitable in waitables:
            if isinstance(waitable, Timeout):
                futures.append(self._timeout_future(waitable.delay, waitable.value))
            elif isinstance(waitable, Future):
                futures.append(waitable)
            else:
                raise SimulationError(f"not a waitable: {waitable!r}")
        return futures

    # -- tick hook ------------------------------------------------------------

    def set_tick_hook(self, width: float, callback: Callable[[float], None]) -> None:
        """Call ``callback(boundary)`` as the clock crosses bucket boundaries.

        The hook fires *inline* from the event loop, synchronously, just
        after the clock advances past each multiple of ``width`` — no
        timer events are scheduled, so the event interleaving of the run
        is exactly what it would be without the hook (the observability
        neutrality contract).  The callback must not schedule events or
        advance the clock; it is for sampling state (gauges) only.  One
        hook at a time; setting replaces any previous hook.
        """
        if not (width > 0):
            raise SimulationError(f"tick width must be positive, got {width!r}")
        self._tick_width = width
        self._tick_callback = callback
        self._tick_next = (self._now // width + 1) * width

    def clear_tick_hook(self) -> None:
        """Remove the tick hook (safe when none is set)."""
        self._tick_width = 0.0
        self._tick_next = _INFINITY
        self._tick_callback = None

    def _fire_ticks(self, time: float) -> None:
        """Invoke the hook for every bucket boundary at-or-before ``time``."""
        callback = self._tick_callback
        if callback is None:  # pragma: no cover - guarded by _tick_next
            return
        while self._tick_next <= time:
            boundary = self._tick_next
            self._tick_next = boundary + self._tick_width
            callback(boundary)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            time, _seq, timer = heapq.heappop(queue)
            if timer.cancelled:
                self._dead -= 1
                continue
            self._now = time
            if time >= self._tick_next:
                self._fire_ticks(time)
            self.events_processed += 1
            timer._fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains or ``until`` is reached.

        Each call starts fresh: a :meth:`stop` from a previous run never
        leaks into this one.  ``max_events`` guards against runaway
        protocols in tests: exceeding it raises :class:`SimulationError`
        instead of hanging.
        """
        self._stopped = False
        # The body of `step()` is inlined here: this loop dispatches every
        # event of every simulation, and the per-event method call plus
        # re-fetching attributes measurably slows long runs.  `_compact`
        # mutates the queue list in place, so the local binding stays valid.
        queue = self._queue
        pop = heapq.heappop
        events = 0
        while queue and not self._stopped:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                return
            timer = pop(queue)[2]
            if timer.cancelled:
                self._dead -= 1
                continue
            self._now = time
            if time >= self._tick_next:
                self._fire_ticks(time)
            self.events_processed += 1
            timer._fire()
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
        if until is not None and self._now < until:
            self._now = until

    def run_until_done(self, future: Future, max_events: int = 10_000_000) -> Any:
        """Run the simulation until ``future`` resolves; return its result."""
        events = 0
        while not future.done:
            if not self.step():
                raise SimulationError(
                    f"event queue drained before {future!r} resolved"
                )
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
        return future.result

    def stop(self) -> None:
        """Make the current :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events; for diagnostics."""
        return len(self._queue)

    @property
    def dead_events(self) -> int:
        """Queued-but-cancelled events awaiting compaction; for diagnostics."""
        return self._dead

    def __repr__(self) -> str:
        return f"<Simulator now={self._now:.3f} pending={len(self._queue)}>"
