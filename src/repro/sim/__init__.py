"""Deterministic discrete-event simulation kernel.

See :mod:`repro.sim.core` for the event loop, processes and futures, and
:mod:`repro.sim.tracing` for structured simulation-time tracing.
"""

from .core import Future, Process, Simulator, Timeout, Timer
from .tracing import TraceEvent, TraceLog

__all__ = [
    "Simulator",
    "Future",
    "Process",
    "Timeout",
    "Timer",
    "TraceEvent",
    "TraceLog",
]
