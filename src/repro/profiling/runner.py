"""Profile runner: one observed run → one deterministic profile document.

The profile is the measured answer to "where does this technique's
response time go": per-request critical paths and phase attributions
(:mod:`repro.obs.critpath`) aggregated into the technique's phase cost
matrix, the run's windowed time series, and enough run metadata to
reproduce it.  Byte-deterministic for a given (technique, seed,
parameters) — the regression tests compare two runs' JSON verbatim.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis import messages_per_request
from ..core.protocols import REGISTRY
from ..obs import phase_matrix, request_profile
from ..workload import WorkloadSpec, run_workload

__all__ = [
    "profile_run",
    "profiles_for",
    "matrix_for",
    "dominant_phase_for",
    "profile_json",
    "write_profile",
]


def profiles_for(observer: Any, request_ids: Iterable[str]) -> List[Dict]:
    """Per-request profiles for ``request_ids``, in sorted id order.

    Finalizes the observer (idempotent) so every span is bounded before
    the walk; requests whose root span never materialised (none, in a
    healthy run) are skipped rather than fabricated.
    """
    observer.finalize()
    spans = observer.tracer.spans
    out = []
    for request_id in sorted(str(r) for r in request_ids):
        profile = request_profile(spans, request_id)
        if profile is not None:
            out.append(profile)
    return out


def matrix_for(observer: Any, request_ids: Iterable[str]) -> Dict:
    """The phase cost matrix over ``request_ids`` (see ``phase_matrix``)."""
    return phase_matrix(profiles_for(observer, request_ids))


def dominant_phase_for(observer: Any, request_ids: Iterable[str]) -> str:
    """The phase carrying the most summed response time (benchmark column)."""
    return matrix_for(observer, request_ids)["dominant_phase"]


def profile_run(
    technique: str,
    seed: int = 7,
    replicas: int = 3,
    clients: int = 2,
    requests_per_client: int = 10,
    think_time: float = 10.0,
    settle: float = 500.0,
    spec: Optional[WorkloadSpec] = None,
    config: Optional[dict] = None,
) -> Tuple[Any, Any, Dict]:
    """Drive one observed run and build its profile document.

    Returns ``(system, driver, profile)`` so callers can keep digging
    into the observer; the profile dict alone is what the exporters
    serialise.  Parameters default to the CLI's standard experiment (the
    same shape ``python -m repro observe`` runs).
    """
    if technique not in REGISTRY:
        raise ValueError(
            f"unknown technique {technique!r}; available: {sorted(REGISTRY)}"
        )
    spec = spec if spec is not None else WorkloadSpec(items=8, read_fraction=0.0)
    config = dict(config) if config is not None else {"abcast": "sequencer"}
    system, driver, summary = run_workload(
        technique, spec=spec, replicas=replicas, clients=clients,
        requests_per_client=requests_per_client, seed=seed,
        think_time=think_time, settle=settle, config=config, observe=True,
    )
    observer = system.observer
    profiles = profiles_for(observer, (r.request_id for r in driver.results))
    info = system.info
    profile = {
        "technique": technique,
        "title": info.title,
        "figure": info.figure,
        "phase_row": " ".join(info.descriptor.phase_names()),
        "consistency": info.consistency,
        "params": {
            "seed": seed,
            "replicas": replicas,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "think_time": think_time,
            "settle": settle,
        },
        "summary": {
            "requests": summary.requests,
            "committed": summary.committed,
            "aborted": summary.aborted,
            "messages_per_request": round(
                messages_per_request(system.net.stats, summary.requests), 6
            ),
        },
        "matrix": phase_matrix(profiles),
        "requests": profiles,
        "timeseries": {
            name: series.summary()
            for name, series in observer.metrics.series_snapshot().items()
        },
    }
    return system, driver, profile


def profile_json(profile: Dict) -> str:
    """Canonical byte-stable serialisation of a profile document."""
    return json.dumps(profile, sort_keys=True, separators=(",", ":")) + "\n"


def write_profile(profile: Dict, path: str) -> str:
    """Write ``profile`` as canonical JSON; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(profile_json(profile))
    return path
