"""The phase cost catalog: measured Figure 5/6 companion for all ten techniques.

The paper classifies techniques by *which* phases they use; the catalog
reports what each phase measurably *costs* under the standard workload —
sim-time share of summed response time, message count and byte count per
phase, plus the critical-path kind split (blocked / execution /
transit).  ``docs/phasecost.{md,json}`` are generated artifacts,
freshness-gated by ``make phasecost-check``: a protocol change that
shifts where latency goes fails the gate until the catalog is
regenerated and the diff reviewed.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..core.protocols import DB_TECHNIQUES, DS_TECHNIQUES
from ..obs import KINDS, PHASES
from .runner import profile_run

__all__ = [
    "build_catalog",
    "render_catalog_markdown",
    "render_catalog_json",
    "write_phasecost",
    "check_phasecost",
]

# The catalog's fixed experiment: the CLI's standard run shape, pinned so
# the committed numbers mean one reproducible thing.
CATALOG_PARAMS = {
    "seed": 7,
    "replicas": 3,
    "clients": 2,
    "requests_per_client": 10,
    "think_time": 10.0,
    "settle": 500.0,
}

MD_NAME = "phasecost.md"
JSON_NAME = "phasecost.json"


def build_catalog() -> Dict:
    """Run every technique under the pinned experiment; collect matrices."""
    techniques: Dict[str, Dict] = {}
    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        _system, _driver, profile = profile_run(name, **CATALOG_PARAMS)
        techniques[name] = {
            "title": profile["title"],
            "figure": profile["figure"],
            "phase_row": profile["phase_row"],
            "consistency": profile["consistency"],
            "summary": profile["summary"],
            "matrix": profile["matrix"],
        }
    return {"params": dict(CATALOG_PARAMS), "techniques": techniques}


def _pct(share: float) -> str:
    return f"{share * 100:.1f}%"


def render_catalog_markdown(catalog: Dict) -> str:
    """The human-facing catalog: summary table + one matrix per technique."""
    params = catalog["params"]
    lines: List[str] = [
        "# Phase cost matrix",
        "",
        "Where each technique's response time measurably goes, by the",
        "paper's five generic phases (RE = request, SC = server",
        "coordination, EX = execution, AC = agreement coordination,",
        "END = response).  Generated from live runs by",
        "`python -m repro phasecost` — do not edit by hand; `make",
        "phasecost-check` fails if this file disagrees with the code.",
        "",
        "Experiment: seed={seed}, {replicas} replicas, {clients} clients x "
        "{requests_per_client} update requests, think_time={think_time:g}, "
        "settle={settle:g}.".format(**params),
        "",
        "Time is summed simulated time on the phase timeline of each",
        "committed or aborted request (phases tile the response window, so",
        "shares sum to 1.0); messages and bytes count every flight of the",
        "request — including post-response lazy propagation — attributed",
        "to the phase governing its send time.  See",
        "[observability.md](observability.md) for the extraction model.",
        "",
        "## Summary",
        "",
        "| technique | figure | dominant phase | mean response | "
        + " | ".join(KINDS) + " |",
        "|---|---|---|---|" + "---|" * len(KINDS),
    ]
    techniques = catalog["techniques"]
    for name, entry in techniques.items():
        matrix = entry["matrix"]
        kind_cells = " | ".join(
            _pct(matrix["kinds"][kind]["share"]) for kind in KINDS
        )
        lines.append(
            f"| {name} | {entry['figure']} | {matrix['dominant_phase']} | "
            f"{matrix['response_time_mean']:.2f} | {kind_cells} |"
        )
    lines.append("")
    for name, entry in techniques.items():
        matrix = entry["matrix"]
        summary = entry["summary"]
        lines += [
            f"## {name} — {entry['title']} ({entry['figure']})",
            "",
            f"phase row `{entry['phase_row']}`, {entry['consistency']} "
            f"consistency; {summary['requests']} requests "
            f"({summary['committed']} committed, {summary['aborted']} "
            f"aborted), {summary['messages_per_request']:.1f} msgs/request, "
            f"mean response {matrix['response_time_mean']:.2f}.",
            "",
            "| phase | time | share | messages | bytes |",
            "|---|---|---|---|---|",
        ]
        for phase in PHASES:
            row = matrix["phases"][phase]
            lines.append(
                f"| {phase} | {row['time']:.2f} | {_pct(row['share'])} | "
                f"{row['messages']} | {row['bytes']} |"
            )
        lines.append("")
        lines.append("| critical-path kind | time | share |")
        lines.append("|---|---|---|")
        for kind in KINDS:
            row = matrix["kinds"][kind]
            lines.append(
                f"| {kind} | {row['time']:.2f} | {_pct(row['share'])} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_catalog_json(catalog: Dict) -> str:
    """Machine-readable catalog (pretty-printed, sorted, byte-stable)."""
    return json.dumps(catalog, sort_keys=True, indent=2) + "\n"


def write_phasecost(docs_dir: str) -> List[str]:
    """Generate ``docs/phasecost.{md,json}``; returns the written paths."""
    catalog = build_catalog()
    os.makedirs(docs_dir, exist_ok=True)
    md_path = os.path.join(docs_dir, MD_NAME)
    json_path = os.path.join(docs_dir, JSON_NAME)
    with open(md_path, "w") as handle:
        handle.write(render_catalog_markdown(catalog))
    with open(json_path, "w") as handle:
        handle.write(render_catalog_json(catalog))
    return [md_path, json_path]


def check_phasecost(docs_dir: str) -> List[str]:
    """Compare the committed catalog against a fresh build.

    Returns a list of human-readable problems (empty = fresh).  Used by
    ``make phasecost-check`` inside ``make check`` and by the tests.
    """
    catalog = build_catalog()
    expected = {
        MD_NAME: render_catalog_markdown(catalog),
        JSON_NAME: render_catalog_json(catalog),
    }
    problems = []
    for name, content in expected.items():
        path = os.path.join(docs_dir, name)
        if not os.path.exists(path):
            problems.append(f"{path} is missing; run `make phasecost`")
            continue
        with open(path) as handle:
            committed = handle.read()
        if committed != content:
            problems.append(f"{path} is stale; run `make phasecost`")
    return problems
