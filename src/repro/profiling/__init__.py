"""repro.profiling — phase-resolved latency profiles and the cost catalog.

One observed run in, one deterministic profile out: the
:mod:`~repro.obs.critpath` walk turns each request's span tree into a
critical path and a five-phase attribution of its response time;
:func:`~repro.profiling.runner.profile_run` aggregates those into a
per-technique phase cost matrix plus windowed telemetry, and
:mod:`~repro.profiling.catalog` renders the matrix for all ten
techniques into ``docs/phasecost.{md,json}`` (freshness-gated by
``make phasecost-check``).

Layering: sits beside ``viz`` at the top of the DAG — it may import the
whole library but nothing imports it back.
"""

from .catalog import (
    build_catalog,
    check_phasecost,
    render_catalog_json,
    render_catalog_markdown,
    write_phasecost,
)
from .runner import (
    dominant_phase_for,
    matrix_for,
    profile_json,
    profile_run,
    profiles_for,
    write_profile,
)

__all__ = [
    "build_catalog",
    "check_phasecost",
    "render_catalog_json",
    "render_catalog_markdown",
    "write_phasecost",
    "dominant_phase_for",
    "matrix_for",
    "profile_json",
    "profile_run",
    "profiles_for",
    "write_profile",
]
