"""Run-time metrics: counters, gauges and histograms.

The instrumented layers register cheap instruments here (messages by
type, broadcasts by primitive, lock wait/hold times, abort reasons,
failure-detector suspicions, per-phase latency) and the registry
snapshots them as one deterministic dict — the numeric companion to the
span trace, printable as a plain-text report beside every benchmark
artifact.

Instruments are addressed by ``(name, label)``: the name is the metric
family (``"messages.sent"``), the optional label the dimension value
(the message type).  Snapshot keys render as ``name{label}`` so the
report stays grep-able.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from .timeseries import DEFAULT_BUCKET_WIDTH, TimeSeries

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _percentile(data: List[float], q: float) -> float:
    """Nearest-rank percentile over sorted data (LatencyStats convention)."""
    if not data:
        return 0.0
    index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
    return data[index]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.value}>"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.value}>"


class Histogram:
    """Distribution of observed values.

    Observations are retained (simulated runs are small) so the snapshot
    can report exact nearest-rank quantiles instead of bucket
    approximations; the summary matches ``analysis.LatencyStats``
    semantics so benchmark rows and metrics reports agree.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def summary(self) -> Dict[str, float]:
        data = sorted(self.values)
        if not data:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": len(data),
            "mean": round(sum(data) / len(data), 6),
            "p50": round(_percentile(data, 0.50), 6),
            "p95": round(_percentile(data, 0.95), 6),
            "p99": round(_percentile(data, 0.99), 6),
            "max": round(data[-1], 6),
        }

    def __repr__(self) -> str:
        return f"<Histogram n={len(self.values)}>"


def _key(name: str, label: Optional[str]) -> Tuple[str, str]:
    return (name, label if label is not None else "")


def _render(key: Tuple[str, str]) -> str:
    name, label = key
    return f"{name}{{{label}}}" if label else name


class MetricsRegistry:
    """All instruments of one observed run."""

    def __init__(self, series_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        self.series_width = series_width

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, label: Optional[str] = None) -> Counter:
        return self._counters.setdefault(_key(name, label), Counter())

    def gauge(self, name: str, label: Optional[str] = None) -> Gauge:
        return self._gauges.setdefault(_key(name, label), Gauge())

    def histogram(self, name: str, label: Optional[str] = None) -> Histogram:
        return self._histograms.setdefault(_key(name, label), Histogram())

    def series(self, name: str, label: Optional[str] = None) -> TimeSeries:
        """The windowed time series for ``(name, label)``.

        All series of one registry share ``series_width`` so their
        buckets align — a throughput dent and a breaker state flip in
        the same bucket are the same moment of the run.
        """
        key = _key(name, label)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(self.series_width)
        return series

    # -- one-call helpers ----------------------------------------------------

    def inc(self, name: str, label: Optional[str] = None, amount: int = 1) -> None:
        self.counter(name, label).inc(amount)

    def set(self, name: str, value: float, label: Optional[str] = None) -> None:
        self.gauge(name, label).set(value)

    def observe(self, name: str, value: float, label: Optional[str] = None) -> None:
        self.histogram(name, label).observe(value)

    def sample(
        self, name: str, time: float, value: float = 1.0,
        label: Optional[str] = None,
    ) -> None:
        """Record ``value`` at simulated ``time`` into a windowed series."""
        self.series(name, label).observe(time, value)

    def series_snapshot(self) -> Dict[str, TimeSeries]:
        """All series keyed by their rendered ``name{label}`` form."""
        return {_render(k): s for k, s in sorted(self._series.items())}

    def gauge_values(self) -> List[Tuple[str, str, float]]:
        """``(name, label, value)`` rows for every gauge, sorted by key."""
        return [
            (name, label, gauge.value)
            for (name, label), gauge in sorted(self._gauges.items())
        ]

    # -- output ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one sorted, JSON-serialisable dict."""
        return {
            "counters": {
                _render(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                _render(k): g.value for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                _render(k): h.summary() for k, h in sorted(self._histograms.items())
            },
            "timeseries": {
                _render(k): s.summary() for k, s in sorted(self._series.items())
            },
        }

    def report(self, title: str = "metrics") -> str:
        """Aligned plain-text rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [f"# {title}", ""]
        if snap["counters"]:
            lines.append("[counters]")
            width = max(len(k) for k in snap["counters"])
            for key, value in snap["counters"].items():
                lines.append(f"{key.ljust(width)}  {value}")
            lines.append("")
        if snap["gauges"]:
            lines.append("[gauges]")
            width = max(len(k) for k in snap["gauges"])
            for key, value in snap["gauges"].items():
                lines.append(f"{key.ljust(width)}  {value:g}")
            lines.append("")
        if snap["histograms"]:
            lines.append("[histograms]")
            width = max(len(k) for k in snap["histograms"])
            header = f"{'metric'.ljust(width)}  {'count':>6} {'mean':>10} " \
                     f"{'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}"
            lines.append(header)
            lines.append("-" * len(header))
            for key, s in snap["histograms"].items():
                lines.append(
                    f"{key.ljust(width)}  {s['count']:>6} {s['mean']:>10.3f} "
                    f"{s['p50']:>10.3f} {s['p95']:>10.3f} {s['p99']:>10.3f} "
                    f"{s['max']:>10.3f}"
                )
            lines.append("")
        series = {
            _render(k): s for k, s in sorted(self._series.items()) if len(s)
        }
        if series:
            lines.append("[timeseries]")
            width = max(len(k) for k in series)
            for key, s in series.items():
                lines.append(
                    f"{key.ljust(width)}  width={s.width:g} "
                    f"buckets={len(s)} |{s.sparkline()}|"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)} "
            f"series={len(self._series)}>"
        )
