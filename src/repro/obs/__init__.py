"""repro.obs — observability: causal span tracing, metrics, exporters.

The cross-cutting layer that makes runs *explainable*: every client
request becomes a trace of causally linked spans (phases, message
flights, handler invocations, lock waits, group-communication rounds),
every layer's counters land in one metrics registry, and both export
deterministically — Chrome trace-event JSON (Perfetto), JSONL spans and
a plain-text metrics report.  On top of the raw spans,
:mod:`~repro.obs.critpath` extracts each request's critical path and
attributes its response time to the paper's five phases, and
:mod:`~repro.obs.timeseries` buckets observations into windowed series
for before/during/after-fault telemetry.

Layering: ``obs`` may depend on ``errors``/``sim``/``net``; the layers
it observes (``net``, ``db``, ``groupcomm``) never import it back —
they hold an optional duck-typed :class:`Observer` injected by
:class:`~repro.core.system.ReplicatedSystem` (``observe=True``).  See
``docs/observability.md``.
"""

from .attrtrack import track_attr_writes, untrack_attr_writes
from .critpath import (
    KINDS,
    PHASES,
    PhaseTimeline,
    Segment,
    critical_path,
    phase_matrix,
    request_profile,
)
from .export import (
    assert_no_open_spans,
    chrome_trace,
    spans_jsonl,
    write_artifacts,
    write_counter_track,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observer, abort_reason_label
from .spans import INSTANT, SPAN, Span, SpanTracer
from .timeseries import (
    DEFAULT_BUCKET_WIDTH,
    TimeSeries,
    counter_trace,
    counter_track_events,
)

__all__ = [
    "track_attr_writes",
    "untrack_attr_writes",
    "KINDS",
    "PHASES",
    "PhaseTimeline",
    "Segment",
    "critical_path",
    "phase_matrix",
    "request_profile",
    "assert_no_open_spans",
    "chrome_trace",
    "spans_jsonl",
    "write_artifacts",
    "write_counter_track",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "abort_reason_label",
    "Span",
    "SpanTracer",
    "SPAN",
    "INSTANT",
    "DEFAULT_BUCKET_WIDTH",
    "TimeSeries",
    "counter_trace",
    "counter_track_events",
]
