"""repro.obs — observability: causal span tracing, metrics, exporters.

The cross-cutting layer that makes runs *explainable*: every client
request becomes a trace of causally linked spans (phases, message
flights, handler invocations, lock waits, group-communication rounds),
every layer's counters land in one metrics registry, and both export
deterministically — Chrome trace-event JSON (Perfetto), JSONL spans and
a plain-text metrics report.

Layering: ``obs`` may depend on ``errors``/``sim``/``net``; the layers
it observes (``net``, ``db``, ``groupcomm``) never import it back —
they hold an optional duck-typed :class:`Observer` injected by
:class:`~repro.core.system.ReplicatedSystem` (``observe=True``).  See
``docs/observability.md``.
"""

from .attrtrack import track_attr_writes, untrack_attr_writes
from .export import chrome_trace, spans_jsonl, write_artifacts
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observer, abort_reason_label
from .spans import INSTANT, SPAN, Span, SpanTracer

__all__ = [
    "track_attr_writes",
    "untrack_attr_writes",
    "chrome_trace",
    "spans_jsonl",
    "write_artifacts",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "abort_reason_label",
    "Span",
    "SpanTracer",
    "SPAN",
    "INSTANT",
]
