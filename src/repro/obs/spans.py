"""Causal span tracing for simulated runs.

The paper's five-phase functional model is a span model in disguise:
every client request is a *trace* whose child spans are phase
executions, message flights, handler invocations and resource waits.
:class:`SpanTracer` records those spans with causal parent links so a
run can be *explained* — which replica spent how long in which phase of
which request, and why — instead of merely totalled.

Design constraints, both load-bearing:

* **Deterministic.**  Span ids come from a per-tracer counter and times
  from the simulated clock, so two same-seed runs produce byte-identical
  span sets (enforced by ``tests/test_obs.py``).  Nothing here touches
  wall clocks, RNGs or object identity.
* **Zero-cost when disabled.**  Instrumented layers hold an optional
  observer and guard every hook with a ``None`` check; no tracer object
  is ever constructed for an unobserved run.

Causality is propagated with an explicit context stack: the layer that
starts work on behalf of a span pushes it (client dispatch, message
handler entry), and spans started while it is on top become its
children.  Cross-node causality rides on the message envelope — the
network stamps each :class:`~repro.net.message.Message` with the span id
of its flight span, and the receiving node parents its handler span
under it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanTracer", "SPAN", "INSTANT"]

SPAN = "span"
INSTANT = "instant"


@dataclass
class Span:
    """One timed, causally linked unit of work.

    Attributes
    ----------
    span_id:
        Tracer-local identifier, allocated in creation order.
    parent_id:
        Span this one is causally nested under (``None`` for roots).
    trace_id:
        The request this span belongs to (client request id), or ``""``
        for background activity such as heartbeats.
    name, category:
        Display name and grouping key (``"request"``, ``"message"``,
        ``"handle"``, ``"phase"``, ``"lock"``, ``"gc"``, ``"fd"``, ...).
    source:
        The node (or component) that did the work.
    start, end:
        Simulated times; ``end`` is ``None`` while the span is open.
    kind:
        ``"span"`` for an interval, ``"instant"`` for a point event.
    status:
        ``"ok"`` unless the work failed or was abandoned (e.g.
        ``"dropped:partition"`` for a lost message).
    attrs:
        Deterministically ordered payload of primitive values.
    """

    span_id: int
    parent_id: Optional[int]
    trace_id: str
    name: str
    category: str
    source: str
    start: float
    end: Optional[float] = None
    kind: str = SPAN
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:
        tail = f"..{self.end:.1f}" if self.end is not None else ".."
        return (
            f"<Span #{self.span_id} {self.category}/{self.name} "
            f"@{self.source} {self.start:.1f}{tail}>"
        )


class SpanTracer:
    """Collects :class:`Span` records against a simulated clock.

    ``clock`` is anything with a ``now`` attribute (the simulator); the
    tracer never advances it.  The context stack is synchronous-only by
    design: the discrete-event kernel runs one callback at a time, so a
    push/pop pair around a dispatch brackets exactly the work that
    dispatch caused directly.  Work it *scheduled* (timers, processes)
    runs later with an empty context and must be linked explicitly via
    ``parent_id`` if causality matters.
    """

    def __init__(self, clock: Any = None) -> None:
        self._clock = clock
        self._next_id = 1
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._stack: List[Span] = []
        self._finalized = False

    @property
    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- recording ---------------------------------------------------------

    def start(
        self,
        name: str,
        category: str,
        source: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[int] = None,
        use_context: bool = True,
        **attrs: Any,
    ) -> Span:
        """Open a span; parent and trace default from the context stack."""
        parent = self._by_id.get(parent_id) if parent_id is not None else None
        if parent is None and use_context and self._stack:
            parent = self._stack[-1]
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else ""
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=trace_id,
            name=name,
            category=category,
            source=source,
            start=self.now,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def finish(self, span: Span, status: Optional[str] = None, **attrs: Any) -> None:
        """Close a span at the current simulated time (idempotent)."""
        if span.end is None:
            span.end = self.now
        if status is not None:
            span.status = status
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        category: str,
        source: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record a point event (start == end)."""
        span = self.start(
            name, category, source, trace_id=trace_id, parent_id=parent_id, **attrs
        )
        span.end = span.start
        span.kind = INSTANT
        return span

    # -- causal context ---------------------------------------------------

    def push(self, span: Span) -> None:
        self._stack.append(span)

    def pop(self) -> None:
        self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def context(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Make ``span`` the causal parent for the enclosed block."""
        if span is None:
            yield None
            return
        self.push(span)
        try:
            yield span
        finally:
            self.pop()

    @contextmanager
    def span(
        self, name: str, category: str, source: str, **kwargs: Any
    ) -> Iterator[Span]:
        """Start a span, make it current, finish it on exit.

        An exception escaping the block (a handler interrupted by a node
        crash, an unknown-destination raise) still closes the span, but
        tagged ``error:<ExceptionType>`` instead of ``ok`` — error paths
        must never leave a span open or mislabelled as clean.
        """
        span = self.start(name, category, source, **kwargs)
        self.push(span)
        try:
            yield span
        except BaseException as exc:
            self.pop()
            self.finish(span, status=f"error:{type(exc).__name__}")
            raise
        self.pop()
        self.finish(span)

    # -- queries ------------------------------------------------------------

    def get(self, span_id: Optional[int]) -> Optional[Span]:
        return self._by_id.get(span_id) if span_id is not None else None

    def for_trace(self, trace_id: str) -> List[Span]:
        """Spans of one request, in (start time, creation) order."""
        return sorted(
            (s for s in self.spans if s.trace_id == trace_id),
            key=lambda s: (s.start, s.span_id),
        )

    def open_spans(self) -> List[Span]:
        """Spans not yet closed, in creation order (empty after finalize)."""
        return [span for span in self.spans if span.end is None]

    def phase_sequence(
        self, trace_id: str, source: Optional[str] = None
    ) -> List[str]:
        """Phase-span names of a request in time order (one trace's row)."""
        return [
            s.name
            for s in self.for_trace(trace_id)
            if s.category == "phase" and (source is None or s.source == source)
        ]

    def finalize(self) -> None:
        """Close every still-open span at the last simulated instant.

        Lazy techniques legitimately leave spans open (an AC phase whose
        propagation outlives the run); exports need every interval
        bounded.  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        horizon = self.now
        for span in self.spans:
            horizon = max(horizon, span.start, span.end or 0.0)
        for span in self.spans:
            if span.end is None:
                span.end = horizon
                if span.status == "ok":
                    span.status = "open"

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        open_count = sum(1 for s in self.spans if s.end is None)
        return f"<SpanTracer spans={len(self.spans)} open={open_count}>"
