"""Critical-path extraction and five-phase latency attribution.

The paper's model says *which* phases a technique uses; this module
measures *where a request's response time actually goes*.  Two
complementary views over one request's span set:

* **Phase timeline** — the `PhaseTracer` records (one per phase entry,
  across all replicas) are swept into a single timeline: at every
  instant of the request's life the governing phase is the most recent
  record at-or-before it, and before the first record the request is by
  definition in RE (the client is submitting).  The timeline *tiles* the
  window between submission and response exactly, so per-phase times sum
  to the measured response time by construction — the invariant the
  profiler tests assert.
* **Critical path** — a backward walk over the causal span tree (root
  request span, message flights, handler invocations, lock waits).  From
  the root's end the walk repeatedly descends into the child subtree
  that reaches latest into the still-unexplained window, clamping each
  child to the frontier; what no child explains is the parent's own
  time.  Every emitted segment is classified as ``execution`` (handler
  running), ``transit`` (message in flight) or ``blocked`` (lock wait,
  or the client waiting on work the tree cannot see), then split along
  phase-timeline boundaries so each carries exactly one phase.

Spans here are **not** time-nested — a phase span outlives the handler
that opened it (it ends when the *next* phase of the same (source,
request) begins), and processes spawned by a handler keep producing
child spans after the handler span closed.  The walk therefore orders
children by subtree *reach* (the latest end anywhere below them), not by
their own end, and clamps every descent to the parent's frontier.

Layering: this module sees only :class:`~repro.obs.spans.Span` records;
the phase names are the paper's fixed five-phase vocabulary (mirrored
from ``repro.core.phases.PHASE_ORDER``, which sits above ``obs`` in the
import DAG and therefore cannot be imported from here).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .spans import SPAN, Span

__all__ = [
    "PHASES",
    "Segment",
    "PhaseTimeline",
    "critical_path",
    "request_profile",
    "phase_matrix",
]

# The five generic phases (Section 2.2, Figure 1), in canonical order.
PHASES = ("RE", "SC", "EX", "AC", "END")

# Span categories that form the causal work tree, and the critical-path
# segment kind each one's own time classifies as.
_KIND_OF = {
    "request": "blocked",   # root own time = the client waiting
    "message": "transit",
    "handle": "execution",
    "lock": "blocked",
}

KINDS = ("blocked", "execution", "transit")


@dataclass(frozen=True)
class Segment:
    """One critical-path interval, attributed to a source, kind and phase."""

    start: float
    end: float
    source: str
    kind: str
    phase: str
    name: str
    span_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "source": self.source,
            "kind": self.kind,
            "phase": self.phase,
            "name": self.name,
            "span_id": self.span_id,
        }


def _belongs(span_trace: str, trace_id: str) -> bool:
    """Whether a span's trace id derives from ``trace_id``.

    Transaction-scoped spans (lock waits) carry ids the protocols derive
    from the request id — ``"<rid>@primary"``, ``"<rid>:2"`` — so prefix
    matching up to the separator reunites them with their request.
    """
    if span_trace == trace_id:
        return True
    return span_trace.startswith(trace_id) and (
        span_trace[len(trace_id):][:1] in ("@", ":", "#")
    )


class PhaseTimeline:
    """The request's governing phase as a function of simulated time."""

    def __init__(self, spans: Sequence[Span], trace_id: str) -> None:
        records = sorted(
            (
                s for s in spans
                if s.category == "phase" and _belongs(s.trace_id, trace_id)
            ),
            key=lambda s: (s.start, s.span_id),
        )
        times: List[float] = []
        keys: List[Tuple[float, int]] = []
        phases: List[str] = []
        for span in records:
            if phases and phases[-1] == span.name:
                continue  # same phase re-entered (loop iteration): one tile
            times.append(span.start)
            keys.append((span.start, span.span_id))
            phases.append(span.name)
        self._times = times
        self._keys = keys
        self._phases = phases

    def phase_at(self, time: float, span_id: Optional[int] = None) -> str:
        """Most recent phase entered at-or-before ``time`` (RE before any).

        Discrete-event runs execute whole request stages at one simulated
        instant, so several phases can share a timestamp; passing the
        asking span's ``span_id`` breaks the tie by creation order (a
        message sent from inside the SC handler is an SC message even
        though EX and END follow at the same time).
        """
        if span_id is None:
            index = bisect_right(self._times, time) - 1
        else:
            index = bisect_right(self._keys, (time, span_id)) - 1
        return self._phases[index] if index >= 0 else PHASES[0]

    def tiles(self, lo: float, hi: float) -> List[Tuple[float, float, str]]:
        """Partition ``[lo, hi]`` into maximal single-phase intervals."""
        if hi <= lo:
            return []
        out: List[Tuple[float, float, str]] = []
        cursor = lo
        current = self.phase_at(lo)
        start_index = bisect_right(self._times, lo)
        for index in range(start_index, len(self._times)):
            time = self._times[index]
            if time >= hi:
                break
            phase = self._phases[index]
            if phase == current:
                continue
            if time > cursor:
                out.append((cursor, time, current))
            cursor, current = time, phase
        if hi > cursor:
            out.append((cursor, hi, current))
        return out


def _tree_index(
    spans: Sequence[Span], trace_id: str
) -> Tuple[Optional[Span], Dict[int, List[Span]], Dict[int, float]]:
    """Root span, children map and subtree reach of the causal work tree.

    Spans whose recorded parent is outside the tree (work started from a
    context the tracer could not see) are adopted under the root: they
    demonstrably belong to the request, and the walk's clamping keeps an
    adopted subtree inside whatever window it is asked to explain.
    """
    root: Optional[Span] = None
    nodes: List[Span] = []
    for span in spans:
        if span.kind != SPAN or span.end is None:
            continue
        if span.category not in _KIND_OF or not _belongs(span.trace_id, trace_id):
            continue
        if span.category == "request" and root is None:
            root = span
        nodes.append(span)
    if root is None:
        return None, {}, {}
    ids = {span.span_id for span in nodes}
    parent_of: Dict[int, int] = {}
    children: Dict[int, List[Span]] = {}
    for span in nodes:
        if span is root:
            continue
        parent = span.parent_id if span.parent_id in ids else root.span_id
        parent_of[span.span_id] = parent
        children.setdefault(parent, []).append(span)
    # Parents are always created before children (span ids are allocated
    # in creation order), so one descending pass folds each subtree's
    # reach into its parent before the parent itself is folded.
    reach: Dict[int, float] = {span.span_id: span.end for span in nodes}
    for span in sorted(nodes, key=lambda s: -s.span_id):
        parent = parent_of.get(span.span_id)
        if parent is not None and reach[span.span_id] > reach[parent]:
            reach[parent] = reach[span.span_id]
    return root, children, reach


def critical_path(
    spans: Sequence[Span], trace_id: str
) -> Tuple[Optional[Span], List[Segment]]:
    """The request's critical path as contiguous, classified segments.

    Returns ``(root_request_span, segments)``; the segments tile
    ``[root.start, root.end]`` exactly (their durations sum to the
    measured response time), in increasing time order.  Phase labels are
    not attached here — callers overlay :class:`PhaseTimeline` via
    :func:`request_profile`.
    """
    root, children, reach = _tree_index(spans, trace_id)
    if root is None or root.end is None or root.end <= root.start:
        return root, []
    segments: List[Segment] = []

    def own(span: Span, lo: float, hi: float) -> None:
        segments.append(Segment(
            start=lo, end=hi, source=span.source, kind=_KIND_OF[span.category],
            phase="", name=span.name, span_id=span.span_id,
        ))

    def walk(span: Span, lo: float, hi: float) -> None:
        cursor = hi
        kids = sorted(
            children.get(span.span_id, ()),
            key=lambda c: (min(reach[c.span_id], hi), reach[c.span_id] <= hi,
                           c.span_id),
            reverse=True,
        )
        for child in kids:
            if cursor <= lo:
                break
            if child.start >= cursor:
                continue
            child_hi = min(reach[child.span_id], cursor)
            child_lo = max(child.start, lo)
            if child_hi <= child_lo:
                continue
            if child_hi < cursor:
                own(span, child_hi, cursor)
            walk(child, child_lo, child_hi)
            cursor = child_lo
        if cursor > lo:
            own(span, lo, cursor)

    walk(root, root.start, root.end)
    segments.reverse()
    return root, segments


def request_profile(spans: Sequence[Span], trace_id: str) -> Optional[Dict]:
    """Everything measured about one request, JSON-serialisable.

    ``phases`` (and thus ``phase_shares``) come from the phase timeline
    and sum exactly to ``response_time`` (shares to 1.0); ``kinds`` come
    from the critical-path walk and tile the same window.  ``messages``
    and ``bytes`` count *all* of the request's message flights — also
    those after the response (lazy propagation), attributed to the phase
    governing their send time — so a lazy technique's AC cost is visible
    even though it never touches the response window.
    """
    root, raw_segments = critical_path(spans, trace_id)
    if root is None or root.end is None:
        return None
    timeline = PhaseTimeline(spans, trace_id)
    response_time = root.end - root.start
    phases = {phase: 0.0 for phase in PHASES}
    for lo, hi, phase in timeline.tiles(root.start, root.end):
        phases[phase] += hi - lo
    segments: List[Segment] = []
    kinds = {kind: 0.0 for kind in KINDS}
    for segment in raw_segments:
        kinds[segment.kind] += segment.duration
        for lo, hi, phase in timeline.tiles(segment.start, segment.end):
            segments.append(Segment(
                start=lo, end=hi, source=segment.source, kind=segment.kind,
                phase=phase, name=segment.name, span_id=segment.span_id,
            ))
    messages = {phase: 0 for phase in PHASES}
    message_bytes = {phase: 0 for phase in PHASES}
    for span in spans:
        if span.category != "message" or not _belongs(span.trace_id, trace_id):
            continue
        phase = timeline.phase_at(span.start, span.span_id)
        messages[phase] += 1
        message_bytes[phase] += int(span.attrs.get("bytes", 0))
    dominant = max(PHASES, key=lambda p: (phases[p], -PHASES.index(p)))
    shares = {
        phase: (phases[phase] / response_time if response_time > 0 else 0.0)
        for phase in PHASES
    }
    return {
        "request": trace_id,
        "client": root.source,
        "status": root.status,
        "start": root.start,
        "end": root.end,
        "response_time": response_time,
        "phases": phases,
        "phase_shares": shares,
        "dominant_phase": dominant,
        "kinds": kinds,
        "critical_path_length": sum(s.duration for s in raw_segments),
        "messages": messages,
        "bytes": message_bytes,
        "segments": [segment.as_dict() for segment in segments],
    }


def phase_matrix(profiles: Sequence[Dict]) -> Dict:
    """Aggregate per-request profiles into one technique's cost matrix.

    Rows are the five phases; columns are total sim-time, share of
    summed response time, message count and byte count — the measured
    companion to the paper's Figure 5/6 classification tables.
    """
    total_response = sum(p["response_time"] for p in profiles)
    phase_rows = {}
    for phase in PHASES:
        time = sum(p["phases"][phase] for p in profiles)
        phase_rows[phase] = {
            "time": time,
            "share": time / total_response if total_response > 0 else 0.0,
            "messages": sum(p["messages"][phase] for p in profiles),
            "bytes": sum(p["bytes"][phase] for p in profiles),
        }
    kind_rows = {}
    for kind in KINDS:
        time = sum(p["kinds"][kind] for p in profiles)
        kind_rows[kind] = {
            "time": time,
            "share": time / total_response if total_response > 0 else 0.0,
        }
    dominant = max(
        PHASES, key=lambda p: (phase_rows[p]["time"], -PHASES.index(p))
    ) if profiles else PHASES[0]
    return {
        "requests": len(profiles),
        "response_time_total": total_response,
        "response_time_mean": (
            total_response / len(profiles) if profiles else 0.0
        ),
        "dominant_phase": dominant,
        "phases": phase_rows,
        "kinds": kind_rows,
    }
