"""Span and metrics exporters.

Three formats, all byte-deterministic for a given span set:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loadable in
  Perfetto / ``chrome://tracing``.  One track (tid) per node, complete
  (``"X"``) events for interval spans, instant (``"i"``) events for
  point events, and flow arrows (``"s"``/``"f"``) tying each message's
  send to its delivery across tracks.  One simulated time unit is
  rendered as one millisecond (Chrome timestamps are microseconds).
* **JSONL spans** (:func:`spans_jsonl`) — one JSON object per span in
  id order; the machine-readable form the regression tests byte-compare.
* **Plain-text metrics report** — :meth:`MetricsRegistry.report`,
  written beside the traces by :func:`write_artifacts`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReplicationError
from .observer import Observer
from .spans import INSTANT, Span
from .timeseries import counter_trace

__all__ = [
    "chrome_trace",
    "spans_jsonl",
    "write_artifacts",
    "write_counter_track",
    "assert_no_open_spans",
]


def assert_no_open_spans(observer: Observer) -> None:
    """Fail loudly if finalization left any span unbounded.

    ``finalize()`` closes stragglers at the horizon, so an open span
    after it means a bookkeeping bug (a hook that started a span and
    lost it), not a lazy technique's legitimate tail — exports must
    refuse to paper over that.
    """
    leaked = observer.tracer.open_spans()
    if leaked:
        listing = ", ".join(repr(span) for span in leaked[:5])
        raise ReplicationError(
            f"{len(leaked)} span(s) still open after finalize: {listing}"
        )

# Simulated-time unit -> Chrome microseconds (1 unit rendered as 1 ms).
_TS_SCALE = 1000.0


def _track_order(spans: Sequence[Span], node_order: Optional[Sequence[str]]) -> List[str]:
    """Deterministic tid assignment: declared node order, then the rest."""
    seen = {span.source for span in spans}
    ordered = [name for name in (node_order or []) if name in seen]
    ordered += sorted(seen - set(ordered))
    return ordered


def chrome_trace(
    spans: Sequence[Span],
    node_order: Optional[Sequence[str]] = None,
    process_name: str = "repro",
) -> str:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable)."""
    tracks = _track_order(spans, node_order)
    tid_of = {name: index for index, name in enumerate(tracks)}
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    for name in tracks:
        events.append({"ph": "M", "pid": 0, "tid": tid_of[name],
                       "name": "thread_name", "args": {"name": name}})
        events.append({"ph": "M", "pid": 0, "tid": tid_of[name],
                       "name": "thread_sort_index",
                       "args": {"sort_index": tid_of[name]}})
    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id,
                "trace_id": span.trace_id, "status": span.status}
        args.update(span.attrs)
        tid = tid_of[span.source]
        start = span.start * _TS_SCALE
        if span.kind == INSTANT:
            events.append({"ph": "i", "pid": 0, "tid": tid, "ts": start,
                           "s": "t", "name": span.name, "cat": span.category,
                           "args": args})
            continue
        end = (span.end if span.end is not None else span.start) * _TS_SCALE
        events.append({"ph": "X", "pid": 0, "tid": tid, "ts": start,
                       "dur": end - start, "name": span.name,
                       "cat": span.category, "args": args})
        if span.category == "message" and span.status == "ok":
            # Flow arrow from the send on the source track to the arrival
            # on the destination track.
            dst = span.attrs.get("dst")
            if dst in tid_of:
                events.append({"ph": "s", "pid": 0, "tid": tid, "ts": start,
                               "id": span.span_id, "name": "flight",
                               "cat": "message"})
                events.append({"ph": "f", "pid": 0, "tid": tid_of[dst],
                               "ts": end, "id": span.span_id, "bp": "e",
                               "name": "flight", "cat": "message"})
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def spans_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span, in span-id order, keys sorted."""
    lines = []
    for span in sorted(spans, key=lambda s: s.span_id):
        lines.append(json.dumps(
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "name": span.name,
                "category": span.category,
                "kind": span.kind,
                "source": span.source,
                "start": span.start,
                "end": span.end,
                "status": span.status,
                "attrs": span.attrs,
            },
            sort_keys=True,
            separators=(",", ":"),
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def write_artifacts(
    observer: Observer,
    stem: str,
    node_order: Optional[Sequence[str]] = None,
    title: str = "metrics",
) -> Dict[str, str]:
    """Write the three run artifacts next to each other.

    ``stem`` is a path without extension; the files written are
    ``<stem>.trace.json``, ``<stem>.spans.jsonl`` and
    ``<stem>.metrics.txt``.  Returns format -> path.
    """
    observer.finalize()
    assert_no_open_spans(observer)
    directory = os.path.dirname(stem)
    if directory:
        os.makedirs(directory, exist_ok=True)
    paths = {
        "trace": f"{stem}.trace.json",
        "spans": f"{stem}.spans.jsonl",
        "metrics": f"{stem}.metrics.txt",
    }
    with open(paths["trace"], "w") as handle:
        handle.write(chrome_trace(observer.tracer.spans, node_order=node_order,
                                  process_name=title))
    with open(paths["spans"], "w") as handle:
        handle.write(spans_jsonl(observer.tracer.spans))
    with open(paths["metrics"], "w") as handle:
        handle.write(observer.metrics.report(title=title))
    return paths


def write_counter_track(
    observer: Observer, stem: str, title: str = "repro profile"
) -> str:
    """Write the run's time series as a Perfetto counter-track document.

    Kept separate from :func:`write_artifacts` (which writes exactly the
    three classic artifacts) so existing callers and tests keep their
    contract; the profiler calls both.  Returns the written path.
    """
    observer.finalize()
    directory = os.path.dirname(stem)
    if directory:
        os.makedirs(directory, exist_ok=True)
    path = f"{stem}.counters.trace.json"
    with open(path, "w") as handle:
        handle.write(
            counter_trace(observer.metrics.series_snapshot(), process_name=title)
        )
    return path
