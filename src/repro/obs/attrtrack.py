"""Opt-in per-instance attribute-write tracking.

The static interference analysis (``repro.lint`` R6xx) derives, per
protocol class, the set of instance attributes its methods may write
(the ``classes`` map of ``docs/interference.json``).  This module is the
dynamic side of that contract: wrap a live protocol instance with
:func:`track_attr_writes` and every ``self.<attr> = ...`` (including
augmented assignment, which also goes through ``__setattr__``) is
reported to :meth:`Observer.on_attr_write` under the instance's class
name.  The interference tests then assert *observed ⊆ static* across
chaos campaigns — a runtime write the analysis failed to predict fails
the suite.

The mechanism is a per-base-class cached subclass that overrides
``__setattr__`` and is swapped in via ``instance.__class__``.  Nothing
is patched globally, untracked instances pay zero cost, and
:func:`untrack_attr_writes` restores the original class.  Tracking
bookkeeping lives in the instance dict under ``_attrtrack_*`` names,
which are installed with ``object.__setattr__`` and excluded from
recording so the wrapper never observes itself.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["track_attr_writes", "untrack_attr_writes"]

_OBSERVER_SLOT = "_attrtrack_observer"
_LABEL_SLOT = "_attrtrack_label"

# base class -> tracking subclass (one per base; instances share it)
_TRACKED: Dict[type, type] = {}


def _tracking_class(base: type) -> type:
    cached = _TRACKED.get(base)
    if cached is not None:
        return cached

    def __setattr__(self: Any, name: str, value: Any) -> None:
        instance_dict = object.__getattribute__(self, "__dict__")
        observer = instance_dict.get(_OBSERVER_SLOT)
        if observer is not None and not name.startswith("_attrtrack"):
            observer.on_attr_write(
                instance_dict.get(_LABEL_SLOT, base.__name__), name
            )
        base.__setattr__(self, name, value)

    cls = type(
        f"_Tracked{base.__name__}",
        (base,),
        {"__setattr__": __setattr__, "_attrtrack_base": base},
    )
    _TRACKED[base] = cls
    return cls


def track_attr_writes(obj: Any, observer: Any, label: str = "") -> Any:
    """Report every attribute write on ``obj`` to ``observer``.

    ``label`` defaults to the object's class name — the key the R6xx
    ``classes`` map uses.  Idempotent: re-tracking an already tracked
    instance just updates its observer and label.  Returns ``obj``.
    """
    base = type(obj)
    base = getattr(base, "_attrtrack_base", base)
    object.__setattr__(obj, _OBSERVER_SLOT, observer)
    object.__setattr__(obj, _LABEL_SLOT, label or base.__name__)
    object.__setattr__(obj, "__class__", _tracking_class(base))
    return obj


def untrack_attr_writes(obj: Any) -> Any:
    """Restore ``obj``'s original class and drop tracking state."""
    base = getattr(type(obj), "_attrtrack_base", None)
    if base is None:
        return obj  # was never tracked
    object.__setattr__(obj, "__class__", base)
    instance_dict = object.__getattribute__(obj, "__dict__")
    instance_dict.pop(_OBSERVER_SLOT, None)
    instance_dict.pop(_LABEL_SLOT, None)
    return obj
