"""Windowed time series: fixed sim-time buckets over an observed run.

Aggregate metrics (counters, end-of-run histograms) answer "how much in
total"; chaos campaigns and the profiler also need "when" — throughput
and per-phase latency *before, during and after* a fault window, the
replication lag of a lazy technique as propagation drains, the circuit
breaker's state flips.  A :class:`TimeSeries` collects observations into
fixed-width buckets of simulated time; the registry keeps one per
``(name, label)`` next to the other instruments and snapshots them with
the same determinism guarantees (sorted keys, per-seed byte-identical).

The bucket clock: series fed from event hooks (request completions,
phase transitions, message sends) need no clock support at all — each
observation carries its own timestamp.  *State* sampling (gauges such as
``resilience.breaker.state``) additionally uses the simulator's tick
hook (:meth:`repro.sim.Simulator.set_tick_hook`), which fires inline as
the event loop crosses bucket boundaries: no timers are scheduled, so an
observed run's event interleaving is untouched.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["TimeSeries", "counter_track_events", "counter_trace"]

# Default bucket width in simulated time units (one network hop = 1.0;
# 50 units ≈ a handful of requests per bucket under the stock workloads).
DEFAULT_BUCKET_WIDTH = 50.0

# Simulated-time unit -> Chrome microseconds, matching export.chrome_trace
# (1 simulated unit rendered as 1 ms).
_TS_SCALE = 1000.0


class TimeSeries:
    """Observations aggregated into fixed-width sim-time buckets.

    Each bucket keeps ``(count, total, min, max)`` of the values observed
    inside it, which is enough to reconstruct rates (count per bucket),
    means (total/count) and envelopes without retaining every sample.
    """

    __slots__ = ("width", "buckets")

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if not (width > 0):
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self.width = width
        self.buckets: Dict[int, List[float]] = {}

    def observe(self, time: float, value: float = 1.0) -> None:
        """Record ``value`` at simulated ``time`` into its bucket."""
        index = int(time // self.width)
        bucket = self.buckets.get(index)
        if bucket is None:
            self.buckets[index] = [1, value, value, value]
        else:
            bucket[0] += 1
            bucket[1] += value
            if value < bucket[2]:
                bucket[2] = value
            if value > bucket[3]:
                bucket[3] = value

    # -- queries -----------------------------------------------------------

    def counts(self) -> List[Tuple[float, int]]:
        """``(bucket_start_time, count)`` rows in time order."""
        return [
            (index * self.width, int(self.buckets[index][0]))
            for index in sorted(self.buckets)
        ]

    def rates(self) -> List[Tuple[float, float]]:
        """``(bucket_start_time, count / width)`` rows in time order.

        The per-bucket observation rate in events per simulated time
        unit — offered load and goodput curves read straight off this.
        """
        return [
            (index * self.width, self.buckets[index][0] / self.width)
            for index in sorted(self.buckets)
        ]

    def totals(self) -> List[Tuple[float, float]]:
        """``(bucket_start_time, sum_of_values)`` rows in time order."""
        return [
            (index * self.width, self.buckets[index][1])
            for index in sorted(self.buckets)
        ]

    def summary(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot: width + per-bucket aggregates."""
        return {
            "width": self.width,
            "buckets": {
                str(index): {
                    "count": int(bucket[0]),
                    "sum": bucket[1],
                    "min": bucket[2],
                    "max": bucket[3],
                }
                for index, bucket in sorted(self.buckets.items())
            },
        }

    def sparkline(self, levels: str = " .:-=+*#%@") -> str:
        """Compact count-per-bucket rendering for the text report.

        Buckets between the first and last populated one render as one
        character each, scaled to the peak count; gaps show as spaces —
        a fault window reads as a visible dent in throughput.
        """
        if not self.buckets:
            return ""
        lo, hi = min(self.buckets), max(self.buckets)
        peak = max(bucket[0] for bucket in self.buckets.values())
        chars = []
        for index in range(lo, hi + 1):
            bucket = self.buckets.get(index)
            if bucket is None or peak <= 0:
                chars.append(levels[0])
            else:
                rank = int(bucket[0] / peak * (len(levels) - 1) + 0.5)
                chars.append(levels[max(1, rank)])
        return "".join(chars)

    def __len__(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:
        return f"<TimeSeries width={self.width:g} buckets={len(self.buckets)}>"


def counter_track_events(
    series_map: Mapping[str, TimeSeries], pid: int = 0, tid: int = 0
) -> List[Dict[str, Any]]:
    """Render series as Perfetto counter-track (``"ph": "C"``) events.

    One counter track per series name; each populated bucket emits a
    sample at its start with the bucket's count and value sum, plus a
    closing zero sample one bucket after the last so the track returns
    to baseline instead of extending its final value forever.
    """
    events: List[Dict[str, Any]] = []
    for name in sorted(series_map):
        series = series_map[name]
        if not series.buckets:
            continue
        for index in sorted(series.buckets):
            bucket = series.buckets[index]
            events.append({
                "ph": "C", "pid": pid, "tid": tid,
                "ts": index * series.width * _TS_SCALE,
                "name": name,
                "args": {"count": int(bucket[0]), "sum": round(bucket[1], 9)},
            })
        closing = (max(series.buckets) + 1) * series.width
        events.append({
            "ph": "C", "pid": pid, "tid": tid, "ts": closing * _TS_SCALE,
            "name": name, "args": {"count": 0, "sum": 0},
        })
    return events


def counter_trace(
    series_map: Mapping[str, TimeSeries], process_name: str = "repro profile"
) -> str:
    """Standalone Perfetto-loadable counter-track document (byte-stable)."""
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    events.extend(counter_track_events(series_map))
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
