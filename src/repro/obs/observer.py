"""The observer: one object bundling a span tracer and a metrics registry.

Instrumented layers below ``obs`` in the import DAG (``net``, ``db``)
never import this module — they hold an *optional, duck-typed* observer
and guard every hook with a ``None`` check, which keeps instrumentation
zero-cost when disabled and keeps the architecture acyclic (``obs`` may
depend on ``sim``/``net``; nothing below ``core`` depends on ``obs``).
The hooks below are therefore the whole contract between the
observability layer and the system it watches.

Causality model (one root per client request):

* ``on_request_submit`` opens the root span; the client pushes it while
  dispatching, so the outgoing ``client.request`` messages are children.
* ``on_message_send`` opens a flight span under the current context and
  stamps its id onto the envelope; ``on_message_deliver`` /
  ``on_message_drop`` close it.
* ``handler_context`` brackets a receiving node's handler with a span
  parented under the flight span — re-entering the request's causal tree
  on the other side of the wire.
* ``on_phase`` turns the five-phase records into phase spans: each phase
  of a (source, request) pair ends when the next one starts.
* lock hooks wrap 2PL waits; the trace-log bridge converts group
  communication, failure-detector, 2PC and fault-injection records into
  instant events and counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer

__all__ = ["Observer", "abort_reason_label"]

# Trace-log categories bridged into instant group-communication events.
_GC_CATEGORIES = frozenset(
    {"abcast", "rbcast", "fifo", "causal", "optab", "consensus", "view"}
)

_ABORT_KEYWORDS = (
    ("deadlock", "deadlock"),
    ("timeout", "timeout"),
    ("crash", "crash"),
    ("certif", "certification"),
    ("conflict", "conflict"),
    ("vote", "vote-no"),
    ("client abort", "client"),
)


def abort_reason_label(reason: str) -> str:
    """Collapse free-form abort reasons to a bounded label set.

    Reasons often embed transaction ids (``"transaction r0:t3 aborted:
    lock wait timeout"``); counting them verbatim would explode metric
    cardinality without adding information.
    """
    lowered = reason.lower()
    for needle, label in _ABORT_KEYWORDS:
        if needle in lowered:
            return label
    return "other"


class Observer:
    """Span tracer + metrics registry + the hook surface layers call."""

    def __init__(self, clock: Any = None) -> None:
        self.tracer = SpanTracer(clock)
        self.metrics = MetricsRegistry()
        self._open_requests: Dict[str, Span] = {}
        self._open_phases: Dict[Tuple[str, object], Span] = {}
        self._completed_at: Dict[str, float] = {}
        self.lock_sequence: List[Tuple[str, str, str, str]] = []
        self.attr_writes: Dict[str, set] = {}
        self._trace_log: Any = None
        self._sampled_sim: Any = None
        self._finalized = False

    # -- client request lifecycle (called from repro.core) -----------------

    def on_request_submit(self, request_id: str, client: str) -> Span:
        span = self.tracer.start(
            "request", "request", client,
            trace_id=str(request_id), parent_id=None, use_context=False,
            request=str(request_id), client=client,
        )
        self._open_requests[str(request_id)] = span
        self.metrics.inc("requests.submitted")
        return span

    def on_request_complete(
        self, request_id: str, committed: bool, reason: str = "", retries: int = 0
    ) -> None:
        span = self._open_requests.pop(str(request_id), None)
        if span is None:
            return
        status = "ok" if committed else "aborted"
        self.tracer.finish(span, status=status, committed=committed,
                           reason=reason, retries=retries)
        self._completed_at[str(request_id)] = span.end
        self.metrics.inc("requests.committed" if committed else "requests.aborted")
        if retries:
            self.metrics.inc("requests.retries", amount=retries)
        now = self.tracer.now
        if committed:
            self.metrics.observe("request.latency", span.duration)
            self.metrics.sample("ts.completions", now)
            self.metrics.sample("ts.response_time", now, span.duration)
        else:
            self.metrics.sample("ts.aborts", now)

    @contextmanager
    def request_context(self, request_id: str) -> Iterator[Optional[Span]]:
        """Causal context of a request's root span (client-side dispatch)."""
        with self.tracer.context(self._open_requests.get(str(request_id))) as span:
            yield span

    # -- network (called from repro.net, duck-typed) -----------------------

    def on_message_send(self, message: Any) -> None:
        """Open a flight span for an envelope and stamp it on the message.

        The flight normally parents (and inherits its trace) from the
        context stack.  When the send happens outside any context — a
        timer callback, a process the tracer could not see — the trace
        id is recovered from request/transaction identifiers inside the
        payload, so phase attribution and the critical-path walk keep
        every flight of a request even across untracked boundaries.
        """
        payload = message.payload
        attrs = {"type": message.type, "src": message.src, "dst": message.dst,
                 "msg_id": message.msg_id}
        inner = None
        if isinstance(payload, dict):
            inner = payload.get("inner_type")
            attrs["bytes"] = size = _approx_size(payload)
            self.metrics.inc("messages.bytes", amount=size)
        if isinstance(inner, str):
            attrs["inner"] = inner
        trace_id = None
        if self.tracer.current is None:
            trace_id = _payload_trace_hint(payload)
        span = self.tracer.start(
            f"msg:{message.type}", "message", message.src,
            trace_id=trace_id, **attrs
        )
        message.span_id = span.span_id
        self.metrics.inc("messages.sent")
        self.metrics.inc("messages.sent.by_type", label=message.type)
        self.metrics.sample("ts.messages", span.start)
        if isinstance(inner, str):
            self.metrics.inc("messages.sent.by_inner_type", label=inner)

    def on_message_deliver(self, message: Any) -> None:
        span = self.tracer.get(message.span_id)
        if span is not None:
            self.tracer.finish(span, status="ok")
            self.metrics.observe("message.flight_time", span.duration)
        self.metrics.inc("messages.delivered")

    def on_message_drop(self, message: Any, cause: str) -> None:
        span = self.tracer.get(message.span_id)
        if span is not None:
            self.tracer.finish(span, status=f"dropped:{cause}")
        self.metrics.inc("messages.dropped", label=cause)

    @contextmanager
    def handler_context(self, node_name: str, message: Any) -> Iterator[Optional[Span]]:
        """Bracket a handler invocation with a span under the flight span."""
        flight = self.tracer.get(message.span_id)
        if flight is None:
            yield None
            return
        with self.tracer.span(
            f"handle:{message.type}", "handle", node_name,
            trace_id=flight.trace_id, parent_id=flight.span_id,
            type=message.type, src=message.src,
        ) as span:
            yield span

    # -- phases (called from repro.core.phases) ------------------------------

    def on_phase(
        self, source: str, request_id: object, phase: str, mechanism: str = ""
    ) -> Span:
        """Open a phase span; the previous phase of (source, request) ends."""
        key = (source, request_id)
        previous = self._open_phases.pop(key, None)
        if previous is not None:
            self.tracer.finish(previous)
            self.metrics.observe("phase.latency", previous.duration,
                                 label=previous.name)
            self.metrics.sample("ts.phase_time", previous.end,
                                previous.duration, label=previous.name)
        span = self.tracer.start(
            phase, "phase", source, trace_id=str(request_id),
            request=str(request_id), mechanism=mechanism,
        )
        self._open_phases[key] = span
        self.metrics.inc("phases.entered", label=phase)
        completed = self._completed_at.get(str(request_id))
        if phase == "AC" and completed is not None:
            # A replica applying after the client already got its answer:
            # lazy propagation.  The gap is the staleness window this
            # update was invisible for — replication lag, as a series.
            self.metrics.sample(
                "ts.replication_lag", span.start, span.start - completed
            )
        return span

    # -- locks (called from repro.db.locks, duck-typed) ----------------------

    def on_lock_acquire(self, site: str, txn: object, item: str, mode: str) -> None:
        """Every acquisition *request*, contended or not.

        The sequence is what the wait-graph tests replay against the
        static W5xx lock sites: each recorded (site, item, mode) must
        match a lock pattern the analysis extracted.
        """
        self.lock_sequence.append((site, str(txn), item, mode))
        self.metrics.inc("lock.requests", label=mode)

    def on_lock_wait(self, site: str, txn: object, item: str, mode: str) -> Span:
        return self.tracer.start(
            f"lock-wait:{item}", "lock", site, trace_id=_txn_trace(txn),
            txn=str(txn), item=item, mode=mode,
        )

    def on_lock_granted(self, span: Optional[Span], waited: float) -> None:
        if span is not None:
            self.tracer.finish(span, status="ok")
        self.metrics.observe("lock.wait_time", waited)

    def on_lock_failed(self, span: Optional[Span], cause: str) -> None:
        if span is not None:
            self.tracer.finish(span, status=f"aborted:{cause}")
        self.metrics.inc("lock.aborted_waits", label=cause)

    def on_lock_released(self, hold_time: float) -> None:
        self.metrics.observe("lock.hold_time", hold_time)

    def on_deadlock(self) -> None:
        self.metrics.inc("lock.deadlocks")

    # -- attribute writes (opt-in, via repro.obs.attrtrack) ------------------

    def on_attr_write(self, label: str, attr: str) -> None:
        """Record that a tracked instance wrote one of its attributes.

        Only fires for instances explicitly wrapped with
        :func:`~repro.obs.attrtrack.track_attr_writes` — nothing on the
        normal hot path calls this.  The accumulated per-class sets are
        what the interference tests compare against the static R6xx
        write sets (``docs/interference.json`` ``classes`` map): every
        observed write must be a subset of what the analysis predicted.
        """
        self.attr_writes.setdefault(label, set()).add(attr)

    # -- transactions (called from repro.db.transactions, duck-typed) --------

    def on_txn_commit(self, site: str) -> None:
        self.metrics.inc("txn.committed")

    def on_txn_abort(self, site: str, reason: str) -> None:
        self.metrics.inc("txn.aborted", label=abort_reason_label(reason))

    # -- trace-log bridge -----------------------------------------------------

    def attach(self, trace_log: Any) -> None:
        """Mirror structured trace events as instant spans and counters.

        The group-communication, failure-detection, 2PC and
        fault-injection layers already narrate themselves into the
        :class:`~repro.sim.TraceLog`; subscribing converts that
        narration into the span world without those layers knowing the
        observer exists.  Events fire inside handler contexts, so the
        instants land in the right causal subtree.
        """
        self._trace_log = trace_log
        trace_log.subscribe(self._on_trace_event)

    def attach_sampler(self, sim: Any, width: Optional[float] = None) -> None:
        """Sample gauges at every bucket boundary via the sim tick hook.

        Event-fed series carry their own timestamps; *state* (breaker
        positions, suspicion counts — anything held in a gauge) has to be
        polled.  The simulator's tick hook fires inline as the event loop
        crosses bucket boundaries — no timers are scheduled, so observing
        a run does not perturb it (the neutrality test's contract).
        """
        self._sampled_sim = sim
        sim.set_tick_hook(
            width if width is not None else self.metrics.series_width,
            self._on_tick,
        )

    def _on_tick(self, boundary: float) -> None:
        """Record every gauge's current value into its ``sample.*`` series."""
        for name, label, value in self.metrics.gauge_values():
            self.metrics.sample(
                f"sample.{name}", boundary, value, label=label or None
            )

    def _on_trace_event(self, event: Any) -> None:
        category = event.category
        if category in ("phase", "message"):
            return  # natively instrumented as real spans
        if category in _GC_CATEGORIES:
            mtype = event.data.get("mtype", event.data.get("action", ""))
            self.tracer.instant(
                f"{category}:{mtype}" if mtype else category, "gc",
                event.source, **_primitive_attrs(event.data),
            )
            self.metrics.inc("broadcast.delivered", label=category)
        elif category == "fd":
            action = event.data.get("action", "")
            self.tracer.instant(
                f"fd:{action}", "fd", event.source,
                peer=event.data.get("peer", ""),
            )
            if action == "suspect":
                self.metrics.inc("fd.suspicions")
            elif action == "restore":
                self.metrics.inc("fd.wrong_suspicions")
        elif category == "2pc":
            decision = event.data.get("decision", "")
            self.tracer.instant(
                f"2pc:{decision}", "2pc", event.source,
                txn=str(event.data.get("txn", "")),
            )
            self.metrics.inc("2pc.decisions", label=decision)
        elif category == "fault":
            action = event.data.get("action", "")
            self.tracer.instant(
                f"fault:{action}", "fault", event.source,
                **_primitive_attrs(event.data),
            )
            self.metrics.inc("faults.injected", label=action)
            self.metrics.sample("ts.faults", self.tracer.now)

    # -- crashes (called from repro.core.system) ------------------------------

    def on_node_crash(self, node_name: str) -> None:
        """Close the crashed node's open phase spans as errors.

        The host loses its in-flight work (active transactions are
        aborted, the serving table cleared); the spans narrating that
        work must not linger as if it were still running — satellite
        audit: no leaked open spans on chaos paths.
        """
        keys = sorted(
            (k for k in self._open_phases if k[0] == node_name), key=repr
        )
        for key in keys:
            span = self._open_phases.pop(key)
            self.tracer.finish(span, status="error:crash")
        self.metrics.inc("nodes.crashed")

    # -- export preparation ----------------------------------------------------

    def finalize(self) -> None:
        """Bound every open span and derive end-of-run gauges (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if self._sampled_sim is not None:
            # Final gauge sample at the horizon, then detach so a reused
            # simulator does not call into a finalized observer.
            self._on_tick(self.tracer.now)
            self._sampled_sim.clear_tick_hook()
            self._sampled_sim = None
        for key in sorted(self._open_phases, key=repr):
            span = self._open_phases[key]
            self.tracer.finish(span, status="open")
        self._open_phases.clear()
        for request_id in sorted(self._open_requests):
            self.tracer.finish(self._open_requests[request_id], status="unanswered")
        self._open_requests.clear()
        force_closed = len(self.tracer.open_spans())
        self.tracer.finalize()
        self.metrics.set("spans.recorded", float(len(self.tracer.spans)))
        self.metrics.set("spans.force_closed", float(force_closed))
        if self._trace_log is not None:
            # Ring-buffer overflow is silent at drop time by design (the
            # hot path cannot afford reporting); surface it here so a
            # truncated trace is visible in every metrics report.
            self.metrics.set(
                "trace.dropped_events", float(self._trace_log.dropped_events)
            )

    def __repr__(self) -> str:
        return f"<Observer {self.tracer!r} {self.metrics!r}>"


def _txn_trace(txn: object) -> str:
    """Transaction ids double as trace ids when protocols reuse request ids."""
    return str(txn)


def _approx_size(value: Any) -> int:
    """Deterministic wire-size estimate of a payload, in bytes.

    An accounting convention, not a codec: strings count their length,
    numbers a fixed word, containers recurse with small framing.  Unknown
    objects count a flat 16 — never ``str()`` them, the default repr
    embeds ``id()`` and would vary run to run.
    """
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return 2 + sum(
            _approx_size(k) + _approx_size(v) + 2 for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(_approx_size(item) for item in value)
    return 16


def _payload_trace_hint(payload: Any, depth: int = 5) -> Optional[str]:
    """Recover a trace id from request identifiers inside a payload.

    Used only for sends with an empty causal context — timer callbacks
    (lazy propagation, retransmissions) and the group-communication
    stack's ``call_soon`` local-delivery hops, where the synchronous
    context chain is cut.  Wire payloads nest the request under framing
    layers (a reliable-transport frame wraps an ordered-broadcast body
    wraps the request), so the probe descends a few known envelope keys.
    A ``None`` merely leaves the flight as background traffic, so it is
    deliberately conservative: exact keys, bounded depth, first match in
    a fixed order.
    """
    if not isinstance(payload, dict) or depth <= 0:
        return None
    request_id = payload.get("request_id")
    if isinstance(request_id, str) and request_id:
        return request_id
    for key in ("txn", "txn_id"):
        txn = payload.get(key)
        if isinstance(txn, str) and txn:
            return txn.split("@", 1)[0]
    for key in ("request", "body", "updates"):
        hint = _payload_trace_hint(payload.get(key), depth - 1)
        if hint is not None:
            return hint
    entries = payload.get("entries")
    if isinstance(entries, list) and entries:
        # A propagation batch: attribute the flight to the first shipped
        # transaction's request (a convention — the batch serves them
        # all, but one trace must own the flight span).
        return _payload_trace_hint(entries[0], depth - 1)
    return None


def _primitive_attrs(data: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only primitive payload values (span attrs must stay JSON-able)."""
    return {
        key: value
        for key, value in data.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
