"""The observer: one object bundling a span tracer and a metrics registry.

Instrumented layers below ``obs`` in the import DAG (``net``, ``db``)
never import this module — they hold an *optional, duck-typed* observer
and guard every hook with a ``None`` check, which keeps instrumentation
zero-cost when disabled and keeps the architecture acyclic (``obs`` may
depend on ``sim``/``net``; nothing below ``core`` depends on ``obs``).
The hooks below are therefore the whole contract between the
observability layer and the system it watches.

Causality model (one root per client request):

* ``on_request_submit`` opens the root span; the client pushes it while
  dispatching, so the outgoing ``client.request`` messages are children.
* ``on_message_send`` opens a flight span under the current context and
  stamps its id onto the envelope; ``on_message_deliver`` /
  ``on_message_drop`` close it.
* ``handler_context`` brackets a receiving node's handler with a span
  parented under the flight span — re-entering the request's causal tree
  on the other side of the wire.
* ``on_phase`` turns the five-phase records into phase spans: each phase
  of a (source, request) pair ends when the next one starts.
* lock hooks wrap 2PL waits; the trace-log bridge converts group
  communication, failure-detector, 2PC and fault-injection records into
  instant events and counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer

__all__ = ["Observer", "abort_reason_label"]

# Trace-log categories bridged into instant group-communication events.
_GC_CATEGORIES = frozenset(
    {"abcast", "rbcast", "fifo", "causal", "optab", "consensus", "view"}
)

_ABORT_KEYWORDS = (
    ("deadlock", "deadlock"),
    ("timeout", "timeout"),
    ("crash", "crash"),
    ("certif", "certification"),
    ("conflict", "conflict"),
    ("vote", "vote-no"),
    ("client abort", "client"),
)


def abort_reason_label(reason: str) -> str:
    """Collapse free-form abort reasons to a bounded label set.

    Reasons often embed transaction ids (``"transaction r0:t3 aborted:
    lock wait timeout"``); counting them verbatim would explode metric
    cardinality without adding information.
    """
    lowered = reason.lower()
    for needle, label in _ABORT_KEYWORDS:
        if needle in lowered:
            return label
    return "other"


class Observer:
    """Span tracer + metrics registry + the hook surface layers call."""

    def __init__(self, clock: Any = None) -> None:
        self.tracer = SpanTracer(clock)
        self.metrics = MetricsRegistry()
        self._open_requests: Dict[str, Span] = {}
        self._open_phases: Dict[Tuple[str, object], Span] = {}
        self.lock_sequence: List[Tuple[str, str, str, str]] = []
        self.attr_writes: Dict[str, set] = {}
        self._finalized = False

    # -- client request lifecycle (called from repro.core) -----------------

    def on_request_submit(self, request_id: str, client: str) -> Span:
        span = self.tracer.start(
            "request", "request", client,
            trace_id=str(request_id), parent_id=None, use_context=False,
            request=str(request_id), client=client,
        )
        self._open_requests[str(request_id)] = span
        self.metrics.inc("requests.submitted")
        return span

    def on_request_complete(
        self, request_id: str, committed: bool, reason: str = "", retries: int = 0
    ) -> None:
        span = self._open_requests.pop(str(request_id), None)
        if span is None:
            return
        status = "ok" if committed else "aborted"
        self.tracer.finish(span, status=status, committed=committed,
                           reason=reason, retries=retries)
        self.metrics.inc("requests.committed" if committed else "requests.aborted")
        if retries:
            self.metrics.inc("requests.retries", amount=retries)
        if committed:
            self.metrics.observe("request.latency", span.duration)

    @contextmanager
    def request_context(self, request_id: str) -> Iterator[Optional[Span]]:
        """Causal context of a request's root span (client-side dispatch)."""
        with self.tracer.context(self._open_requests.get(str(request_id))) as span:
            yield span

    # -- network (called from repro.net, duck-typed) -----------------------

    def on_message_send(self, message: Any) -> None:
        """Open a flight span for an envelope and stamp it on the message."""
        attrs = {"type": message.type, "src": message.src, "dst": message.dst,
                 "msg_id": message.msg_id}
        inner = None
        if isinstance(message.payload, dict):
            inner = message.payload.get("inner_type")
        if isinstance(inner, str):
            attrs["inner"] = inner
        span = self.tracer.start(
            f"msg:{message.type}", "message", message.src, **attrs
        )
        message.span_id = span.span_id
        self.metrics.inc("messages.sent")
        self.metrics.inc("messages.sent.by_type", label=message.type)
        if isinstance(inner, str):
            self.metrics.inc("messages.sent.by_inner_type", label=inner)

    def on_message_deliver(self, message: Any) -> None:
        span = self.tracer.get(message.span_id)
        if span is not None:
            self.tracer.finish(span, status="ok")
            self.metrics.observe("message.flight_time", span.duration)
        self.metrics.inc("messages.delivered")

    def on_message_drop(self, message: Any, cause: str) -> None:
        span = self.tracer.get(message.span_id)
        if span is not None:
            self.tracer.finish(span, status=f"dropped:{cause}")
        self.metrics.inc("messages.dropped", label=cause)

    @contextmanager
    def handler_context(self, node_name: str, message: Any) -> Iterator[Optional[Span]]:
        """Bracket a handler invocation with a span under the flight span."""
        flight = self.tracer.get(message.span_id)
        if flight is None:
            yield None
            return
        with self.tracer.span(
            f"handle:{message.type}", "handle", node_name,
            trace_id=flight.trace_id, parent_id=flight.span_id,
            type=message.type, src=message.src,
        ) as span:
            yield span

    # -- phases (called from repro.core.phases) ------------------------------

    def on_phase(
        self, source: str, request_id: object, phase: str, mechanism: str = ""
    ) -> Span:
        """Open a phase span; the previous phase of (source, request) ends."""
        key = (source, request_id)
        previous = self._open_phases.pop(key, None)
        if previous is not None:
            self.tracer.finish(previous)
            self.metrics.observe("phase.latency", previous.duration,
                                 label=previous.name)
        span = self.tracer.start(
            phase, "phase", source, trace_id=str(request_id),
            request=str(request_id), mechanism=mechanism,
        )
        self._open_phases[key] = span
        self.metrics.inc("phases.entered", label=phase)
        return span

    # -- locks (called from repro.db.locks, duck-typed) ----------------------

    def on_lock_acquire(self, site: str, txn: object, item: str, mode: str) -> None:
        """Every acquisition *request*, contended or not.

        The sequence is what the wait-graph tests replay against the
        static W5xx lock sites: each recorded (site, item, mode) must
        match a lock pattern the analysis extracted.
        """
        self.lock_sequence.append((site, str(txn), item, mode))
        self.metrics.inc("lock.requests", label=mode)

    def on_lock_wait(self, site: str, txn: object, item: str, mode: str) -> Span:
        return self.tracer.start(
            f"lock-wait:{item}", "lock", site, trace_id=_txn_trace(txn),
            txn=str(txn), item=item, mode=mode,
        )

    def on_lock_granted(self, span: Optional[Span], waited: float) -> None:
        if span is not None:
            self.tracer.finish(span, status="ok")
        self.metrics.observe("lock.wait_time", waited)

    def on_lock_failed(self, span: Optional[Span], cause: str) -> None:
        if span is not None:
            self.tracer.finish(span, status=f"aborted:{cause}")
        self.metrics.inc("lock.aborted_waits", label=cause)

    def on_lock_released(self, hold_time: float) -> None:
        self.metrics.observe("lock.hold_time", hold_time)

    def on_deadlock(self) -> None:
        self.metrics.inc("lock.deadlocks")

    # -- attribute writes (opt-in, via repro.obs.attrtrack) ------------------

    def on_attr_write(self, label: str, attr: str) -> None:
        """Record that a tracked instance wrote one of its attributes.

        Only fires for instances explicitly wrapped with
        :func:`~repro.obs.attrtrack.track_attr_writes` — nothing on the
        normal hot path calls this.  The accumulated per-class sets are
        what the interference tests compare against the static R6xx
        write sets (``docs/interference.json`` ``classes`` map): every
        observed write must be a subset of what the analysis predicted.
        """
        self.attr_writes.setdefault(label, set()).add(attr)

    # -- transactions (called from repro.db.transactions, duck-typed) --------

    def on_txn_commit(self, site: str) -> None:
        self.metrics.inc("txn.committed")

    def on_txn_abort(self, site: str, reason: str) -> None:
        self.metrics.inc("txn.aborted", label=abort_reason_label(reason))

    # -- trace-log bridge -----------------------------------------------------

    def attach(self, trace_log: Any) -> None:
        """Mirror structured trace events as instant spans and counters.

        The group-communication, failure-detection, 2PC and
        fault-injection layers already narrate themselves into the
        :class:`~repro.sim.TraceLog`; subscribing converts that
        narration into the span world without those layers knowing the
        observer exists.  Events fire inside handler contexts, so the
        instants land in the right causal subtree.
        """
        trace_log.subscribe(self._on_trace_event)

    def _on_trace_event(self, event: Any) -> None:
        category = event.category
        if category in ("phase", "message"):
            return  # natively instrumented as real spans
        if category in _GC_CATEGORIES:
            mtype = event.data.get("mtype", event.data.get("action", ""))
            self.tracer.instant(
                f"{category}:{mtype}" if mtype else category, "gc",
                event.source, **_primitive_attrs(event.data),
            )
            self.metrics.inc("broadcast.delivered", label=category)
        elif category == "fd":
            action = event.data.get("action", "")
            self.tracer.instant(
                f"fd:{action}", "fd", event.source,
                peer=event.data.get("peer", ""),
            )
            if action == "suspect":
                self.metrics.inc("fd.suspicions")
            elif action == "restore":
                self.metrics.inc("fd.wrong_suspicions")
        elif category == "2pc":
            decision = event.data.get("decision", "")
            self.tracer.instant(
                f"2pc:{decision}", "2pc", event.source,
                txn=str(event.data.get("txn", "")),
            )
            self.metrics.inc("2pc.decisions", label=decision)
        elif category == "fault":
            action = event.data.get("action", "")
            self.tracer.instant(
                f"fault:{action}", "fault", event.source,
                **_primitive_attrs(event.data),
            )
            self.metrics.inc("faults.injected", label=action)

    # -- export preparation ----------------------------------------------------

    def finalize(self) -> None:
        """Bound every open span and derive end-of-run gauges (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for key in sorted(self._open_phases, key=repr):
            span = self._open_phases[key]
            self.tracer.finish(span, status="open")
        self._open_phases.clear()
        for request_id in sorted(self._open_requests):
            self.tracer.finish(self._open_requests[request_id], status="unanswered")
        self._open_requests.clear()
        self.tracer.finalize()
        self.metrics.set("spans.recorded", float(len(self.tracer.spans)))

    def __repr__(self) -> str:
        return f"<Observer {self.tracer!r} {self.metrics!r}>"


def _txn_trace(txn: object) -> str:
    """Transaction ids double as trace ids when protocols reuse request ids."""
    return str(txn)


def _primitive_attrs(data: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only primitive payload values (span attrs must stay JSON-able)."""
    return {
        key: value
        for key, value in data.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
