"""Resilient client edge and composable chaos campaigns.

This package is the repo's robustness layer (ROADMAP item 5): a
production-style client stub — deterministic retry with backoff and
jitter, per-request deadline budgets, per-node circuit breakers,
idempotency keys with server-side duplicate-reply caching — plus a
campaign engine that composes the fault plane (crash, partition, drop,
duplicate, jitter, slow) into named chaos scenarios and asserts each
replication technique's declared guarantee under them.

See ``docs/resilience.md`` for the knobs and the guarantee table, and
``python -m repro chaos`` / ``make chaos`` for the campaign matrix.
"""

from .breaker import CircuitBreaker
from .campaign import (
    CAMPAIGNS,
    CampaignReport,
    ChaosCampaign,
    FaultAction,
    run_campaign,
    run_matrix,
)
from .client import ResilientClient
from .retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ResilientClient",
    "FaultAction",
    "ChaosCampaign",
    "CampaignReport",
    "CAMPAIGNS",
    "run_campaign",
    "run_matrix",
]
