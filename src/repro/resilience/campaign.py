"""Composable chaos campaigns: named fault scenarios as data.

A :class:`ChaosCampaign` is a list of timed :class:`FaultAction`\\ s —
crashes, recoveries, partitions, heals and the link-fault windows from the
network fault plane (drop, duplicate, jitter, slow).  Campaigns are plain
frozen data: composing a new scenario means writing a tuple, not code, and
the same campaign runs unchanged against every replication technique.

:func:`run_campaign` drives one ``(campaign, technique, seed)`` cell:
it builds a :class:`~repro.core.system.ReplicatedSystem`, attaches
:class:`~repro.resilience.client.ResilientClient` edges, schedules the
campaign through the :class:`~repro.failures.FailureInjector`, runs a
closed-loop counter workload, and then asserts the technique's *declared*
guarantee:

* **strong** techniques must keep exactly-once counters (every committed
  increment visible exactly once at every live replica), finish every
  request definitively (no indeterminate outcomes within the deadline
  budget), and converge;
* **weak** (lazy) techniques must converge after the faults heal —
  transient divergence and lost unshipped commits are their documented
  price.

Every cell is deterministic: the workload, retry jitter and fault plane
draw from named simulator streams, so the same seed produces the same
:class:`CampaignReport` and byte-identical obs evidence artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.operations import Operation, Result
from ..core.protocols import REGISTRY
from ..core.system import ReplicatedSystem
from ..analysis import counter_check
from ..failures import FailureInjector
from .client import ResilientClient
from .retry import RetryPolicy

__all__ = [
    "FaultAction",
    "ChaosCampaign",
    "CampaignReport",
    "CAMPAIGNS",
    "run_campaign",
    "run_matrix",
]

# Placeholder in partition groups, expanded to the attached client edges'
# node names at schedule time (the clients don't exist when the campaign
# literal is written).
CLIENTS = "@clients"

# Client-side outcomes whose server-side effect is unknown: the one
# category the edge cannot classify, counted separately in the verdict.
INDETERMINATE_REASONS = ("deadline exceeded", "retry budget exhausted")


@dataclass(frozen=True)
class FaultAction:
    """One timed fault (or repair) in a campaign.

    ``kind`` selects the injector call:

    ========== ==================================== =====================
    kind       injector effect                      uses
    ========== ==================================== =====================
    crash      ``crash_at(at, node)``               node
    recover    ``recover_at(at, node)``             node
    partition  ``partition_at(at, *groups)``        groups
    heal       ``heal_at(at)``                      —
    drop       ``fault_at(at, node, ...)``          node, value, duration
    duplicate  ``fault_at(at, node, ...)``          node, value, duration
    jitter     ``fault_at(at, node, ...)``          node, value, duration
    slow       ``fault_at(at, node, ...)``          node, value, duration
    ========== ==================================== =====================

    Partition groups may contain the :data:`CLIENTS` placeholder, which
    expands to every attached resilient client.
    """

    kind: str
    at: float
    node: str = ""
    value: float = 0.0
    duration: Optional[float] = None
    groups: Tuple[Tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class ChaosCampaign:
    """A named, reusable fault scenario."""

    name: str
    description: str
    actions: Tuple[FaultAction, ...]

    def horizon(self) -> float:
        """Time by which every action (and fault window) has played out."""
        times = [0.0]
        for action in self.actions:
            times.append(action.at + (action.duration or 0.0))
        return max(times)

    def schedule(self, injector: FailureInjector, clients: Sequence[str] = ()) -> None:
        """Arm every action on ``injector`` (validates names immediately)."""
        for action in self.actions:
            if action.kind == "crash":
                injector.crash_at(action.at, action.node)
            elif action.kind == "recover":
                injector.recover_at(action.at, action.node)
            elif action.kind == "partition":
                groups = [self._expand(group, clients) for group in action.groups]
                injector.partition_at(action.at, *groups)
            elif action.kind == "heal":
                injector.heal_at(action.at)
            else:
                injector.fault_at(
                    action.at, action.node, action.kind, action.value,
                    duration=action.duration,
                )

    @staticmethod
    def _expand(group: Tuple[str, ...], clients: Sequence[str]) -> List[str]:
        expanded: List[str] = []
        for member in group:
            if member == CLIENTS:
                expanded.extend(clients)
            else:
                expanded.append(member)
        return expanded


# ---------------------------------------------------------------------------
# The named campaigns
# ---------------------------------------------------------------------------

CAMPAIGNS: Dict[str, ChaosCampaign] = {
    campaign.name: campaign
    for campaign in (
        ChaosCampaign(
            name="partition_during_view_change",
            description=(
                "Crash a member, then split the group while the view change "
                "it triggered is still settling; heal, then bring the "
                "crashed member back.  Exercises reconfiguration logic "
                "racing a partition."
            ),
            actions=(
                FaultAction("crash", at=40.0, node="r2"),
                FaultAction("partition", at=50.0,
                            groups=(("r0", CLIENTS), ("r1",))),
                FaultAction("heal", at=110.0),
                FaultAction("recover", at=130.0, node="r2"),
            ),
        ),
        ChaosCampaign(
            name="primary_crash_mid_2pc",
            description=(
                "Crash r0 — the initial primary / delegate — while "
                "coordination rounds are in flight, then recover it.  "
                "Clients must fail over (retrying the same idempotency "
                "key) without double-applying."
            ),
            actions=(
                FaultAction("crash", at=32.0, node="r0"),
                FaultAction("recover", at=120.0, node="r0"),
            ),
        ),
        ChaosCampaign(
            name="group_loss_under_load",
            description=(
                "A lossy, duplicating network under load: 35% loss on all "
                "of r1's links and 30% duplication on r0's for 60 time "
                "units.  Retries plus server-side dedup must keep "
                "counters exact despite at-least-once delivery."
            ),
            actions=(
                FaultAction("drop", at=25.0, node="r1", value=0.35, duration=60.0),
                FaultAction("duplicate", at=25.0, node="r0", value=0.30,
                            duration=60.0),
            ),
        ),
        ChaosCampaign(
            name="detector_flap_storm",
            description=(
                "Gray failure: r1 answers 8x slow and r2's links reorder "
                "under 6-unit jitter for 50 time units.  Failure detectors "
                "flap with wrong suspicions; safety must hold anyway."
            ),
            actions=(
                FaultAction("slow", at=20.0, node="r1", value=8.0, duration=50.0),
                FaultAction("jitter", at=20.0, node="r2", value=6.0, duration=50.0),
            ),
        ),
        ChaosCampaign(
            name="rolling_restarts",
            description=(
                "Restart every replica in sequence, one at a time, under "
                "continuous load — the everyday maintenance scenario that "
                "still loses data when recovery is wrong."
            ),
            actions=(
                FaultAction("crash", at=30.0, node="r1"),
                FaultAction("recover", at=70.0, node="r1"),
                FaultAction("crash", at=90.0, node="r2"),
                FaultAction("recover", at=130.0, node="r2"),
                FaultAction("crash", at=150.0, node="r0"),
                FaultAction("recover", at=190.0, node="r0"),
            ),
        ),
    )
}


# ---------------------------------------------------------------------------
# Campaign execution
# ---------------------------------------------------------------------------

@dataclass
class CampaignReport:
    """The verdict for one (campaign, technique, seed) cell."""

    campaign: str
    technique: str
    consistency: str
    seed: int
    requests: int = 0
    committed: int = 0
    definitive_aborts: int = 0
    indeterminate: int = 0
    retries: int = 0
    breaker_trips: int = 0
    converged: bool = False
    violations: List[str] = field(default_factory=list)
    passed: bool = False
    finished_at: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        line = (
            f"{status} {self.campaign} x {self.technique} (seed {self.seed}): "
            f"{self.committed}/{self.requests} committed, "
            f"{self.definitive_aborts} aborted, "
            f"{self.indeterminate} indeterminate, {self.retries} retries, "
            f"{self.breaker_trips} breaker trips, "
            f"converged={self.converged}"
        )
        if self.violations:
            line += f"; violations: {'; '.join(self.violations)}"
        return line


def run_campaign(
    technique: str,
    campaign: ChaosCampaign,
    seed: int = 0,
    clients: int = 2,
    requests_per_client: int = 6,
    deadline: float = 400.0,
    request_timeout: float = 30.0,
    retry: Optional[RetryPolicy] = None,
    observe: bool = True,
    artifact_dir: Optional[str] = None,
    settle_time: float = 600.0,
) -> CampaignReport:
    """Run one campaign against one technique and judge the outcome.

    The workload is a closed loop per client: counter increments with
    think time, each driven through the resilient edge.  A definitive
    abort (lock timeout, deadlock, certification conflict — outcomes the
    edge *knows* had no effect) is resubmitted as a fresh request, the
    way an application-level retry would; an indeterminate outcome is
    never resubmitted, because doing so could double-apply.
    """
    system = ReplicatedSystem(
        technique, replicas=3, clients=0, seed=seed,
        fd_interval=2.0, fd_timeout=8.0, observe=observe,
    )
    edges = [
        ResilientClient(
            system, index=i, request_timeout=request_timeout,
            deadline=deadline, retry=retry,
        )
        for i in range(clients)
    ]
    campaign.schedule(system.injector, clients=[edge.name for edge in edges])

    results: List[Result] = []

    def load(edge: ResilientClient):
        # Per-client named stream: think times never perturb the main
        # workload stream or other clients' draws.
        rng = system.sim.stream(f"campaign.load.{edge.name}")
        for _ in range(requests_per_client):
            result = yield edge.submit(Operation.update("x", "add", 1))
            resubmits = 0
            while (
                not result.committed
                and result.reason not in INDETERMINATE_REASONS
                and resubmits < 8
            ):
                resubmits += 1
                yield system.sim.timeout(rng.uniform(5.0, 15.0))
                result = yield edge.submit(Operation.update("x", "add", 1))
            results.append(result)
            yield system.sim.timeout(rng.uniform(5.0, 20.0))

    procs = [
        system.sim.spawn(load(edge), name=f"load-{edge.name}") for edge in edges
    ]
    system.sim.run_until_done(system.sim.all_of(procs))
    # Let any still-armed fault window play out before end-of-run hygiene
    # (healing ahead of a scheduled partition would get re-split).
    if system.sim.now < campaign.horizon():
        system.sim.run(until=campaign.horizon() + 1.0)
    system.net.heal()
    system.net.clear_faults()
    system.settle(settle_time)

    committed = [r for r in results if r.committed]
    indeterminate = [
        r for r in results
        if not r.committed and r.reason in INDETERMINATE_REASONS
    ]
    stores = {name: system.store_of(name) for name in system.live_replicas()}
    violations = counter_check(committed, stores, strict=False)
    converged = system.converged()

    report = CampaignReport(
        campaign=campaign.name,
        technique=technique,
        consistency=system.info.consistency,
        seed=seed,
        requests=len(results),
        committed=len(committed),
        definitive_aborts=len(results) - len(committed) - len(indeterminate),
        indeterminate=len(indeterminate),
        retries=sum(r.retries for r in results),
        breaker_trips=sum(
            sum(1 for _, state in breaker.transitions if state == "open")
            for edge in edges for breaker in edge.breakers.values()
        ),
        converged=converged,
        violations=list(violations),
        finished_at=system.sim.now,
    )
    if system.info.consistency == "strong":
        # The strong guarantee: every request settles definitively within
        # its budget, committed increments land exactly once everywhere.
        report.passed = (
            not violations and converged and not indeterminate
        )
    else:
        # The lazy guarantee is weaker by design: convergence after heal.
        report.passed = converged

    if observe and artifact_dir is not None:
        from ..obs import write_artifacts

        stem = os.path.join(
            artifact_dir, f"{campaign.name}--{technique}--seed{seed}"
        )
        node_order = list(system.replica_names) + [e.name for e in edges]
        written = write_artifacts(
            system.observer, stem, node_order=node_order,
            title=f"{campaign.name}/{technique}",
        )
        # Record basenames, not paths: the report itself is an evidence
        # artifact, and same-seed runs must be byte-identical no matter
        # which directory they export into.
        report.artifacts = {
            kind: os.path.basename(path) for kind, path in written.items()
        }
        report_path = f"{stem}.report.json"
        with open(report_path, "w") as handle:
            json.dump(asdict(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        report.artifacts["report"] = os.path.basename(report_path)
    return report


def run_matrix(
    campaigns: Optional[Sequence[str]] = None,
    techniques: Optional[Sequence[str]] = None,
    seed: int = 0,
    observe: bool = True,
    artifact_dir: Optional[str] = None,
    **kwargs: Any,
) -> List[CampaignReport]:
    """Run campaigns x techniques; returns one report per cell.

    Defaults to every named campaign against every registered technique —
    the full robustness matrix behind ``make chaos``.
    """
    campaign_names = list(campaigns) if campaigns else sorted(CAMPAIGNS)
    technique_names = list(techniques) if techniques else list(REGISTRY)
    reports = []
    for campaign_name in campaign_names:
        if campaign_name not in CAMPAIGNS:
            raise ValueError(
                f"unknown campaign {campaign_name!r}; "
                f"available: {sorted(CAMPAIGNS)}"
            )
        for technique in technique_names:
            reports.append(
                run_campaign(
                    technique, CAMPAIGNS[campaign_name], seed=seed,
                    observe=observe, artifact_dir=artifact_dir, **kwargs,
                )
            )
    return reports
