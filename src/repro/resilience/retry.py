"""Deterministic retry policy: exponential backoff with jitter.

The policy is pure data plus a pure function of ``(attempt, rng)``: all
randomness comes from the caller-supplied stream, so a client that owns a
named simulator stream (see :meth:`repro.sim.Simulator.stream`) produces
the same backoff schedule on every same-seed run — chaos campaigns stay
byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded decorrelating jitter.

    Attempt ``n`` (1-based) backs off for
    ``min(base * multiplier**(n-1), cap)`` scaled by a uniform draw from
    ``[1 - jitter, 1]``.  Jitter desynchronizes a fleet of retrying
    clients (the classic retry-storm fix) without ever exceeding the
    deterministic envelope, which keeps worst-case budgets computable.

    ``max_attempts`` bounds the total number of sends for one logical
    request; the client gives up with a definitive abort after that.
    """

    base: float = 5.0
    multiplier: float = 2.0
    cap: float = 60.0
    jitter: float = 0.5
    max_attempts: int = 12

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base backoff must be > 0, got {self.base}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter fraction must be in [0, 1], got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based), in sim time."""
        raw = min(self.base * self.multiplier ** max(attempt - 1, 0), self.cap)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())
