"""Per-node circuit breaker for the resilient client edge.

A breaker guards one (client, server) pair and implements the classic
three-state machine:

* **closed** — requests flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: requests are refused locally (no send) until ``reset_timeout``
  of simulated time has passed.  This is what turns a retry storm against
  a dead node into silence the rest of the system never sees.
* **half-open** — after the cool-down, exactly one probe request is let
  through.  Success closes the breaker; failure re-opens it for another
  full cool-down.

The state is exported as an obs gauge (``resilience.breaker.state`` with
the pair as label, 0=closed / 1=open / 2=half-open) so campaign evidence
artifacts show exactly when each edge tripped and recovered.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..sim import Simulator

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Three-state circuit breaker driven by the simulated clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _GAUGE = {"closed": 0, "open": 1, "half_open": 2}

    def __init__(
        self,
        sim: Simulator,
        failure_threshold: int = 3,
        reset_timeout: float = 60.0,
        name: str = "",
        obs: Optional[Any] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self.obs = obs
        self.state = self.CLOSED
        self.failures = 0
        self.transitions: List[Tuple[float, str]] = []
        self._opened_at = 0.0
        self._probe_inflight = False
        self._export()

    # -- decisions ---------------------------------------------------------

    def allow(self) -> bool:
        """May a request be sent through this edge right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.sim.now - self._opened_at >= self.reset_timeout:
                self._transition(self.HALF_OPEN)
                self._probe_inflight = True
                return True
            return False
        # Half-open: one probe at a time.
        if not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def reopens_in(self) -> float:
        """Time until an open breaker admits its half-open probe (0 if now)."""
        if self.state != self.OPEN:
            return 0.0
        return max(self.reset_timeout - (self.sim.now - self._opened_at), 0.0)

    # -- outcomes ----------------------------------------------------------

    def record_success(self) -> None:
        """A request through this edge got a response."""
        self.failures = 0
        self._probe_inflight = False
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A request through this edge timed out (or errored)."""
        self._probe_inflight = False
        if self.state == self.HALF_OPEN:
            self._opened_at = self.sim.now
            self._transition(self.OPEN)
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.failure_threshold:
            self._opened_at = self.sim.now
            self._transition(self.OPEN)

    # -- internals ---------------------------------------------------------

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.sim.now, state))
        self._export()

    def _export(self) -> None:
        if self.obs is not None:
            self.obs.metrics.set(
                "resilience.breaker.state", self._GAUGE[self.state],
                label=self.name or None,
            )

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self.state} failures={self.failures}>"
