"""The resilient client edge.

:class:`ResilientClient` is a production-style client stub layered over
the same wire protocol as :class:`repro.core.system.ClientNode`, adding
the robustness mechanics ROADMAP item 5 calls for:

* **retry with exponential backoff + jitter** — deterministic: all
  randomness draws from the client's named simulator stream, so same-seed
  runs are byte-identical (see :class:`~repro.resilience.retry.RetryPolicy`);
* **per-request deadline budgets** — the absolute give-up time rides on
  the :class:`~repro.net.Message` envelope, and servers shed requests
  whose budget already expired instead of working for an absent client;
* **per-node circuit breakers** — closed/open/half-open with an obs
  gauge (see :class:`~repro.resilience.breaker.CircuitBreaker`);
* **idempotency keys** — retries resend the *same* request id, and the
  server-side duplicate-reply cache (``ReplicaNode.reply_cache``) replays
  the committed answer instead of re-executing, making retries
  exactly-once even across a primary failover.

Unlike ``ClientNode`` — which models the paper's blocking database client
and waits forever for a slow server — the resilient edge retries through
message loss, duplication and gray failure, and gives up definitively
when its deadline budget is exhausted.

Outcome taxonomy: a reply with ``committed=True`` or a definitive abort
(lock timeout, deadlock, 2PC no-vote, certification conflict) finishes
the request; ``"not primary"`` routing misses and server-side deadline
sheds are retried against a re-resolved target; network silence is
retried with backoff until the deadline budget runs out, which yields an
*indeterminate* abort (``reason="deadline exceeded"``) — the one outcome
whose server-side effect the client cannot know.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Union

from ..core.operations import Operation, Request, Result
from ..core.protocols.base import CLIENT_REQUEST, CLIENT_RESPONSE
from ..net import Message, Node
from ..sim import Future
from .breaker import CircuitBreaker
from .retry import RetryPolicy

__all__ = ["ResilientClient"]

# Abort reasons that indicate the request never ran and should be retried
# against a (possibly re-resolved) target rather than reported.
_ROUTING_PREFIXES = ("not primary", "deadline exceeded")


class ResilientClient:
    """Retrying, breaker-guarded, deadline-budgeted client edge.

    Parameters
    ----------
    system:
        The :class:`~repro.core.system.ReplicatedSystem` to talk to.  The
        client registers its own node on the system's network and follows
        the technique's declared client policy (all/primary/local).
    index:
        Distinguishes multiple resilient clients: names the node
        (``rc<index>``) and picks the home replica round-robin.
    request_timeout:
        Per-attempt silence budget before the attempt is declared failed
        and retried.
    deadline:
        Per-request total budget in simulated time.  Stamped on every
        outgoing envelope; when it runs out the request finishes with an
        indeterminate ``"deadline exceeded"`` abort.
    retry:
        The :class:`RetryPolicy`; defaults are sized for the default
        one-unit-latency network.
    breaker_threshold / breaker_reset:
        Circuit-breaker tuning, applied per replica.
    """

    def __init__(
        self,
        system: Any,
        index: int = 0,
        name: Optional[str] = None,
        request_timeout: float = 30.0,
        deadline: float = 400.0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 45.0,
    ) -> None:
        self.system = system
        self.name = name or f"rc{index}"
        self.node = Node(system.sim, system.net, self.name)
        self.node.on(CLIENT_RESPONSE, self._on_response)
        self.policy = system.info.client_policy
        self.home = system.replica_names[index % len(system.replica_names)]
        self.request_timeout = request_timeout
        self.deadline = deadline
        self.retry = retry if retry is not None else RetryPolicy()
        # Client-owned randomness: jitter draws must not perturb the
        # simulator's main stream (or each other's, across clients).
        self.rng = system.sim.stream(f"resilience.{self.name}")
        self.breakers: Dict[str, CircuitBreaker] = {
            replica: CircuitBreaker(
                system.sim,
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset,
                name=f"{self.name}->{replica}",
                obs=system.observer,
            )
            for replica in system.replica_names
        }
        self._sequence = itertools.count(1)
        self._inflight: Dict[str, Future] = {}
        self.results: List[Result] = []

    # -- public API --------------------------------------------------------

    def submit(self, operations: Union[Operation, Iterable[Operation]]) -> Future:
        """Submit a request; returns a future resolving to a Result.

        The future *always* resolves by ``deadline`` simulated time units:
        with the committed reply, a definitive abort, or an indeterminate
        ``"deadline exceeded"`` abort.
        """
        if isinstance(operations, Operation):
            operations = [operations]
        request = Request.make(
            tuple(operations), client=self.name, sequence=next(self._sequence)
        )
        future = self.system.sim.future(label=f"rc-result:{request.request_id}")
        if self.system.observer is not None:
            self.system.observer.on_request_submit(request.request_id, self.name)
        self.node.spawn(
            self._drive(request, future), name=f"rc-drive-{request.request_id}"
        )
        return future

    # -- the retry loop ----------------------------------------------------

    def _drive(self, request: Request, result_future: Future):
        sim = self.system.sim
        rid = request.request_id
        submitted_at = sim.now
        give_up_at = submitted_at + self.deadline
        observer = self.system.observer
        attempt = 0
        reply = sim.future(label=f"rc-reply:{rid}")
        self._inflight[rid] = reply
        verdict: Optional[dict] = None
        # Set once any attempt times out: from then on the request's
        # server-side fate is unknown (a silent attempt may still be
        # executing behind locks and commit later), so a definitive abort
        # from a *later* attempt no longer proves "no effect".
        fate_unknown = False

        while verdict is None:
            remaining = give_up_at - sim.now
            if remaining <= 0:
                verdict = {"committed": False, "values": [],
                           "reason": "deadline exceeded", "server": ""}
                break
            if attempt >= self.retry.max_attempts:
                verdict = {"committed": False, "values": [],
                           "reason": "retry budget exhausted", "server": ""}
                break
            targets = self._targets(request)
            if not targets:
                # Every candidate's breaker is open: wait out the shortest
                # cool-down (bounded by the deadline) and re-evaluate.
                pause = max(min(self._shortest_reopen(), remaining), 1.0)
                yield sim.timeout(pause)
                continue
            attempt += 1
            if attempt > 1 and observer is not None:
                observer.metrics.inc("resilience.retries")
            self._send(targets, request, give_up_at)
            wait = min(self.request_timeout, remaining)
            index, value = yield sim.any_of(
                [reply, sim.timeout(wait)], label=f"rc-wait:{rid}"
            )
            if index == 0:
                # Re-arm for a potential next attempt before classifying.
                reply = sim.future(label=f"rc-reply:{rid}")
                self._inflight[rid] = reply
                breaker = self.breakers.get(value["server"])
                if breaker is not None:
                    breaker.record_success()
                if value["committed"]:
                    verdict = value
                    break
                if not self._retryable(value["reason"]):
                    if not fate_unknown:
                        verdict = value
                        break
                    # Tainted abort: this attempt aborted cleanly, but an
                    # earlier attempt of the same id went silent and may
                    # still commit (e.g. stuck behind locks at a lagging
                    # replica).  Settling now — and resubmitting under a
                    # fresh id — could orphan that commit and double-apply.
                    # Keep retrying the same id: the duplicate-reply cache
                    # replays the commit if it lands, and the deadline
                    # bounds the wait otherwise.
                    if observer is not None:
                        observer.metrics.inc("resilience.tainted_aborts")
            else:
                # Silence: the attempt failed as far as this edge knows.
                fate_unknown = True
                for target in targets:
                    self.breakers[target].record_failure()
                if observer is not None:
                    observer.metrics.inc("resilience.attempt_timeouts")
            backoff = self.retry.backoff(attempt, self.rng)
            yield sim.timeout(min(backoff, max(give_up_at - sim.now, 0.0)))

        self._inflight.pop(rid, None)
        result = Result(
            request_id=rid,
            committed=bool(verdict["committed"]),
            values=list(verdict["values"]),
            reason=verdict["reason"],
            submitted_at=submitted_at,
            completed_at=sim.now,
            server=verdict["server"],
            retries=max(attempt - 1, 0),
            operations=request.operations,
        )
        self.results.append(result)
        if observer is not None:
            observer.on_request_complete(
                rid, result.committed, reason=result.reason, retries=result.retries
            )
            if result.reason == "deadline exceeded":
                observer.metrics.inc("resilience.deadline_exceeded")
        result_future.set_result(result)

    # -- routing -----------------------------------------------------------

    def _targets(self, request: Request) -> List[str]:
        if self.policy == "all":
            candidates = list(self.system.replica_names)
        elif self.policy == "primary":
            if request.read_only and self.system.info.reads_anywhere:
                candidates = [self.home]
            else:
                candidates = [self.system.directory.primary]
        else:
            # Local policy: reconnect when the home replica is down — a
            # crash (the connection breaks, per Section 4.1) or a tripped
            # breaker (the edge has given up on a gray-failing home).  Any
            # replica accepts updates under these techniques, so rotation
            # is safe; the reconnect is sticky.
            names = self.system.replica_names
            start = names.index(self.home) if self.home in names else 0
            for offset in range(len(names)):
                candidate = names[(start + offset) % len(names)]
                if self.system.replicas[candidate].crashed:
                    continue
                if self.breakers[candidate].allow():
                    self.home = candidate
                    return [candidate]
            return []
        return [t for t in candidates if self.breakers[t].allow()]

    def _shortest_reopen(self) -> float:
        waits = [b.reopens_in() for b in self.breakers.values()]
        return min(waits) if waits else 0.0

    def _retryable(self, reason: str) -> bool:
        return any(reason.startswith(prefix) for prefix in _ROUTING_PREFIXES)

    def _send(self, targets: List[str], request: Request, give_up_at: float) -> None:
        observer = self.system.observer
        if observer is not None:
            with observer.request_context(request.request_id):
                self._send_raw(targets, request, give_up_at)
        else:
            self._send_raw(targets, request, give_up_at)

    def _send_raw(self, targets: List[str], request: Request, give_up_at: float) -> None:
        for target in targets:
            # Straight through the network layer so the deadline budget
            # rides on the envelope (Node.send exposes payload kwargs only).
            self.system.net.send(
                self.name, target, CLIENT_REQUEST,
                payload={"request": request.as_wire()},
                deadline=give_up_at,
            )

    # -- responses ---------------------------------------------------------

    def _on_response(self, message: Message) -> None:
        future = self._inflight.get(message["request_id"])
        if future is None or future.done:
            return  # late or duplicate reply; the request already settled
        future.set_result({
            "committed": message["committed"],
            "values": list(message["values"]),
            "reason": message["reason"],
            "server": message["server"],
        })

    def __repr__(self) -> str:
        return f"<ResilientClient {self.name} policy={self.policy} home={self.home}>"
