"""Write-ahead log and update records.

The paper's eager primary copy description (Section 4.3): "The execution
phase involves performing the transactions to generate the corresponding
log records which are then sent to the secondary and applied."  An
:class:`UpdateRecord` is exactly such a log record — the physical
after-image of one write — and a :class:`WriteAheadLog` is one site's
durable sequence of them.  Durability matters in the simulation because a
database node's log survives crash/recover, unlike its volatile lock
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["UpdateRecord", "TransactionUpdates", "WriteAheadLog"]


@dataclass(frozen=True)
class UpdateRecord:
    """After-image of a single physical write."""

    item: str
    value: Any
    version: int

    def as_wire(self) -> list:
        """Plain-data form for message payloads."""
        return [self.item, self.value, self.version]

    @staticmethod
    def from_wire(data: list) -> "UpdateRecord":
        return UpdateRecord(item=data[0], value=data[1], version=data[2])


@dataclass(frozen=True)
class TransactionUpdates:
    """The full writeset of one committed transaction, in write order."""

    txn_id: object
    records: Tuple[UpdateRecord, ...]
    commit_lsn: int = -1

    def as_wire(self) -> dict:
        return {
            "txn_id": self.txn_id,
            "records": [record.as_wire() for record in self.records],
            "commit_lsn": self.commit_lsn,
        }

    @staticmethod
    def from_wire(data: dict) -> "TransactionUpdates":
        return TransactionUpdates(
            txn_id=data["txn_id"],
            records=tuple(UpdateRecord.from_wire(r) for r in data["records"]),
            commit_lsn=data["commit_lsn"],
        )


class WriteAheadLog:
    """Append-only per-site log of committed transaction writesets.

    ``lsn`` (log sequence number) is the index of an entry; secondaries use
    it to request/apply the primary's tail in order, and lazy protocols use
    it to track which updates have been propagated where.
    """

    def __init__(self, site: str = "") -> None:
        self.site = site
        self._entries: List[TransactionUpdates] = []

    def append(self, updates: TransactionUpdates) -> int:
        """Append a writeset; returns its LSN."""
        lsn = len(self._entries)
        self._entries.append(
            TransactionUpdates(updates.txn_id, updates.records, commit_lsn=lsn)
        )
        return lsn

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TransactionUpdates]:
        return iter(self._entries)

    def entry(self, lsn: int) -> TransactionUpdates:
        return self._entries[lsn]

    def tail(self, from_lsn: int) -> List[TransactionUpdates]:
        """All entries with LSN >= ``from_lsn``."""
        return self._entries[from_lsn:]

    def last_lsn(self) -> int:
        """LSN of the newest entry, or -1 when empty."""
        return len(self._entries) - 1

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.site} entries={len(self._entries)}>"
