"""Local transaction manager: strict 2PL over one site's store.

This is the per-site engine under every database replication protocol in
the paper: it executes transactions against the local
:class:`~repro.db.storage.DataStore` with strict two-phase locking,
deferred writes, write-ahead logging, and readset/writeset tracking (the
inputs to the certification test of Section 5.4.2).

Transactions run inside simulated processes; lock waits suspend the
process in simulated time:

>>> def work(tm):
...     txn = tm.begin()
...     balance = yield txn.read("x")
...     yield txn.write("x", (balance or 0) + 10)
...     updates = txn.commit()
...     return updates
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import TransactionAborted
from ..sim import Future, Simulator
from .locks import LockManager, READ, WRITE
from .log import TransactionUpdates, UpdateRecord, WriteAheadLog
from .storage import DataStore

__all__ = ["Transaction", "TransactionManager"]

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class Transaction:
    """One in-flight transaction at one site.

    Writes are deferred: they take the write lock immediately (strict 2PL)
    but are installed into the store only at commit, so an abort simply
    discards the buffered writes.  ``commit`` returns the
    :class:`TransactionUpdates` writeset — the log records the replication
    protocols propagate.
    """

    def __init__(self, manager: "TransactionManager", txn_id: object) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.status = ACTIVE
        self.readset: Dict[str, int] = {}    # item -> version seen
        self.writes: Dict[str, Any] = {}     # deferred after-images
        self.write_order: List[str] = []

    # -- operations -------------------------------------------------------

    def read(self, item: str) -> Future:
        """Acquire a read lock and return the item's value (future)."""
        self._ensure_active()
        result = self.manager.sim.future(label=f"read:{item}:{self.txn_id}")
        lock = self.manager.locks.acquire(
            self.txn_id, item, READ, timeout=self.manager.lock_timeout
        )

        def on_lock(future: Future) -> None:
            if future.exception is not None:
                self.manager._abort_internal(self, str(future.exception))
                result.set_exception(future.exception)
                return
            if item in self.writes:
                value = self.writes[item]  # read-your-own-writes
            else:
                value = self.manager.store.read(item)
                self.readset.setdefault(item, self.manager.store.version(item))
            result.set_result(value)

        lock.add_callback(on_lock)
        return result

    def write(self, item: str, value: Any) -> Future:
        """Acquire a write lock and buffer the write (future resolves then)."""
        self._ensure_active()
        result = self.manager.sim.future(label=f"write:{item}:{self.txn_id}")
        lock = self.manager.locks.acquire(
            self.txn_id, item, WRITE, timeout=self.manager.lock_timeout
        )

        def on_lock(future: Future) -> None:
            if future.exception is not None:
                self.manager._abort_internal(self, str(future.exception))
                result.set_exception(future.exception)
                return
            if item not in self.writes:
                self.write_order.append(item)
            self.writes[item] = value
            result.set_result(True)

        lock.add_callback(on_lock)
        return result

    # -- termination --------------------------------------------------------

    def commit(self) -> TransactionUpdates:
        """Install buffered writes, log them, release locks."""
        self._ensure_active()
        return self.manager._commit_internal(self)

    def abort(self, reason: str = "client abort") -> None:
        """Discard buffered writes and release locks."""
        if self.status == ACTIVE:
            self.manager._abort_internal(self, reason)

    def _ensure_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionAborted(self.txn_id, f"transaction is {self.status}")

    @property
    def writeset(self) -> List[str]:
        return list(self.write_order)

    def __repr__(self) -> str:
        return f"<Transaction {self.txn_id} {self.status}>"


class TransactionManager:
    """One site's transaction engine (store + locks + log).

    Parameters
    ----------
    sim, site:
        Simulator and site name (used in transaction ids).
    lock_timeout:
        Optional lock-wait timeout applied to all lock requests; the
        distributed-locking replication protocol relies on it to break
        cross-site deadlocks that no single site can see.
    obs:
        Optional duck-typed observer (:mod:`repro.obs`), threaded into the
        lock manager and notified on commit/abort.  The db layer never
        imports the observability layer.
    """

    def __init__(
        self,
        sim: Simulator,
        site: str = "db",
        lock_timeout: Optional[float] = None,
        obs=None,
    ) -> None:
        self.sim = sim
        self.site = site
        self.lock_timeout = lock_timeout
        self.obs = obs
        self.store = DataStore(site)
        self.locks = LockManager(sim, name=site, obs=obs)
        self.wal = WriteAheadLog(site)
        self.active: Dict[object, Transaction] = {}
        self._txn_ids = itertools.count(1)
        self.committed_count = 0
        self.aborted_count = 0

    # -- lifecycle ------------------------------------------------------------

    def begin(self, txn_id: Optional[object] = None) -> Transaction:
        """Start a transaction (id auto-assigned if not given)."""
        if txn_id is None:
            txn_id = f"{self.site}:t{next(self._txn_ids)}"
        if txn_id in self.active:
            raise ValueError(f"transaction id {txn_id!r} already active")
        txn = Transaction(self, txn_id)
        self.active[txn_id] = txn
        return txn

    def abort_all_active(self, reason: str) -> List[object]:
        """Abort every active transaction (crash, failover).

        Mirrors the paper's observation that when a database server fails,
        "active transactions (not yet committed or aborted) running on that
        server are aborted".
        """
        victims = list(self.active.values())
        for txn in victims:
            self._abort_internal(txn, reason)
        return [t.txn_id for t in victims]

    # -- apply propagated updates -------------------------------------------------

    def apply_updates(self, updates: TransactionUpdates, log: bool = True) -> None:
        """Install another site's writeset (secondary / backup role)."""
        for record in updates.records:
            self.store.write_versioned(record.item, record.value, record.version)
        if log:
            self.wal.append(updates)

    # -- internals ------------------------------------------------------------------

    def _commit_internal(self, txn: Transaction) -> TransactionUpdates:
        records = []
        for item in txn.write_order:
            new_version = self.store.write(item, txn.writes[item])
            records.append(UpdateRecord(item, txn.writes[item], new_version))
        updates = TransactionUpdates(txn.txn_id, tuple(records))
        lsn = self.wal.append(updates)
        updates = TransactionUpdates(txn.txn_id, tuple(records), commit_lsn=lsn)
        txn.status = COMMITTED
        self.active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)
        self.committed_count += 1
        if self.obs is not None:
            self.obs.on_txn_commit(self.site)
        return updates

    def _abort_internal(self, txn: Transaction, reason: str) -> None:
        if txn.status != ACTIVE:
            return
        txn.status = ABORTED
        self.active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)
        self.aborted_count += 1
        if self.obs is not None:
            self.obs.on_txn_abort(self.site, reason)

    def __repr__(self) -> str:
        return (
            f"<TransactionManager {self.site} active={len(self.active)} "
            f"committed={self.committed_count} aborted={self.aborted_count}>"
        )
