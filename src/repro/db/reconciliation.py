"""Reconciliation for lazy update-everywhere replication.

Section 4.6: with lazy update everywhere, "the copies on the different
site might not only be stale but inconsistent.  Reconciliation is needed
to decide which updates are the winners and which transactions must be
undone.  There are some reconciliation schemes around, however, most of
them are on a per object basis."

This module provides exactly those per-object schemes:

* :class:`LastWriterWins` — a write carries a ``(commit_time, site)`` stamp;
  the lexicographically largest stamp wins.  Deterministic at every site,
  hence convergent.
* :class:`SitePriority` — writes from higher-priority sites win ties and
  conflicts (the "primary wins" rule some commercial systems use).

Both track which transactions *lost* (were overwritten), i.e. the
transactions that "must be undone" — the lazy benchmarks report this count
as the price of weak consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from .storage import DataStore

__all__ = ["Stamp", "LastWriterWins", "SitePriority"]


@dataclass(frozen=True)
class Stamp:
    """Total-order stamp for a write.

    Ordered by ``(commit time, site name, per-site sequence)``.  The
    sequence number breaks ties between commits a site performs at the
    same instant, making the order total — without it, two same-time
    same-site writes would be incomparable and sites could diverge.
    """

    time: float
    site: str
    txn_id: Any = None
    seq: int = 0

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.site, self.seq)

    def as_wire(self) -> list:
        return [self.time, self.site, self.txn_id, self.seq]

    @staticmethod
    def from_wire(data: list) -> "Stamp":
        return Stamp(time=data[0], site=data[1], txn_id=data[2], seq=data[3])

    def __lt__(self, other: "Stamp") -> bool:
        return self.sort_key < other.sort_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Stamp):
            return NotImplemented
        return self.sort_key == other.sort_key

    def __hash__(self) -> int:
        return hash(self.sort_key)


class LastWriterWins:
    """Per-item last-writer-wins reconciliation.

    :meth:`consider` is fed every write (local commits and incoming remote
    propagations) and installs it into the store iff its stamp beats the
    current winner's.  Applied at every site over the same set of writes —
    in any arrival order — all stores converge to identical values.
    """

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self._winners: Dict[str, Stamp] = {}
        self.overwritten_txns: Set[Any] = set()
        self.applied = 0
        self.discarded = 0

    def consider(self, item: str, value: Any, stamp: Stamp) -> bool:
        """Apply the write if it wins; returns whether it was applied."""
        current = self._winners.get(item)
        if current is not None and not self._beats(stamp, current, item):
            self.discarded += 1
            if stamp.txn_id is not None:
                self.overwritten_txns.add(stamp.txn_id)
            return False
        if current is not None and current.txn_id is not None:
            self.overwritten_txns.add(current.txn_id)
        self._winners[item] = stamp
        self.store.write(item, value)
        self.applied += 1
        return True

    def _beats(self, challenger: Stamp, incumbent: Stamp, item: str) -> bool:
        return challenger.sort_key > incumbent.sort_key

    def winner_of(self, item: str) -> Optional[Stamp]:
        return self._winners.get(item)

    @property
    def undone_count(self) -> int:
        """Transactions with at least one overwritten (lost) write."""
        return len(self.overwritten_txns)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} applied={self.applied} "
            f"discarded={self.discarded} undone={self.undone_count}>"
        )


class SitePriority(LastWriterWins):
    """Reconciliation where designated sites outrank others.

    ``priorities`` maps site name to rank (higher wins).  Time is the
    tie-breaker among equal-rank sites, then site name.
    """

    def __init__(self, store: DataStore, priorities: Dict[str, int]) -> None:
        super().__init__(store)
        self.priorities = dict(priorities)

    def _beats(self, challenger: Stamp, incumbent: Stamp, item: str) -> bool:
        challenger_key = (self.priorities.get(challenger.site, 0),) + challenger.sort_key
        incumbent_key = (self.priorities.get(incumbent.site, 0),) + incumbent.sort_key
        return challenger_key > incumbent_key
