"""Database substrate (Section 4.1 of the paper).

Per-site building blocks under the database replication protocols:
versioned storage, a strict-2PL lock manager with deadlock handling, a
write-ahead log, the local transaction manager, two-phase commit, the
certification test, and lazy-replication reconciliation policies.
"""

from .certification import CertificationOutcome, Certifier
from .locks import READ, WRITE, LockManager
from .log import TransactionUpdates, UpdateRecord, WriteAheadLog
from .reconciliation import LastWriterWins, SitePriority, Stamp
from .storage import DataStore, Versioned
from .transactions import Transaction, TransactionManager
from .twophase import TwoPhaseCoordinator, TwoPhaseParticipant

__all__ = [
    "DataStore",
    "Versioned",
    "LockManager",
    "READ",
    "WRITE",
    "UpdateRecord",
    "TransactionUpdates",
    "WriteAheadLog",
    "Transaction",
    "TransactionManager",
    "TwoPhaseCoordinator",
    "TwoPhaseParticipant",
    "Certifier",
    "CertificationOutcome",
    "LastWriterWins",
    "SitePriority",
    "Stamp",
]
