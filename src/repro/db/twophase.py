"""Two-phase commit (2PC): the database Agreement Coordination mechanism.

In the paper's analysis, the AC phase of eager database replication "usually
corresponds to a Two Phase Commit Protocol" (Section 2.2): ordering
operations is not enough, because "in a database, there can be many reasons
why an operation succeeds at one site and not at another".  2PC lets every
site veto.

This implementation is deliberately *blocking*, as the paper notes database
protocols are: a participant that voted yes waits for the coordinator's
decision and holds its locks; if the coordinator crashes, the participant
stays blocked until an operator-like recovery step (``resolve_in_doubt``)
is invoked.  The failover benchmark measures exactly this cost.

Message loss, however, must not look like a coordinator crash: a dropped
DECISION would otherwise leave one participant holding locks (and a stale
store) forever while everyone else committed.  Participants therefore run
the classic termination protocol — an in-doubt participant periodically
asks the coordinator for the outcome (``2pc.status``).  The coordinator
journals every decision in the same simulated event as the first decision
send, so a journal miss (``known=False``) only ever means the round is
still in flight and a real DECISION is coming; the participant keeps
waiting.  A coordinator that is down simply doesn't answer — the
participant stays blocked until it recovers, which is the blocking
behaviour the paper ascribes to 2PC.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import NodeCrashed
from ..net import Message, Node
from ..sim import Future, TraceLog

__all__ = ["TwoPhaseCoordinator", "TwoPhaseParticipant"]

PREPARE = "2pc.prepare"
DECISION = "2pc.decision"
STATUS = "2pc.status"


class TwoPhaseCoordinator:
    """Coordinator side of 2PC, one instance per node.

    :meth:`run` drives one commit round as a simulated sub-protocol and
    returns a future resolving to True (committed) or False (aborted).
    """

    def __init__(
        self,
        node: Node,
        vote_timeout: float = 50.0,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.vote_timeout = vote_timeout
        self.trace = trace
        self.rounds = 0
        self.committed = 0
        self.aborted = 0
        # Decision journal: written in the same event as the first
        # decision send, so an absent entry means no commit ever left this
        # coordinator (the presumed-abort invariant behind _on_status).
        self.decided: Dict[Any, bool] = {}
        node.on(STATUS, self._on_status)

    def run(self, txn_id: Any, participants: List[str], local_vote: bool = True) -> Future:
        """Run 2PC for ``txn_id`` across ``participants`` (remote sites).

        ``local_vote`` is the coordinator's own vote.  The returned future
        resolves with the global decision.
        """
        result = self.node.sim.future(label=f"2pc:{txn_id}")
        self.node.spawn(self._run(txn_id, list(participants), local_vote, result))
        return result

    def _run(self, txn_id: Any, participants: List[str], local_vote: bool, result: Future):
        self.rounds += 1
        votes_ok = local_vote
        if votes_ok and participants:
            calls = [
                self.node.call(p, PREPARE, timeout=self.vote_timeout, txn=txn_id)
                for p in participants
            ]
            try:
                replies = yield self.node.sim.all_of(calls)
                votes_ok = all(reply["vote"] for reply in replies)
            except (TimeoutError, NodeCrashed):
                votes_ok = False
        decision = bool(votes_ok)
        if self.trace is not None:
            self.trace.record(
                "2pc", self.node.name, txn=txn_id,
                decision="commit" if decision else "abort",
            )
        self.decided[txn_id] = decision
        for participant in participants:
            self.node.send(participant, DECISION, txn=txn_id, commit=decision)
        if decision:
            self.committed += 1
        else:
            self.aborted += 1
        result.set_result(decision)
        return decision

    def _on_status(self, message: Message) -> None:
        """Answer an in-doubt participant's termination-protocol query.

        ``known=False`` means the round is still collecting votes (even a
        coordinator crash journals an abort on its way down, because the
        :class:`~repro.errors.NodeCrashed` interrupt lands at the vote
        wait); the participant keeps waiting for the real DECISION.
        """
        txn_id = message["txn"]
        self.node.reply(
            message,
            known=txn_id in self.decided,
            commit=self.decided.get(txn_id, False),
        )


class TwoPhaseParticipant:
    """Participant side of 2PC, one instance per node.

    ``on_prepare(txn_id, coordinator) -> bool`` computes the local vote
    (``coordinator`` is the node that sent the PREPARE, so protocols can
    fence rounds from a coordinator that lost its role — e.g. a deposed
    primary); voting yes puts the transaction *in doubt* until the
    decision arrives.  ``on_decision(txn_id, commit)`` applies the
    outcome.
    """

    def __init__(
        self,
        node: Node,
        on_prepare: Callable[[Any, str], bool],
        on_decision: Callable[[Any, bool], None],
        trace: Optional[TraceLog] = None,
        decision_timeout: float = 30.0,
    ) -> None:
        self.node = node
        self.on_prepare = on_prepare
        self.on_decision = on_decision
        self.trace = trace
        self.decision_timeout = decision_timeout
        self.in_doubt: Dict[Any, float] = {}
        self.terminations = 0
        node.on(PREPARE, self._on_prepare_msg)
        node.on(DECISION, self._on_decision_msg)

    def _on_prepare_msg(self, message: Message) -> None:
        txn_id = message["txn"]
        vote = bool(self.on_prepare(txn_id, message.src))
        if vote and txn_id not in self.in_doubt:
            self.in_doubt[txn_id] = self.node.sim.now
            self.node.spawn(
                self._terminate(txn_id, message.src),
                name=f"2pc-indoubt-{txn_id}",
            )
        self.node.reply(message, vote=vote)

    def _terminate(self, txn_id: Any, coordinator: str):
        """Cooperative termination: chase a decision that never arrived.

        Wakes periodically while ``txn_id`` is in doubt and asks the
        coordinator's decision journal.  A dead coordinator doesn't answer
        (the call times out) and the participant stays blocked — only
        *message loss* is repaired here, not coordinator failure.
        """
        sim = self.node.sim
        while txn_id in self.in_doubt:
            yield sim.timeout(self.decision_timeout)
            if txn_id not in self.in_doubt:
                return
            try:
                reply = yield self.node.call(
                    coordinator, STATUS, timeout=self.decision_timeout,
                    txn=txn_id,
                )
            except (TimeoutError, NodeCrashed):
                continue
            if reply["known"] and txn_id in self.in_doubt:
                self.terminations += 1
                if self.trace is not None:
                    self.trace.record(
                        "2pc", self.node.name, txn=txn_id,
                        decision="commit" if reply["commit"] else "abort",
                        via="termination",
                    )
                self.in_doubt.pop(txn_id, None)
                self.on_decision(txn_id, reply["commit"])
                return

    def _on_decision_msg(self, message: Message) -> None:
        txn_id = message["txn"]
        self.in_doubt.pop(txn_id, None)
        self.on_decision(txn_id, message["commit"])

    def resolve_in_doubt(self, commit: bool = False) -> List[Any]:
        """Operator intervention: settle all in-doubt transactions.

        The paper (Section 2.1): database protocols "may admit, in some
        cases, operator intervention to solve abnormal cases ... a way to
        circumvent blocking".  Returns the transactions resolved.
        """
        stuck = list(self.in_doubt)
        for txn_id in stuck:
            self.in_doubt.pop(txn_id, None)
            self.on_decision(txn_id, commit)
        return stuck

    def blocked_for(self, txn_id: Any) -> Optional[float]:
        """How long ``txn_id`` has been in doubt, or None."""
        since = self.in_doubt.get(txn_id)
        return None if since is None else self.node.sim.now - since

    def __repr__(self) -> str:
        return f"<TwoPhaseParticipant@{self.node.name} in_doubt={len(self.in_doubt)}>"
