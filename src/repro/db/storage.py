"""Versioned key-value storage: the physical copies of logical data items.

Section 4.1 of the paper: "we distinguish a logical data item X and its
physical copies Xi on the different sites".  A :class:`DataStore` holds one
site's physical copies.  Every write bumps the item's version, which the
certification and reconciliation machinery use to detect stale updates;
snapshots provide the *shadow copies* of Sections 5.2 and 5.4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Versioned", "DataStore"]


@dataclass(frozen=True)
class Versioned:
    """A value together with its monotonically increasing version."""

    value: Any
    version: int


class DataStore:
    """One replica's physical copies, with versions and snapshots.

    The store is deliberately simple — a dictionary with version counters —
    because the replication protocols above it only need reads, versioned
    writes, and whole-state digests for convergence checking.
    """

    def __init__(self, site: str = "") -> None:
        self.site = site
        self._items: Dict[str, Versioned] = {}

    # -- basic access ------------------------------------------------------

    def read(self, item: str) -> Any:
        """Value of ``item`` (None if never written)."""
        versioned = self._items.get(item)
        return versioned.value if versioned is not None else None

    def version(self, item: str) -> int:
        """Current version of ``item`` (0 if never written)."""
        versioned = self._items.get(item)
        return versioned.version if versioned is not None else 0

    def read_versioned(self, item: str) -> Versioned:
        return self._items.get(item, Versioned(None, 0))

    def write(self, item: str, value: Any) -> int:
        """Write ``value``, bumping the version; returns the new version."""
        new_version = self.version(item) + 1
        self._items[item] = Versioned(value, new_version)
        return new_version

    def write_versioned(self, item: str, value: Any, version: int) -> None:
        """Install ``value`` at an explicit ``version`` (update propagation).

        Used when applying a primary's updates at a secondary so that both
        sites agree on versions.  Regressions (installing a version lower
        than the current one) are ignored: the caller is replaying an
        already-applied update.
        """
        if version >= self.version(item):
            self._items[item] = Versioned(value, version)

    def delete(self, item: str) -> None:
        self._items.pop(item, None)

    # -- iteration and digests ----------------------------------------------

    def items(self) -> Iterator[Tuple[str, Versioned]]:
        return iter(sorted(self._items.items()))

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: str) -> bool:
        return item in self._items

    def digest(self) -> Tuple[Tuple[str, Any, int], ...]:
        """Canonical representation of the full state, for convergence checks."""
        return tuple(
            (item, versioned.value, versioned.version)
            for item, versioned in sorted(self._items.items())
        )

    def values_digest(self) -> Tuple[Tuple[str, Any], ...]:
        """Like :meth:`digest` but ignoring versions (lazy protocols may
        converge on values while version counters differ per site)."""
        return tuple(
            (item, versioned.value) for item, versioned in sorted(self._items.items())
        )

    # -- snapshots (shadow copies) ----------------------------------------------

    def snapshot(self) -> Dict[str, Versioned]:
        """A frozen copy of the full state."""
        return dict(self._items)

    def restore(self, snapshot: Dict[str, Versioned]) -> None:
        """Reset the store to a previously taken snapshot."""
        self._items = dict(snapshot)

    def dump(self) -> Dict[str, Any]:
        """Plain ``item -> value`` view (for examples and debugging)."""
        return {item: versioned.value for item, versioned in sorted(self._items.items())}

    def __repr__(self) -> str:
        return f"<DataStore {self.site} items={len(self._items)}>"
