"""Lock manager: strict two-phase locking with deadlock handling.

Implements the concurrency-control substrate the paper's database
protocols assume ("Isolation is provided by concurrency control mechanisms
such as locking protocols [BHG87]"):

* shared (read) and exclusive (write) locks with FIFO wait queues,
* lock upgrades (read -> write) for the sole holder,
* local deadlock detection on the wait-for graph, aborting the youngest
  transaction in the cycle,
* optional lock-wait timeouts — the classical resolution for *distributed*
  deadlocks in eager update-everywhere replication, where no site sees the
  global wait-for graph (Section 4.4.1).

Locks are acquired through futures so simulated processes block in
simulated time: ``yield lock_manager.acquire(txn, item, "w")``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TransactionAborted
from ..sim import Future, Simulator

__all__ = ["LockManager", "READ", "WRITE"]

READ = "r"
WRITE = "w"


class _Request:
    __slots__ = ("txn", "mode", "future", "timer", "span", "wait_start")

    def __init__(self, txn, mode: str, future: Future, timer=None) -> None:
        self.txn = txn
        self.mode = mode
        self.future = future
        self.timer = timer
        self.span = None          # observability: open lock-wait span
        self.wait_start = 0.0


class LockManager:
    """One site's lock table.

    Transactions are identified by hashable ids.  The manager records the
    arrival order of transactions and uses it as age for deadlock victim
    selection (youngest dies), the standard policy that avoids starving
    long-running transactions.
    """

    def __init__(self, sim: Simulator, name: str = "", obs=None) -> None:
        self.sim = sim
        self.name = name
        self.obs = obs  # optional duck-typed observer (repro.obs)
        self._holders: Dict[str, Dict[object, str]] = {}
        self._queues: Dict[str, List[_Request]] = {}
        self._held_by_txn: Dict[object, Set[str]] = {}
        self._ages: Dict[object, int] = {}
        self._grant_times: Dict[Tuple[object, str], float] = {}
        self._arrivals = itertools.count(1)
        self.deadlocks_detected = 0
        self.timeouts = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(
        self, txn: object, item: str, mode: str, timeout: Optional[float] = None
    ) -> Future:
        """Request a lock; the returned future resolves when granted.

        Fails with :class:`TransactionAborted` if the request is chosen as
        a deadlock victim or ``timeout`` expires first.
        """
        if mode not in (READ, WRITE):
            raise ValueError(f"unknown lock mode {mode!r}")
        if self.obs is not None:
            # Record the request itself (not just contention) so recorded
            # traffic can be cross-validated against the static wait graph.
            hook = getattr(self.obs, "on_lock_acquire", None)
            if hook is not None:
                hook(self.name, txn, item, mode)
        self._ages.setdefault(txn, next(self._arrivals))
        future = self.sim.future(label=f"lock:{item}:{mode}:{txn}")
        if self._can_grant(txn, item, mode):
            self._grant(txn, item, mode)
            if self.obs is not None:
                self.obs.on_lock_granted(None, 0.0)
            future.set_result(True)
            return future
        request = _Request(txn, mode, future)
        if self.obs is not None:
            request.span = self.obs.on_lock_wait(self.name, txn, item, mode)
            request.wait_start = self.sim.now
        if timeout is not None:
            request.timer = self.sim.schedule(timeout, self._expire, item, request)
        self._queues.setdefault(item, []).append(request)
        self._detect_deadlock(item, txn)
        return future

    def _can_grant(self, txn: object, item: str, mode: str) -> bool:
        holders = self._holders.get(item, {})
        queue = self._queues.get(item, [])
        held = holders.get(txn)
        if held == WRITE or held == mode:
            return True  # re-entrant / already sufficient
        if held == READ and mode == WRITE:
            # Upgrade: only if sole holder (queue state is irrelevant —
            # upgrades jump the queue to avoid trivial upgrade deadlock).
            return len(holders) == 1
        others = {t: m for t, m in holders.items() if t != txn}
        if mode == READ:
            # Fairness: readers must not overtake queued writers.
            writer_queued = any(r.mode == WRITE for r in queue)
            return not writer_queued and all(m == READ for m in others.values())
        return not others

    def _grant(self, txn: object, item: str, mode: str) -> None:
        holders = self._holders.setdefault(item, {})
        current = holders.get(txn)
        holders[txn] = WRITE if WRITE in (current, mode) else READ
        self._held_by_txn.setdefault(txn, set()).add(item)
        if self.obs is not None:
            self._grant_times.setdefault((txn, item), self.sim.now)

    # -- release -----------------------------------------------------------------

    def release_all(self, txn: object) -> None:
        """Release every lock held or requested by ``txn`` (strict 2PL)."""
        for item in self._held_by_txn.pop(txn, set()):
            holders = self._holders.get(item, {})
            holders.pop(txn, None)
            if not holders:
                self._holders.pop(item, None)
            if self.obs is not None:
                granted_at = self._grant_times.pop((txn, item), None)
                if granted_at is not None:
                    self.obs.on_lock_released(self.sim.now - granted_at)
            self._wake(item)
        # Remove any still-queued requests (aborted while waiting).
        for item, queue in list(self._queues.items()):
            kept = [r for r in queue if r.txn != txn]
            removed = [r for r in queue if r.txn is txn or r.txn == txn]
            for request in removed:
                self._cancel_request(request)
            if kept:
                self._queues[item] = kept
            else:
                self._queues.pop(item, None)
            if removed:
                self._wake(item)
        self._ages.pop(txn, None)

    def _cancel_request(self, request: _Request) -> None:
        if request.timer is not None:
            request.timer.cancel()

    def reset(self) -> None:
        """Drop the entire lock table (host crash: lock state is volatile).

        Releases local *and* remotely-granted locks — without this, a
        write lock granted to another site's transaction would survive a
        crash/recovery cycle and, the granting delegate's abort having
        been dropped while this host was down, wedge the item forever.
        Queued waiters are cancelled without resolution: the processes
        waiting on them died with the host.
        """
        for queue in self._queues.values():
            for request in queue:
                self._cancel_request(request)
        self._queues.clear()
        self._holders.clear()
        self._held_by_txn.clear()
        self._ages.clear()
        self._grant_times.clear()

    def _wake(self, item: str) -> None:
        queue = self._queues.get(item)
        if not queue:
            return
        granted = True
        while granted and queue:
            head = queue[0]
            if head.future.done:
                queue.pop(0)
                continue
            if self._can_grant(head.txn, item, head.mode):
                queue.pop(0)
                self._cancel_request(head)
                self._grant(head.txn, item, head.mode)
                if self.obs is not None:
                    self.obs.on_lock_granted(
                        head.span, self.sim.now - head.wait_start
                    )
                head.future.set_result(True)
            else:
                granted = False
        if not queue:
            self._queues.pop(item, None)

    # -- failure paths -----------------------------------------------------------

    def _expire(self, item: str, request: _Request) -> None:
        queue = self._queues.get(item, [])
        if request not in queue or request.future.done:
            return
        queue.remove(request)
        self.timeouts += 1
        if self.obs is not None:
            self.obs.on_lock_failed(request.span, "timeout")
        request.future.set_exception(
            TransactionAborted(request.txn, "lock wait timeout")
        )
        self._wake(item)

    def _detect_deadlock(self, item: str, txn: object) -> None:
        cycle = self._find_cycle(txn)
        if not cycle:
            return
        victim = max(cycle, key=lambda t: self._ages.get(t, 0))
        self.deadlocks_detected += 1
        if self.obs is not None:
            self.obs.on_deadlock()
        self._abort_waiting(victim)

    def _abort_waiting(self, victim: object) -> None:
        """Fail all of the victim's queued requests with a deadlock abort."""
        for item, queue in list(self._queues.items()):
            remaining = []
            for request in queue:
                if request.txn == victim and not request.future.done:
                    self._cancel_request(request)
                    if self.obs is not None:
                        self.obs.on_lock_failed(request.span, "deadlock")
                    request.future.set_exception(
                        TransactionAborted(victim, "deadlock victim")
                    )
                else:
                    remaining.append(request)
            if remaining:
                self._queues[item] = remaining
            else:
                self._queues.pop(item, None)
            self._wake(item)

    def _find_cycle(self, start: object) -> Optional[List[object]]:
        """DFS over the wait-for graph; returns a cycle containing start."""
        graph = self._wait_for_graph()
        path: List[object] = []
        on_path: Set[object] = set()
        visited: Set[object] = set()

        def dfs(txn: object) -> Optional[List[object]]:
            visited.add(txn)
            path.append(txn)
            on_path.add(txn)
            for waited_on in graph.get(txn, ()):  # noqa: B007
                if waited_on in on_path:
                    return path[path.index(waited_on):]
                if waited_on not in visited:
                    cycle = dfs(waited_on)
                    if cycle is not None:
                        return cycle
            path.pop()
            on_path.discard(txn)
            return None

        return dfs(start)

    def _wait_for_graph(self) -> Dict[object, Set[object]]:
        graph: Dict[object, Set[object]] = {}
        for item, queue in self._queues.items():
            holders = self._holders.get(item, {})
            ahead: List[_Request] = []
            for request in queue:
                edges = graph.setdefault(request.txn, set())
                for holder, mode in holders.items():
                    if holder != request.txn and (
                        request.mode == WRITE or mode == WRITE
                    ):
                        edges.add(holder)
                for earlier in ahead:
                    if earlier.txn != request.txn and (
                        request.mode == WRITE or earlier.mode == WRITE
                    ):
                        edges.add(earlier.txn)
                ahead.append(request)
        return graph

    # -- introspection ----------------------------------------------------------

    def holders_of(self, item: str) -> Dict[object, str]:
        return dict(self._holders.get(item, {}))

    def holds(self, txn: object, item: str, mode: str) -> bool:
        held = self._holders.get(item, {}).get(txn)
        return held == WRITE or held == mode

    def holding_transactions(self) -> Set[object]:
        """All transactions currently holding at least one lock."""
        txns: Set[object] = set()
        for holders in self._holders.values():
            txns.update(holders)
        return txns

    def waiting_count(self, item: Optional[str] = None) -> int:
        if item is not None:
            return len(self._queues.get(item, []))
        return sum(len(q) for q in self._queues.values())

    def __repr__(self) -> str:
        return (
            f"<LockManager {self.name} locked_items={len(self._holders)} "
            f"waiting={self.waiting_count()}>"
        )
