"""Certification test for optimistic (ABCAST-based) replication.

Section 5.4.2: transactions execute locally on shadow copies; the writeset
and readset are then atomically broadcast, and every site runs the same
deterministic *certification* — "deciding whether the operations can be
executed correctly ... in the order specified by the total order
established by ABCAST".

The test implemented here is backward validation against the store state
produced by all previously certified transactions:

* a transaction passes iff every item it *read* still has the version it
  read (no certified transaction wrote it in between);
* because every site certifies the same transactions in the same total
  order against identically evolving state, the accept/abort outcome is
  identical everywhere with no extra communication — the reason this
  technique has an empty AC phase in Figure 16.

``mode="write"`` gives the weaker write-write test (first-committer-wins,
snapshot-isolation style) used as an ablation in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .log import TransactionUpdates, UpdateRecord
from .storage import DataStore

__all__ = ["CertificationOutcome", "Certifier"]


class CertificationOutcome:
    """Result of certifying one transaction."""

    __slots__ = ("committed", "conflicts")

    def __init__(self, committed: bool, conflicts: List[str]) -> None:
        self.committed = committed
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.committed

    def __repr__(self) -> str:
        verdict = "commit" if self.committed else f"abort{self.conflicts}"
        return f"<CertificationOutcome {verdict}>"


class Certifier:
    """Deterministic certification against a site's store.

    Feed it the totally ordered stream of (readset, writeset) pairs via
    :meth:`certify`; it applies the writesets of transactions that pass, so
    its store mirrors the certified prefix of the total order.
    """

    def __init__(self, store: DataStore, mode: str = "read") -> None:
        if mode not in ("read", "write"):
            raise ValueError(f"unknown certification mode {mode!r}")
        self.store = store
        self.mode = mode
        self.certified = 0
        self.rejected = 0

    def certify(
        self,
        readset: Dict[str, int],
        writeset: Iterable[UpdateRecord],
        base_versions: Optional[Dict[str, int]] = None,
    ) -> CertificationOutcome:
        """Validate one transaction and, if valid, apply its writes.

        ``readset`` maps items to the version the transaction read.
        ``base_versions`` (for ``mode="write"``) maps written items to the
        version on which the write was computed.
        """
        conflicts = []
        if self.mode == "read":
            for item, version_read in readset.items():
                if self.store.version(item) != version_read:
                    conflicts.append(item)
        else:
            for record in writeset:
                base = (base_versions or {}).get(record.item, record.version - 1)
                if self.store.version(record.item) != base:
                    conflicts.append(record.item)
        if conflicts:
            self.rejected += 1
            return CertificationOutcome(False, conflicts)
        for record in writeset:
            # Versions are re-assigned in certification order so that all
            # sites converge on identical version counters.
            self.store.write(record.item, record.value)
        self.certified += 1
        return CertificationOutcome(True, [])

    @property
    def abort_rate(self) -> float:
        total = self.certified + self.rejected
        return self.rejected / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<Certifier mode={self.mode} certified={self.certified} "
            f"rejected={self.rejected}>"
        )
