"""repro — an executable reproduction of Wiesmann et al.,
"Understanding Replication in Databases and Distributed Systems"
(ICDCS 2000).

The library builds, from scratch, every replication technique the paper
surveys — active, passive, semi-active and semi-passive replication from
the distributed-systems community; eager/lazy x primary-copy/
update-everywhere (distributed locking, atomic broadcast and
certification variants) from the database community — on top of fully
implemented substrates: a deterministic discrete-event simulator, a
lossy/partitionable network, heartbeat failure detection, a group
communication stack (reliable/FIFO/causal broadcast, Chandra-Toueg
consensus, atomic broadcast, view synchrony) and a transactional storage
engine (strict 2PL, WAL, 2PC, certification, reconciliation).

Quickstart::

    from repro import ReplicatedSystem, Operation

    system = ReplicatedSystem("passive", replicas=3, seed=42)
    result = system.execute([Operation.update("balance", "add", 100)])
    assert result.committed

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-figure reproduction index.
"""

from .core import (
    AC,
    DB_TECHNIQUES,
    DS_TECHNIQUES,
    END,
    EX,
    RE,
    REGISTRY,
    SC,
    Operation,
    PhaseDescriptor,
    PhaseStep,
    PhaseTracer,
    ReplicatedSystem,
    Request,
    Result,
)
from .errors import (
    ConsistencyViolation,
    NetworkError,
    NodeCrashed,
    ReplicationError,
    ReproError,
    SimulationError,
    TransactionAborted,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReplicatedSystem",
    "Operation",
    "Request",
    "Result",
    "Simulator",
    "REGISTRY",
    "DS_TECHNIQUES",
    "DB_TECHNIQUES",
    "RE",
    "SC",
    "EX",
    "AC",
    "END",
    "PhaseStep",
    "PhaseDescriptor",
    "PhaseTracer",
    "ReproError",
    "SimulationError",
    "NodeCrashed",
    "NetworkError",
    "TransactionAborted",
    "ReplicationError",
    "ConsistencyViolation",
]
