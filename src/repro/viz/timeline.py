"""ASCII rendering of phase timelines, in the style of the paper's figures.

Each protocol figure in the paper (2-4, 7-14) is a swim-lane diagram:
client and replicas as horizontal lanes, phases as labelled spans.  This
module renders the same picture from a recorded :class:`PhaseTracer`
trace, so the benchmark for figure N literally prints figure N as
observed in execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import TraceLog

__all__ = ["render_phase_timeline", "render_figure"]


def render_phase_timeline(
    trace: TraceLog,
    request_id: object,
    lanes: Sequence[str],
    width: int = 72,
) -> str:
    """Swim-lane view of one request's phases across the given lanes."""
    events = [
        event for event in trace.select(category="phase", request=request_id)
        if event.source in lanes
    ]
    if not events:
        return "(no phase events recorded)"
    t0 = min(event.time for event in events)
    t1 = max(event.time for event in events)
    span = max(t1 - t0, 1e-9)
    label_width = max(len(lane) for lane in lanes) + 2
    usable = max(width - label_width, 20)

    def column(time: float) -> int:
        return min(usable - 1, int((time - t0) / span * (usable - 1)))

    lines = []
    header = " " * label_width + f"t={t0:.1f}" + " " * max(usable - 12, 1) + f"t={t1:.1f}"
    lines.append(header)
    for lane in lanes:
        row: List[str] = [" "] * (usable + 16)
        cursor = 0  # next free column, so simultaneous events don't overlap
        for event in events:
            if event.source != lane:
                continue
            col = max(column(event.time), cursor)
            tag = event.data["phase"]
            for offset, char in enumerate(tag):
                if col + offset < len(row):
                    row[col + offset] = char
            cursor = col + len(tag) + 1
        lines.append(lane.ljust(label_width) + "".join(row).rstrip())
    mechanisms = {
        event.data["phase"]: event.data.get("mechanism", "")
        for event in events
        if event.data.get("mechanism")
    }
    if mechanisms:
        legend = ", ".join(f"{phase}={mech}" for phase, mech in sorted(mechanisms.items()))
        lines.append(f"{'':{label_width}}[{legend}]")
    return "\n".join(lines)


def render_figure(
    title: str,
    descriptor_line: str,
    timeline: str,
    notes: Optional[List[str]] = None,
) -> str:
    """Compose a full paper-figure reproduction block for printing."""
    bar = "=" * max(len(title), 40)
    parts = [bar, title, bar, f"declared: {descriptor_line}", "", timeline]
    for note in notes or []:
        parts.append(f"  note: {note}")
    return "\n".join(parts)
