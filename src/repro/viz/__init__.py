"""Text renderings of the paper's figures from live traces."""

from .timeline import render_figure, render_phase_timeline

__all__ = ["render_phase_timeline", "render_figure"]
