"""The paper's contribution: the five-phase functional model, the
replication technique suite, and the derived classifications."""

from .admission import AdmissionConfig, AdmissionController
from .operations import Operation, Request, Result
from .phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep, PhaseTracer
from .protocols import DB_TECHNIQUES, DS_TECHNIQUES, REGISTRY
from .system import ClientNode, Directory, ReplicaNode, ReplicatedSystem

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Operation",
    "Request",
    "Result",
    "RE",
    "SC",
    "EX",
    "AC",
    "END",
    "PhaseStep",
    "PhaseDescriptor",
    "PhaseTracer",
    "REGISTRY",
    "DS_TECHNIQUES",
    "DB_TECHNIQUES",
    "ReplicatedSystem",
    "ReplicaNode",
    "ClientNode",
    "Directory",
]
