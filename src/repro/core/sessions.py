"""Interactive transaction sessions (Section 5's full transaction model).

Section 5 drops the stored-procedure simplification: a transaction is "a
partial order of read and write operations which are not necessarily
available for processing at the same time".  A :class:`TransactionSession`
is exactly that — the client opens a transaction at a server and issues
operations one at a time (with arbitrary client-side work in between),
then commits:

>>> session = system.session()          # doctest: +SKIP
>>> def work():
...     yield session.begin()
...     balance = yield session.read("balance")
...     # ... client-side thinking ...
...     yield session.update("balance", "add", -50)
...     committed = yield session.commit()

The per-operation Server Coordination / Execution loops of Figures 12 and
13 run *while the client is still deciding what to do next* — which is
the whole point of the Section 5 model.  Supported by the protocols whose
figures show the loop: ``eager_primary`` and ``eager_ue_locking``.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..errors import TransactionAborted
from ..sim import Future

__all__ = ["TransactionSession"]

BEGIN = "session.begin"
OP = "session.op"
COMMIT = "session.commit"
ABORT = "session.abort"


class TransactionSession:
    """Client handle for one interactive transaction.

    All methods return futures; use from a simulated process with
    ``yield``.  After an operation fails (deadlock, lock timeout) the
    session is dead: ``commit`` resolves False and further operations
    fail with :class:`TransactionAborted`.
    """

    def __init__(self, client, server: str, timeout: float = 300.0) -> None:
        self.client = client
        self.server = server
        self.timeout = timeout
        # The id counter lives on the client, not the module: ids restart
        # at 1 for every fresh system, keeping same-seed runs identical.
        counter = getattr(client, "_session_ids", None)
        if counter is None:
            counter = itertools.count(1)
            client._session_ids = counter
        self.session_id = f"{client.name}-s{next(counter)}"
        self.active = False
        self.failed_reason: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> Future:
        """Open the transaction at the server."""
        future = self.client.system.sim.future(label=f"{self.session_id}:begin")
        call = self.client.node.call(
            self.server, BEGIN, timeout=self.timeout, session=self.session_id
        )
        def on_reply(reply_future):
            if reply_future.exception is not None:
                self._fail(future, str(reply_future.exception))
                return
            reply = reply_future.result
            if reply["ok"]:
                self.active = True
                future.set_result(True)
            else:
                self._fail(future, reply["reason"])
        call.add_callback(on_reply)
        return future

    def read(self, item: str) -> Future:
        return self._operation("read", item, None, "set")

    def write(self, item: str, value: Any) -> Future:
        return self._operation("write", item, value, "set")

    def update(self, item: str, func: str, argument: Any = None) -> Future:
        return self._operation("update", item, argument, func)

    def commit(self) -> Future:
        """Close the transaction; resolves with the commit verdict."""
        future = self.client.system.sim.future(label=f"{self.session_id}:commit")
        if not self.active:
            future.set_result(False)
            return future
        call = self.client.node.call(
            self.server, COMMIT, timeout=self.timeout, session=self.session_id
        )
        def on_reply(reply_future):
            self.active = False
            if reply_future.exception is not None:
                self.failed_reason = str(reply_future.exception)
                future.set_result(False)
            else:
                future.set_result(bool(reply_future.result["committed"]))
        call.add_callback(on_reply)
        return future

    def abort(self) -> Future:
        """Roll the transaction back at the server."""
        future = self.client.system.sim.future(label=f"{self.session_id}:abort")
        if not self.active:
            future.set_result(True)
            return future
        self.active = False
        self.failed_reason = "client abort"
        call = self.client.node.call(
            self.server, ABORT, timeout=self.timeout, session=self.session_id
        )
        call.add_callback(lambda _f: future.try_set_result(True))
        return future

    # -- internals -------------------------------------------------------------

    def _operation(self, kind: str, item: str, argument: Any, func: str) -> Future:
        future = self.client.system.sim.future(
            label=f"{self.session_id}:{kind}:{item}"
        )
        if not self.active:
            future.set_exception(
                TransactionAborted(self.session_id,
                                   self.failed_reason or "session not begun")
            )
            return future
        call = self.client.node.call(
            self.server, OP, timeout=self.timeout,
            session=self.session_id, kind=kind, item=item,
            argument=argument, func=func,
        )
        def on_reply(reply_future):
            if reply_future.exception is not None:
                self._fail(future, str(reply_future.exception))
                return
            reply = reply_future.result
            if reply["ok"]:
                future.set_result(reply["value"])
            else:
                self._fail(future, reply["reason"])
        call.add_callback(on_reply)
        return future

    def _fail(self, future: Future, reason: str) -> None:
        self.active = False
        self.failed_reason = reason
        future.set_exception(TransactionAborted(self.session_id, reason))

    def __repr__(self) -> str:
        state = "active" if self.active else (self.failed_reason or "closed")
        return f"<TransactionSession {self.session_id}@{self.server} {state}>"
