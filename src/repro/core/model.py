"""The abstract replication protocol of Figure 1.

Section 2.2 introduces replication through a protocol that is pure
structure: a client submits an operation, the servers coordinate, execute,
coordinate again, and respond.  This module makes that abstraction
runnable — :class:`AbstractReplicationProtocol` walks the five phases over
a real simulated network with pluggable per-phase behaviour, and is what
the Figure 1 benchmark executes and renders.

It is also the reference implementation the concrete techniques are
measured against: each of them is this walk with phases merged, reordered,
skipped or looped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net import ConstantLatency, Network, Node
from ..sim import Simulator, TraceLog
from .phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep, PhaseTracer

__all__ = ["AbstractReplicationProtocol", "GENERIC_DESCRIPTOR"]

# Bound on each SC/AC coordination round-trip.  The walk runs over a
# ConstantLatency(1.0) network, so a healthy round completes in ~2 time
# units; a peer that takes 30 has crashed under the crash-stop model and
# waiting longer cannot help (Section 2.2 assumes fail-stop servers).
COORDINATION_TIMEOUT = 30.0

GENERIC_DESCRIPTOR = PhaseDescriptor(
    technique="functional_model",
    steps=(
        PhaseStep(RE),
        PhaseStep(SC),
        PhaseStep(EX),
        PhaseStep(AC),
        PhaseStep(END),
    ),
)


class AbstractReplicationProtocol:
    """An executable rendering of the paper's five-phase functional model.

    Builds one client and ``replicas`` server nodes, then runs the generic
    protocol for a single update:

    1. **RE** — the client sends the operation to replica 1.
    2. **SC** — replica 1 exchanges a coordination round with the others.
    3. **EX** — every replica executes (applies the update locally).
    4. **AC** — a second coordination round (everyone acknowledges).
    5. **END** — replica 1 responds to the client.

    The per-phase hooks let experiments skip or merge phases to produce
    each derived shape of Figure 15.
    """

    def __init__(
        self,
        replicas: int = 3,
        seed: int = 0,
        skip_phases: Optional[List[str]] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(self.sim)
        self.tracer = PhaseTracer(self.trace)
        self.network = Network(self.sim, latency=ConstantLatency(1.0))
        self.skip = set(skip_phases or [])
        self.client = Node(self.sim, self.network, "client")
        self.replicas = [
            Node(self.sim, self.network, f"replica{i + 1}") for i in range(replicas)
        ]
        self.state: Dict[str, Dict[str, object]] = {
            node.name: {} for node in self.replicas
        }
        self._wire()

    def _wire(self) -> None:
        self.client.on("response", self._on_response)
        for node in self.replicas:
            node.on("request", self._make_handler(node))
            node.on("coordinate", self._make_coordinate_handler(node))
        self._response_future = None
        # Duplicate-reply cache for the abstract walk: request ids that
        # already completed the five phases.  A retried request is answered
        # with a fresh END response instead of a second RE..AC walk, the
        # same exactly-once contract the concrete techniques implement.
        self._responded: set = set()

    # -- the walk ---------------------------------------------------------

    def run_update(self, item: str, value: object, request_id: str = "req-1") -> float:
        """Execute one five-phase update; returns the client latency."""
        self._response_future = self.sim.future(label="client-response")
        start = self.sim.now
        self.tracer.record("client", request_id, RE)
        self.client.send(
            self.replicas[0].name, "request",
            request_id=request_id, item=item, value=value,
        )
        self.sim.run_until_done(self._response_future)
        return self.sim.now - start

    def _make_handler(self, node: Node) -> Callable:
        def handle(message) -> None:
            if message["request_id"] in self._responded:
                node.send("client", "response", request_id=message["request_id"])
                return
            node.spawn(self._serve(node, message), name=f"{node.name}-serve")
        return handle

    def _serve(self, node: Node, message):
        request_id = message["request_id"]
        item, value = message["item"], message["value"]
        contact = node.name
        others = [n.name for n in self.replicas if n.name != contact]
        self.tracer.record(contact, request_id, RE)
        # Phase 2: server coordination (one round-trip to every replica).
        if SC not in self.skip:
            self.tracer.record(contact, request_id, SC)
            yield self.sim.all_of(
                [node.call(peer, "coordinate", phase=SC, request_id=request_id,
                           item=item, value=value,
                           timeout=COORDINATION_TIMEOUT) for peer in others]
            )
        # Phase 3: execution at every replica (coordination shipped state).
        self.tracer.record(contact, request_id, EX)
        self.state[contact][item] = value
        if SC in self.skip:
            # Without prior coordination the contact must ship the
            # operation now so the others can execute/apply it.
            for peer in others:
                node.send(peer, "coordinate", phase=EX, request_id=request_id,
                          item=item, value=value)
        # Phase 4: agreement coordination (second round-trip).
        if AC not in self.skip:
            self.tracer.record(contact, request_id, AC)
            yield self.sim.all_of(
                [node.call(peer, "coordinate", phase=AC, request_id=request_id,
                           item=item, value=value,
                           timeout=COORDINATION_TIMEOUT) for peer in others]
            )
        # Phase 5: response.
        self.tracer.record(contact, request_id, END)
        self._responded.add(request_id)
        node.send("client", "response", request_id=request_id)

    def _make_coordinate_handler(self, node: Node) -> Callable:
        def handle(message) -> None:
            phase = message["phase"]
            self.tracer.record(node.name, message["request_id"], phase)
            if phase in (SC, EX):
                self.state[node.name][message["item"]] = message["value"]
            node.reply(message, ack=True)
        return handle

    def _on_response(self, message) -> None:
        self.tracer.record("client", message["request_id"], END)
        if self._response_future is not None and not self._response_future.done:
            self._response_future.set_result(message["request_id"])

    # -- observation --------------------------------------------------------

    def consistent(self) -> bool:
        states = {tuple(sorted(s.items())) for s in self.state.values()}
        return len(states) == 1

    def contact_sequence(self, request_id: str = "req-1") -> List[str]:
        return self.tracer.observed_sequence(request_id, source=self.replicas[0].name)
