"""System builder: wire replicas, clients and a protocol into a simulation.

:class:`ReplicatedSystem` is the library's main entry point.  It builds the
substrate stack (simulator, network, failure detectors, transaction
managers), instantiates the chosen replication technique on every replica,
and hands out uniform clients — so the same workload can be swept across
all of the paper's techniques, which is exactly what the Section 6
performance-study benchmarks do.

>>> from repro import ReplicatedSystem, Operation
>>> system = ReplicatedSystem("active", replicas=3, seed=7)
>>> result = system.execute([Operation.write("x", 1)])
>>> result.committed
True
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..db import TransactionManager
from ..errors import ReplicationError
from ..failures import FailureDetector, FailureInjector
from ..groupcomm import ReliableTransport
from ..net import ConstantLatency, LatencyModel, Message, Network, Node
from ..obs import Observer
from ..sim import Future, Simulator, TraceLog
from .admission import AdmissionConfig, AdmissionController
from .operations import Operation, Request, Result
from .phases import PhaseTracer, RE
from .protocols import REGISTRY
from .protocols.base import CLIENT_REQUEST, CLIENT_RESPONSE, ProtocolInfo
from .sessions import TransactionSession

__all__ = ["Directory", "ReplicaNode", "ClientNode", "ReplicatedSystem"]


class Directory:
    """Naming service: which replicas exist and which is the primary.

    The paper assumes clients can locate the (current) primary — after a
    failover "a human operator can reconfigure the system" (Section 4.3
    footnote) or the group membership does it (Section 3.3).  Both paths
    end up updating this directory.
    """

    def __init__(self, members: List[str]) -> None:
        self.members = list(members)
        self.primary = members[0]
        self.changes = 0

    def set_primary(self, name: str) -> None:
        if name not in self.members:
            raise ReplicationError(f"{name} is not a group member")
        if name != self.primary:
            self.primary = name
            self.changes += 1

    def __repr__(self) -> str:
        return f"<Directory primary={self.primary} members={self.members}>"


class _HostNode(Node):
    """Network node that forwards crash/recover events to its owner."""

    def __init__(self, sim, network, name, owner) -> None:
        self._owner = owner
        super().__init__(sim, network, name)

    def on_crash(self) -> None:
        self._owner._host_crashed()

    def on_recover(self) -> None:
        self._owner._host_recovered()


class ReplicaNode:
    """One replica: node + transaction manager + groupcomm endpoints.

    The protocol instance lives in ``self.protocol`` and registers its
    message handlers against ``self.node``.
    """

    def __init__(
        self,
        system: "ReplicatedSystem",
        name: str,
        fd_interval: float,
        fd_timeout: float,
        lock_timeout: Optional[float],
    ) -> None:
        self.system = system
        self.name = name
        self.node = _HostNode(system.sim, system.net, name, self)
        self.tm = TransactionManager(
            system.sim, site=name, lock_timeout=lock_timeout, obs=system.observer
        )
        self.transport = ReliableTransport(self.node)
        self.detector = FailureDetector(
            self.node,
            system.replica_names,
            interval=fd_interval,
            timeout=fd_timeout,
            trace=system.trace,
        )
        # Per-replica RNG: non-deterministic operations draw from it, so
        # two replicas executing the same request can legitimately diverge
        # (the scenario motivating passive/semi-active replication).
        # crc32, not hash(): str hashing is salted per process, which would
        # give two invocations of the same seed different replica streams.
        self.rng = random.Random(
            (system.seed or 0) * 10007 + zlib.crc32(name.encode("utf-8")) % 99991
        )
        self.tracer = system.tracer
        self.protocol = None  # set by ReplicatedSystem
        # Duplicate-reply cache: idempotency key -> values of the committed
        # reply.  A retried request whose key is here is answered from the
        # cache instead of re-executed, which is what makes client retries
        # exactly-once (aborts are not cached: retrying them should rerun).
        # Survives crashes deliberately — it models durable server state,
        # like the applied-transaction log a recovering replica replays.
        self.reply_cache: Dict[str, List[Any]] = {}

    def remember_reply(self, idem_key: str, values: List[Any]) -> None:
        """Record the committed reply for ``idem_key`` (first write wins)."""
        if idem_key not in self.reply_cache:
            self.reply_cache[idem_key] = list(values)

    def cached_reply(self, idem_key: str) -> Optional[List[Any]]:
        """The committed values previously replied for ``idem_key``, if any."""
        return self.reply_cache.get(idem_key)

    @property
    def crashed(self) -> bool:
        return self.node.crashed

    def _host_crashed(self) -> None:
        if self.system.observer is not None:
            # Close this host's open phase spans as errors before the
            # teardown below makes the work they narrate unreachable.
            self.system.observer.on_node_crash(self.name)
        self.tm.abort_all_active("node crashed")
        # The lock table is volatile: locks granted to *remote*
        # transactions (not covered by abort_all_active) must not survive
        # a restart, or a dropped abort decision wedges them forever.
        self.tm.locks.reset()
        if self.protocol is not None:
            # The in-flight request journal is volatile state: whatever was
            # executing died with the node, so retries must be re-admitted.
            self.protocol._serving.clear()
            self.protocol.on_crash()

    def _host_recovered(self) -> None:
        if self.protocol is not None:
            self.protocol.on_recover()

    def __repr__(self) -> str:
        return f"<ReplicaNode {self.name} {'crashed' if self.crashed else 'up'}>"


class ClientNode:
    """A client of the replicated service.

    ``submit`` returns a future resolving to a :class:`Result`.  Routing
    follows the protocol's client policy:

    * ``"all"`` — send to every replica, keep the first response (the
      distributed-systems style; masks replica failures entirely).
    * ``"primary"`` — send to the directory's current primary; on timeout,
      re-resolve and retry (the database hot-standby style; failures are
      visible as latency).
    * ``"local"`` — stick to one home replica; on timeout, reconnect to the
      next live replica and re-submit, as Section 4.1 describes.
    """

    def __init__(
        self,
        system: "ReplicatedSystem",
        name: str,
        policy: str,
        home: str,
        timeout: Optional[float],
    ) -> None:
        self.system = system
        self.name = name
        self.policy = policy
        self.home = home
        self.timeout = timeout
        self.node = Node(system.sim, system.net, name)
        self.node.on(CLIENT_RESPONSE, self._on_response)
        self._pending: Dict[str, dict] = {}
        self._sequence = itertools.count(1)
        self.results: List[Result] = []

    # -- public API -----------------------------------------------------------

    def submit(
        self,
        operations: Union[Operation, Iterable[Operation]],
        deadline: Optional[float] = None,
    ) -> Future:
        """Submit a request; returns a future resolving to a Result.

        ``deadline`` is an absolute simulated time after which the caller
        no longer wants the answer; it rides the message envelope so
        replicas can shed expired work, and the system's admission
        controller (when configured) refuses arrivals already past it.
        """
        if isinstance(operations, Operation):
            operations = [operations]
        request = Request.make(
            tuple(operations), client=self.name, sequence=next(self._sequence)
        )
        future = self.system.sim.future(label=f"result:{request.request_id}")
        entry = {
            "request": request,
            "future": future,
            "submitted_at": self.system.sim.now,
            "retries": 0,
            "timer": None,
            "deadline": deadline,
        }
        self._pending[request.request_id] = entry
        if self.system.observer is not None:
            self.system.observer.on_request_submit(request.request_id, self.name)
        if self.system.admission is not None:
            self.system.admission.submit(self, entry)
        else:
            self._dispatch(entry)
        return future

    def session(self, server: Optional[str] = None) -> TransactionSession:
        """Open an interactive transaction session (Section 5).

        The server defaults to the technique's natural contact point: the
        current primary for primary-copy techniques, this client's home
        replica otherwise.
        """
        if not self.system.info.supports_sessions:
            raise ReplicationError(
                f"{self.system.protocol_name} does not support interactive "
                "sessions (no per-operation coordination loop)"
            )
        if server is None:
            server = (
                self.system.directory.primary
                if self.policy == "primary"
                else self.home
            )
        return TransactionSession(self, server)

    # -- routing ----------------------------------------------------------------

    def _targets(self, entry: dict) -> List[str]:
        if self.policy == "all":
            return list(self.system.replica_names)
        if self.policy == "primary":
            if entry["request"].read_only and self.system.info.reads_anywhere:
                return [self.home]
            return [self.system.directory.primary]
        return [self.home]

    def _dispatch(self, entry: dict) -> None:
        request = entry["request"]
        targets = self._targets(entry)
        entry["last_targets"] = targets
        deadline = entry.get("deadline")
        observer = self.system.observer
        if observer is not None:
            # Dispatch inside the root span's context so the outgoing
            # client.request flights become its children.
            with observer.request_context(request.request_id):
                self._send_request(targets, request, deadline=deadline)
        else:
            self._send_request(targets, request, deadline=deadline)
        if self.timeout is not None:
            entry["timer"] = self.node.after(self.timeout, self._on_timeout, request.request_id)

    def _send_request(self, targets: List[str], request: Request,
                      deadline: Optional[float] = None) -> None:
        for target in targets:
            if deadline is None:
                self.node.send(target, CLIENT_REQUEST, request=request.as_wire())
            else:
                # Deadlines ride the envelope, not the payload, so replicas
                # can shed expired work without parsing the request.
                self.system.net.send(
                    self.name,
                    target,
                    CLIENT_REQUEST,
                    payload={"request": request.as_wire()},
                    deadline=deadline,
                )

    def _shed(self, entry: dict, reason: str) -> None:
        """Refuse an arrival at the admission edge; resolves its future."""
        self._pending.pop(entry["request"].request_id, None)
        if entry["timer"] is not None:
            entry["timer"].cancel()
        result = self._finish(entry, committed=False, values=[],
                              reason=reason, server="")
        entry["future"].set_result(result)

    def _on_timeout(self, request_id: str) -> None:
        entry = self._pending.get(request_id)
        if entry is None:
            return
        # A client can tell a dead server from a slow one (its connection
        # breaks), so re-submission — which risks executing the request
        # twice — only happens when the contacted server actually failed
        # or a failover moved the primary elsewhere.  A merely slow server
        # (lock queues, blocking 2PC) keeps the client waiting: the
        # blocking behaviour the paper says databases accept.
        if self.policy != "all":
            target = entry.get("last_targets", [None])[0]
            target_alive = (
                target is not None and not self.system.replicas[target].crashed
            )
            current_target = self._targets(entry)[0]
            if target_alive and current_target == target:
                entry["timer"] = self.node.after(
                    self.timeout, self._on_timeout, request_id
                )
                return
        entry["retries"] += 1
        if entry["retries"] > self.system.max_client_retries:
            self._pending.pop(request_id, None)
            result = self._finish(entry, committed=False, values=[],
                                  reason="client gave up", server="")
            entry["future"].set_result(result)
            return
        if self.system.observer is not None:
            self.system.observer.metrics.inc("requests.resubmitted")
        # Reconnect: primaries are re-resolved from the directory; local
        # clients fail over to the next live replica.
        if self.policy == "local" and self.system.replicas[self.home].crashed:
            self.home = self.system.next_live_replica(self.home)
        self._dispatch(entry)

    def _on_response(self, message: Message) -> None:
        entry = self._pending.pop(message["request_id"], None)
        if entry is None:
            return  # duplicate response (e.g. active replication's n replies)
        if entry["timer"] is not None:
            entry["timer"].cancel()
        result = self._finish(
            entry,
            committed=message["committed"],
            values=message["values"],
            reason=message["reason"],
            server=message["server"],
        )
        entry["future"].set_result(result)

    def _finish(self, entry: dict, committed, values, reason, server) -> Result:
        result = Result(
            request_id=entry["request"].request_id,
            committed=committed,
            values=values,
            reason=reason,
            submitted_at=entry["submitted_at"],
            completed_at=self.system.sim.now,
            server=server,
            retries=entry["retries"],
            operations=entry["request"].operations,
        )
        self.results.append(result)
        if self.system.observer is not None:
            self.system.observer.on_request_complete(
                result.request_id, committed, reason=reason, retries=result.retries
            )
        return result

    def __repr__(self) -> str:
        return f"<ClientNode {self.name} policy={self.policy} home={self.home}>"


class ReplicatedSystem:
    """A complete replicated service running one technique.

    Parameters
    ----------
    protocol:
        Registry name: ``"active"``, ``"passive"``, ``"semi_active"``,
        ``"semi_passive"``, ``"eager_primary"``, ``"eager_ue_locking"``,
        ``"eager_ue_abcast"``, ``"lazy_primary"``, ``"lazy_ue"``,
        ``"certification"``.
    replicas, clients:
        How many replica sites and client processes to build.
    seed, latency, loss_rate:
        Simulation determinism and network model.
    fd_interval, fd_timeout:
        Failure-detection aggressiveness.
    client_timeout:
        Client retry timeout; defaults to None for transparent (policy
        ``"all"``) techniques and 120 time units otherwise.
    config:
        Protocol-specific options (documented per protocol class).
    observe:
        When true, build a :class:`~repro.obs.Observer` and thread it
        through the network, phase tracer and transaction managers: every
        client request opens a root span, and message flights, handler
        invocations, phases and lock waits become child spans.  Metrics
        accumulate in ``system.observer.metrics``.  Off by default — an
        unobserved run takes the exact same scheduling decisions.
    trace_max_events:
        Optional ring-buffer bound on the structured trace log (oldest
        events are discarded past the bound); ``None`` keeps everything.
    admission:
        Optional :class:`~repro.core.admission.AdmissionConfig`: gate
        every client submit through token-bucket throttling, a bounded
        leveling queue and deadline shedding (see docs/workloads.md).
        ``None`` (the default) leaves submits ungated.
    """

    def __init__(
        self,
        protocol: str,
        replicas: int = 3,
        clients: int = 1,
        seed: Optional[int] = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        fd_interval: float = 2.0,
        fd_timeout: float = 8.0,
        lock_timeout: Optional[float] = 60.0,
        client_timeout: Optional[float] = None,
        max_client_retries: int = 10,
        config: Optional[dict] = None,
        observe: bool = False,
        trace_max_events: Optional[int] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if protocol not in REGISTRY:
            raise ReplicationError(
                f"unknown protocol {protocol!r}; available: {sorted(REGISTRY)}"
            )
        self.protocol_name = protocol
        self.protocol_cls = REGISTRY[protocol]
        self.info: ProtocolInfo = self.protocol_cls.info
        self.seed = seed
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(self.sim, max_events=trace_max_events)
        self.observer: Optional[Observer] = Observer(self.sim) if observe else None
        if self.observer is not None:
            self.observer.attach(self.trace)
            # Windowed telemetry: sample gauges (breaker states, derived
            # end-of-run values) at every bucket boundary.  The tick hook
            # fires inline from the event loop without scheduling events,
            # so observation stays neutral to the run.
            self.observer.attach_sampler(self.sim)
        self.tracer = PhaseTracer(self.trace, obs=self.observer)
        self.net = Network(
            self.sim,
            latency=latency if latency is not None else ConstantLatency(1.0),
            loss_rate=loss_rate,
            trace=None,
            obs=self.observer,
        )
        self.injector = FailureInjector(self.sim, self.net, trace=self.trace)
        self.replica_names = [f"r{i}" for i in range(replicas)]
        self.directory = Directory(self.replica_names)
        self.max_client_retries = max_client_retries
        self.config = dict(config or {})
        # Admission control at the system edge (open-loop workloads): when
        # absent, submits dispatch directly and nothing changes in the
        # event schedule of existing closed-loop runs.
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self, admission) if admission is not None else None
        )

        self.replicas: Dict[str, ReplicaNode] = {}
        for name in self.replica_names:
            self.replicas[name] = ReplicaNode(
                self, name, fd_interval, fd_timeout, lock_timeout
            )
        for name, replica in self.replicas.items():
            replica.protocol = self.protocol_cls(replica, self.replica_names, self.config)

        if client_timeout is None and self.info.client_policy != "all":
            client_timeout = 120.0
        self.clients: List[ClientNode] = []
        for i in range(clients):
            home = self.replica_names[i % replicas]
            self.clients.append(
                ClientNode(self, f"c{i}", self.info.client_policy, home, client_timeout)
            )

    # -- convenience -----------------------------------------------------------

    def client(self, index: int = 0) -> ClientNode:
        return self.clients[index]

    def submit(
        self, operations: Union[Operation, Iterable[Operation]], client: int = 0
    ) -> Future:
        """Submit through a client; phases begin with the RE record."""
        return self.clients[client].submit(operations)

    def execute(
        self,
        operations: Union[Operation, Iterable[Operation]],
        client: int = 0,
        max_events: int = 10_000_000,
    ) -> Result:
        """Submit and run the simulation until the result is known."""
        future = self.submit(operations, client=client)
        return self.sim.run_until_done(future, max_events=max_events)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def settle(self, extra_time: float = 500.0) -> None:
        """Run past all pending activity (lazy propagation, view changes)."""
        self.sim.run(until=self.sim.now + extra_time)

    # -- replica access -----------------------------------------------------------

    def replica(self, name: str) -> ReplicaNode:
        return self.replicas[name]

    def protocol_at(self, name: str):
        return self.replicas[name].protocol

    def store_of(self, name: str):
        return self.replicas[name].tm.store

    def next_live_replica(self, after: str) -> str:
        names = self.replica_names
        start = (names.index(after) + 1) % len(names) if after in names else 0
        for offset in range(len(names)):
            candidate = names[(start + offset) % len(names)]
            if not self.replicas[candidate].crashed:
                return candidate
        return after

    def live_replicas(self) -> List[str]:
        return [n for n in self.replica_names if not self.replicas[n].crashed]

    # -- convergence oracle ------------------------------------------------------

    def converged(self, values_only: bool = True, live_only: bool = True) -> bool:
        """Do all (live) replicas hold identical data?"""
        names = self.live_replicas() if live_only else self.replica_names
        if not names:
            return True
        digests = {
            name: (
                self.store_of(name).values_digest()
                if values_only
                else self.store_of(name).digest()
            )
            for name in names
        }
        return len(set(digests.values())) == 1

    def divergent_replicas(self) -> Dict[str, tuple]:
        """Per-live-replica value digests (debugging aid)."""
        return {name: self.store_of(name).values_digest() for name in self.live_replicas()}

    def __repr__(self) -> str:
        return (
            f"<ReplicatedSystem {self.protocol_name} replicas={len(self.replicas)} "
            f"clients={len(self.clients)} t={self.sim.now:.1f}>"
        )
