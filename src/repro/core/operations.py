"""Client operations and results.

Section 2.2 first considers "transactions composed of a single operation
... a single read or write operation, a more complex operation with
multiple parameters, or an invocation on a method" (stored procedures);
Section 5 generalises to multi-operation transactions.  Both shapes are
covered here:

* :class:`Operation` — one logical read/write/update.  ``update``
  operations apply a named function to the current value, which is how the
  simulation distinguishes *deterministic* state-machine commands (safe for
  active replication) from *non-deterministic* ones (the reason passive and
  semi-active replication exist).
* :class:`Request` — what a client submits: one or more operations plus an
  id, i.e. a transaction.
* :class:`Result` — what comes back: commit verdict, read values, timing.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Operation", "Request", "Result", "apply_update", "UPDATE_FUNCTIONS"]

# Fallback id source for ad-hoc Request.make() calls (tests, examples).
# Simulation runs must pass an explicit ``sequence`` instead: a module
# counter carries state across runs in the same interpreter, so ids would
# depend on execution history rather than the seed.
_request_counter = itertools.count(1)  # repro: noqa D107


def _set(current: Any, argument: Any, rng: random.Random) -> Any:
    return argument


def _add(current: Any, argument: Any, rng: random.Random) -> Any:
    return (current or 0) + argument


def _append(current: Any, argument: Any, rng: random.Random) -> Any:
    return (list(current) if current else []) + [argument]


def _random_token(current: Any, argument: Any, rng: random.Random) -> Any:
    # Deliberately non-deterministic across replicas: each evaluation draws
    # from the *local* RNG.  Active replication would diverge on this;
    # passive/semi-active replication exist to handle exactly this case.
    return rng.randrange(10**9)


UPDATE_FUNCTIONS: Dict[str, Callable[[Any, Any, random.Random], Any]] = {
    "set": _set,
    "add": _add,
    "append": _append,
    "random_token": _random_token,
}

NON_DETERMINISTIC = {"random_token"}


def apply_update(func: str, current: Any, argument: Any, rng: random.Random) -> Any:
    """Apply the named update function; raises KeyError on unknown names."""
    return UPDATE_FUNCTIONS[func](current, argument, rng)


@dataclass(frozen=True)
class Operation:
    """One logical operation on a data item.

    ``kind`` is ``"read"``, ``"write"`` (blind write of ``argument``) or
    ``"update"`` (apply ``func`` to the current value with ``argument``).
    """

    kind: str
    item: str
    argument: Any = None
    func: str = "set"

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write", "update"):
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind == "update" and self.func not in UPDATE_FUNCTIONS:
            raise ValueError(f"unknown update function {self.func!r}")

    @property
    def is_write(self) -> bool:
        return self.kind != "read"

    @property
    def deterministic(self) -> bool:
        return self.kind != "update" or self.func not in NON_DETERMINISTIC

    @staticmethod
    def read(item: str) -> "Operation":
        return Operation("read", item)

    @staticmethod
    def write(item: str, value: Any) -> "Operation":
        return Operation("write", item, argument=value)

    @staticmethod
    def update(item: str, func: str, argument: Any = None) -> "Operation":
        return Operation("update", item, argument=argument, func=func)

    def as_wire(self) -> list:
        return [self.kind, self.item, self.argument, self.func]

    @staticmethod
    def from_wire(data: list) -> "Operation":
        return Operation(kind=data[0], item=data[1], argument=data[2], func=data[3])


@dataclass(frozen=True)
class Request:
    """A client-submitted transaction: an id plus its operations.

    ``idem_key`` is the request's idempotency key: two submissions that
    share it are *the same logical request*, and a server that already
    answered one must replay its cached reply instead of re-executing
    (see the duplicate-reply cache in :mod:`repro.core.system`).  It
    defaults to the request id, which is what a retrying client resends.
    """

    request_id: str
    operations: Tuple[Operation, ...]
    idem_key: Optional[str] = None

    @staticmethod
    def make(
        operations,
        client: str = "client",
        sequence: Optional[int] = None,
        idem_key: Optional[str] = None,
    ) -> "Request":
        """Build a request with id ``{client}-r{sequence}``.

        Callers owning a per-client counter (see ``core.system.Client``)
        should pass ``sequence`` so ids are deterministic per run; without
        it a process-global fallback counter is used.
        """
        if isinstance(operations, Operation):
            operations = (operations,)
        if sequence is None:
            sequence = next(_request_counter)
        return Request(
            request_id=f"{client}-r{sequence}",
            operations=tuple(operations),
            idem_key=idem_key,
        )

    @property
    def idempotency_key(self) -> str:
        """The effective dedup key (explicit ``idem_key`` or the id)."""
        return self.idem_key if self.idem_key is not None else self.request_id

    @property
    def read_only(self) -> bool:
        return all(not op.is_write for op in self.operations)

    @property
    def deterministic(self) -> bool:
        return all(op.deterministic for op in self.operations)

    def as_wire(self) -> dict:
        wire = {
            "request_id": self.request_id,
            "operations": [op.as_wire() for op in self.operations],
        }
        if self.idem_key is not None:
            wire["idem_key"] = self.idem_key
        return wire

    @staticmethod
    def from_wire(data: dict) -> "Request":
        return Request(
            request_id=data["request_id"],
            operations=tuple(Operation.from_wire(o) for o in data["operations"]),
            idem_key=data.get("idem_key"),
        )


@dataclass
class Result:
    """Outcome of a request as seen by the client."""

    request_id: str
    committed: bool
    values: List[Any] = field(default_factory=list)
    reason: str = ""
    submitted_at: float = 0.0
    completed_at: float = 0.0
    server: str = ""
    retries: int = 0
    operations: Tuple[Operation, ...] = ()

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at

    @property
    def value(self) -> Any:
        """The last read value (convenience for single-read requests)."""
        return self.values[-1] if self.values else None

    def __repr__(self) -> str:
        verdict = "committed" if self.committed else f"aborted({self.reason})"
        return f"<Result {self.request_id} {verdict} latency={self.latency:.2f}>"
