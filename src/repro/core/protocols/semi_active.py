"""Semi-active replication (Section 3.4, Figure 4).

The intermediate point between active and passive: requests are ordered
and executed everywhere (like active replication), but "each time replicas
have to make a non-deterministic decision, a process, called the leader,
makes the choice and sends it to the followers" — so determinism is *not*
required (Figure 5 places semi-active in the transparent/no-determinism
quadrant).

Mechanics:

* RE+SC: requests reach all replicas and are ordered by ABCAST, exactly as
  in active replication.
* EX: each replica runs a serial executor applying requests in delivery
  order.  Deterministic operations execute locally everywhere.
* AC: at every non-deterministic point (operations whose update function is
  in ``NON_DETERMINISTIC``, e.g. ``random_token``), the leader — the first
  member of the current group view — evaluates the choice and VSCASTs it;
  followers block their executor until the choice arrives.  "Phases EX and
  AC are repeated for each non deterministic choice."
* END: all replicas respond; the client keeps the first answer.

Leader failover: if the leader crashes mid-request, the view change
promotes the next member; on installing the new view the new leader
re-examines its executor and publishes the choice the group is blocked on
(view synchrony guarantees followers either all saw the old leader's
choice or none did, so the decision point is unambiguous).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ...db import TransactionUpdates, UpdateRecord
from ...groupcomm import ConsensusAtomicBroadcast, SequencerAtomicBroadcast, View, ViewSyncGroup
from ..operations import NON_DETERMINISTIC, Request, apply_update
from ..phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol

__all__ = ["SemiActiveReplication"]


class SemiActiveReplication(ReplicaProtocol):
    """Per-replica endpoint of semi-active (leader/follower) replication."""

    info = ProtocolInfo(
        name="semi_active",
        title="Semi-active replication",
        figure="Figure 4",
        community="ds",
        descriptor=PhaseDescriptor(
            technique="semi_active",
            steps=(
                PhaseStep(RE, "abcast"),
                PhaseStep(SC, "abcast"),
                PhaseStep(EX),
                PhaseStep(AC, "vscast"),
                PhaseStep(END),
            ),
            loop=(2, 3),
            loop_unit="non-deterministic choice",
        ),
        consistency="strong",
        client_policy="all",
        failure_transparent=True,
        requires_determinism=False,
        supports_multi_op=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.fallback = float(config.get("inject_fallback", 30.0))
        flavour = config.get("abcast", "consensus")
        if flavour == "sequencer":
            self.abcast = SequencerAtomicBroadcast(
                replica.node, replica.transport, group, self._on_deliver,
                trace=replica.system.trace, channel_prefix="sa.ab",
            )
        else:
            self.abcast = ConsensusAtomicBroadcast(
                replica.node, replica.transport, group, replica.detector,
                self._on_deliver, trace=replica.system.trace,
                channel_prefix="sa.ab",
            )
        self.view_group = ViewSyncGroup(
            replica.node, replica.transport, replica.detector, group,
            self._on_vs_deliver, on_view_change=self._on_view_change,
            trace=replica.system.trace,
        )
        self._executed: Set[str] = set()
        self._awaiting_order: Dict[str, tuple] = {}
        # Take over a suspected injector's pending requests immediately.
        replica.detector.on_suspect(lambda _peer: self._inject_all_pending())
        self._queue: Deque[tuple] = deque()
        self._executor_busy = False
        self._choices: Dict[Tuple[str, int], int] = {}
        self._choice_waiters: Dict[Tuple[str, int], object] = {}
        self._blocked_on: Optional[Tuple[str, int]] = None

    # -- leadership ----------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return (
            self.view_group.member
            and not self.view_group.excluded
            and self.view_group.view.members[0] == self.replica.name
        )

    def _on_view_change(self, view: View) -> None:
        if view.members[0] == self.replica.name and self._blocked_on is not None:
            # New leader: unblock the group by publishing the choice every
            # follower (including ourselves, until now) is waiting for.
            key = self._blocked_on
            if key not in self._choices:
                self._publish_choice(key)

    # -- request path ------------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if rid in self._executed or rid in self._awaiting_order:
            return
        self._awaiting_order[rid] = (request, client)
        if self._am_injector():
            self._inject(rid)
        else:
            self.replica.node.after(self.fallback, self._inject_if_pending, rid)

    def _am_injector(self) -> bool:
        for name in self.group:
            if name == self.replica.name:
                return True
            if not self.replica.detector.is_suspected(name):
                return False
        return False

    def _inject_if_pending(self, rid: str) -> None:
        if rid in self._awaiting_order and rid not in self._executed:
            self._inject(rid)

    def _inject_all_pending(self) -> None:
        if not self._am_injector():
            return
        for rid in list(self._awaiting_order):
            self._inject_if_pending(rid)

    def _inject(self, rid: str) -> None:
        request, client = self._awaiting_order[rid]
        self.abcast.abcast("request", request=request.as_wire(), client=client)

    # -- ordered execution -----------------------------------------------------------

    def _on_deliver(self, origin: str, mtype: str, body: dict) -> None:
        request = Request.from_wire(body["request"])
        rid = request.request_id
        if rid in self._executed:
            return
        self._executed.add(rid)
        self._awaiting_order.pop(rid, None)
        self.phase(rid, SC, "abcast")
        self._queue.append((request, body["client"]))
        self._pump()

    def _pump(self) -> None:
        if self._executor_busy or not self._queue:
            return
        self._executor_busy = True
        request, client = self._queue.popleft()
        self.replica.node.spawn(
            self._execute(request, client), name=f"sa-exec-{request.request_id}"
        )

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        values = []
        records = []
        # Phase recording follows Figure 4: an EX span opens each stretch
        # of execution, an AC record marks each leader choice, and the
        # EX/AC pair repeats per non-deterministic point.
        needs_ex_record = True
        for index, op in enumerate(request.operations):
            if needs_ex_record:
                self.phase(rid, EX)
                needs_ex_record = False
            if op.kind == "read":
                values.append(self.store.read(op.item))
                continue
            if op.kind == "write":
                new_value = op.argument
            elif op.func in NON_DETERMINISTIC:
                choice = yield from self._resolve_choice(rid, index)
                needs_ex_record = True
                new_value = choice
            else:
                new_value = apply_update(
                    op.func, self.store.read(op.item), op.argument, self.rng
                )
            version = self.store.write(op.item, new_value)
            records.append(UpdateRecord(op.item, new_value, version))
            values.append(None if op.kind == "write" else new_value)
        self.respond(client, request, committed=True, values=values)
        self._executor_busy = False
        self._pump()

    # -- non-deterministic choices --------------------------------------------------------

    def _resolve_choice(self, rid: str, op_index: int):
        key = (rid, op_index)
        if key not in self._choices:
            if self.is_leader:
                self._publish_choice(key)
            else:
                self._blocked_on = key
                future = self.sim.future(label=f"choice:{key}")
                self._choice_waiters[key] = future
                yield future
                self._blocked_on = None
        self.phase(rid, AC, "vscast")
        return self._choices[key]

    def _publish_choice(self, key: Tuple[str, int]) -> None:
        value = self.rng.randrange(10**9)
        self.view_group.vscast("choice", rid=key[0], op_index=key[1], value=value)

    def _on_vs_deliver(self, origin: str, mtype: str, body: dict) -> None:
        if mtype != "choice":
            return
        key = (body["rid"], body["op_index"])
        if key in self._choices:
            return
        self._choices[key] = body["value"]
        waiter = self._choice_waiters.pop(key, None)
        if waiter is not None and not waiter.done:
            waiter.set_result(body["value"])
