"""Shared machinery for all replication protocol implementations.

Each technique from the paper is a :class:`ReplicaProtocol` subclass
instantiated once per replica node.  The subclass declares a
:class:`ProtocolInfo` (its row in the paper's classification figures) and
implements ``handle_request``; everything else — client messaging, phase
tracing, local transaction execution — is provided here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from ...db import TransactionManager, TransactionUpdates, UpdateRecord
from ...db.storage import DataStore
from ...errors import TransactionAborted
from ...net import Message
from ..operations import Operation, Request, apply_update
from ..phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseTracer

if TYPE_CHECKING:  # pragma: no cover
    from ..system import ReplicaNode

__all__ = [
    "ProtocolInfo",
    "ReplicaProtocol",
    "run_transaction",
    "apply_request_to_store",
    "optimistic_execute",
    "CLIENT_REQUEST",
    "CLIENT_RESPONSE",
]

CLIENT_REQUEST = "client.request"
CLIENT_RESPONSE = "client.response"


@dataclass(frozen=True)
class ProtocolInfo:
    """One technique's coordinates in the paper's taxonomy.

    ``client_policy`` tells the client stub where requests go:
    ``"all"`` (address the group, Section 3), ``"primary"`` or ``"local"``
    (databases always contact one server, Section 4).
    """

    name: str
    title: str
    figure: str
    community: str                      # "ds" | "db"
    descriptor: PhaseDescriptor
    txn_descriptor: Optional[PhaseDescriptor] = None
    consistency: str = "strong"         # "strong" | "weak"
    client_policy: str = "local"        # "all" | "primary" | "local"
    failure_transparent: bool = False
    requires_determinism: bool = False
    propagation: Optional[str] = None   # "eager" | "lazy" (db only)
    update_location: Optional[str] = None  # "primary" | "everywhere" (db only)
    supports_multi_op: bool = True
    # Primary-copy schemes let read-only transactions run at any site
    # ("Reading transactions can be performed on any site", Section 4.3);
    # when set, clients route read-only requests to their home replica.
    reads_anywhere: bool = False
    # Whether the technique serves interactive transaction sessions
    # (Section 5's "operations not necessarily available for processing
    # at the same time") — the protocols with per-operation loops.
    supports_sessions: bool = False

    def descriptor_for(self, operation_count: int) -> PhaseDescriptor:
        if operation_count > 1 and self.txn_descriptor is not None:
            return self.txn_descriptor
        return self.descriptor


class ReplicaProtocol:
    """Base class for per-replica protocol instances.

    Subclasses receive the hosting :class:`ReplicaNode` (which carries the
    transaction manager, transport, detector and tracer) plus the replica
    group, and register any message handlers they need in ``__init__``.
    """

    info: ProtocolInfo

    # How long an in-flight request suppresses re-admission of a retry
    # with the same id.  Longer than a 2PC round under COORDINATION_TIMEOUT,
    # shorter than a client deadline budget: a stuck execution eventually
    # lets a retry through instead of swallowing it forever.
    _SERVING_TTL = 90.0

    def __init__(self, replica: "ReplicaNode", group: List[str], config: dict) -> None:
        self.replica = replica
        self.group = list(group)
        self.config = dict(config)
        # request_id -> admission time of the execution currently running
        # here.  Guards against a client retry re-entering handle_request
        # while the first execution is still in flight (which would start
        # a second transaction under the same id).  Volatile: cleared on
        # host crash.
        self._serving: Dict[str, float] = {}
        replica.node.on(CLIENT_REQUEST, self._on_client_request)

    # -- to implement ------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        """Process a client request arriving at this replica."""
        raise NotImplementedError

    # -- common helpers -------------------------------------------------------

    def _on_client_request(self, message: Message) -> None:
        request = Request.from_wire(message["request"])
        # Duplicate-reply cache: a request this replica already committed
        # (same idempotency key — a client retry or a duplicated packet)
        # is answered from the cache, never re-executed.  This is what
        # keeps counters exact under retry storms: at-least-once delivery
        # plus server-side dedup is exactly-once execution.
        cached = self.replica.cached_reply(request.idempotency_key)
        if cached is not None:
            self.respond(message.src, request, committed=True, values=cached)
            return
        # Deadline budget: if the client has already given up on this
        # envelope there is no point acquiring locks or running a
        # coordination round for it — shed it with an explicit abort (the
        # reply costs one message and is dropped if the client is gone).
        if message.deadline is not None and self.sim.now > message.deadline:
            self.respond(message.src, request, committed=False,
                         reason="deadline exceeded")
            return
        started = self._serving.get(request.request_id)
        if started is not None and self.sim.now - started < self._SERVING_TTL:
            # Already executing here: the in-flight run will respond (the
            # client matches replies by request id, not by attempt).
            return
        if self.busy_elsewhere(request):
            # Another replica's execution of this request is in flight and
            # its outcome is unknown here (e.g. a buffered 2PC workspace
            # from a delegate that since crashed).  Starting a second,
            # independent execution could double-apply; stay silent — the
            # client's next retry lands after the decision has resolved,
            # hitting either the duplicate-reply cache or a clean slate.
            return
        self._serving[request.request_id] = self.sim.now
        self.phase(request.request_id, RE)
        self.handle_request(request, message.src)

    def respond(
        self,
        client: str,
        request: Request,
        committed: bool,
        values: Optional[List[Any]] = None,
        reason: str = "",
    ) -> None:
        """Send the END-phase response back to the client.

        Committed replies are remembered in the hosting replica's
        duplicate-reply cache keyed by the request's idempotency key, so a
        retried request is answered without re-execution.
        """
        if committed:
            self.replica.remember_reply(request.idempotency_key, list(values or []))
        self._serving.pop(request.request_id, None)
        self.phase(request.request_id, END)
        self.replica.node.send(
            client,
            CLIENT_RESPONSE,
            request_id=request.request_id,
            committed=committed,
            values=list(values or []),
            reason=reason,
            server=self.replica.name,
        )

    def phase(self, request_id: object, phase: str, mechanism: str = "") -> None:
        """Report a phase transition to the system-wide tracer."""
        self.replica.tracer.record(self.replica.name, request_id, phase, mechanism)

    @property
    def sim(self):
        return self.replica.node.sim

    @property
    def tm(self) -> TransactionManager:
        return self.replica.tm

    @property
    def store(self) -> DataStore:
        return self.replica.tm.store

    @property
    def rng(self) -> random.Random:
        return self.replica.rng

    def peers(self) -> List[str]:
        return [name for name in self.group if name != self.replica.name]

    def busy_elsewhere(self, request: Request) -> bool:
        """Is another replica's execution of ``request`` in flight here?

        Protocols with cross-replica execution state (2PC workspaces)
        override this so a retried request is not re-admitted while the
        first execution's outcome is still undecided at this site.
        """
        return False

    def on_crash(self) -> None:
        """Hook: the hosting replica crashed (volatile state is gone)."""

    def on_recover(self) -> None:
        """Hook: the hosting replica restarted."""


# ---------------------------------------------------------------------------
# Execution engines shared by the protocols
# ---------------------------------------------------------------------------

def run_transaction(
    tm: TransactionManager,
    request: Request,
    rng: random.Random,
    txn_id: Optional[object] = None,
) -> Generator:
    """Execute a request as a local strict-2PL transaction (sim process).

    Returns ``(values, updates)`` on commit; raises
    :class:`TransactionAborted` (after rolling back) on deadlock or lock
    timeout.  ``values`` holds one entry per operation: the value read, the
    new value for updates, None for blind writes.
    """
    txn = tm.begin(txn_id)
    values: List[Any] = []
    try:
        for op in request.operations:
            if op.kind == "read":
                values.append((yield txn.read(op.item)))
            elif op.kind == "write":
                yield txn.write(op.item, op.argument)
                values.append(None)
            else:
                current = yield txn.read(op.item)
                new_value = apply_update(op.func, current, op.argument, rng)
                yield txn.write(op.item, new_value)
                values.append(new_value)
        updates = txn.commit()
    except TransactionAborted:
        txn.abort("execution failed")
        raise
    return values, updates


def apply_request_to_store(
    store: DataStore, request: Request, rng: random.Random
) -> Tuple[List[Any], TransactionUpdates]:
    """State-machine execution: apply a request directly to the store.

    Used where the protocol has already serialised requests (active
    replication executes in ABCAST delivery order, one at a time), so no
    locking is necessary.  Returns ``(values, updates)``.
    """
    values: List[Any] = []
    records: List[UpdateRecord] = []
    for op in request.operations:
        if op.kind == "read":
            values.append(store.read(op.item))
        elif op.kind == "write":
            version = store.write(op.item, op.argument)
            records.append(UpdateRecord(op.item, op.argument, version))
            values.append(None)
        else:
            new_value = apply_update(op.func, store.read(op.item), op.argument, rng)
            version = store.write(op.item, new_value)
            records.append(UpdateRecord(op.item, new_value, version))
            values.append(new_value)
    return values, TransactionUpdates(request.request_id, tuple(records))


def optimistic_execute(
    store: DataStore, request: Request, rng: random.Random
) -> Tuple[List[Any], Dict[str, int], List[UpdateRecord], Dict[str, int]]:
    """Shadow-copy execution for certification-based replication.

    Reads the committed store without taking locks, recording the version
    of everything read; buffers writes without applying them.  Returns
    ``(values, readset, writeset, base_versions)`` — the material that is
    atomically broadcast for certification (Section 5.4.2).
    ``base_versions`` records, per written item, the committed version the
    write was computed against (the input of first-committer-wins
    validation).
    """
    values: List[Any] = []
    readset: Dict[str, int] = {}
    shadow: Dict[str, Any] = {}
    writeset: List[UpdateRecord] = []
    base_versions: Dict[str, int] = {}

    def read(item: str) -> Any:
        if item in shadow:
            return shadow[item]
        readset.setdefault(item, store.version(item))
        return store.read(item)

    def write(item: str, value: Any) -> None:
        base_versions.setdefault(item, store.version(item))
        shadow[item] = value

    for op in request.operations:
        if op.kind == "read":
            values.append(read(op.item))
        elif op.kind == "write":
            write(op.item, op.argument)
            values.append(None)
        else:
            new_value = apply_update(op.func, read(op.item), op.argument, rng)
            write(op.item, new_value)
            values.append(new_value)
    for item, value in shadow.items():
        writeset.append(UpdateRecord(item, value, 0))
    return values, readset, writeset, base_versions
