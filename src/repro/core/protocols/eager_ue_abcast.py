"""Eager update everywhere based on atomic broadcast (Section 4.4.2,
Figure 9).

"The basic idea behind this approach is to use the total order guaranteed
by ABCAST to provide a hint to the transaction manager on how to order
conflicting operations.  Thus, the client submits its request to one
database server which then broadcasts the request to all other database
servers (note that in distributed systems, the client broadcasts the
request directly to all servers)."

Mechanics:

* RE: the client contacts one server — its local *delegate* (the
  database-style request phase, unlike active replication's group
  address).
* SC: the delegate ABCASTs the transaction; the total order *is* the
  server coordination.
* EX: every replica executes delivered transactions serially in delivery
  order (the conservative execution of [KA98]: conflicting operations run
  in ABCAST order everywhere, yielding one-copy serializability without
  locks across sites).  Determinism across replicas is obtained by
  seeding the execution RNG from the request id, so even "random" updates
  compute identically at all sites — the determinism assumption this
  technique inherits from active replication (Section 4.4.1 notes that
  with deterministic databases the 2PC vanishes and the protocol becomes
  functionally identical to active replication).
* **No AC phase** ("there is no coordination at this point").
* END: the delegate responds after its own delivery executes.

Read-only transactions execute locally at the delegate without
broadcasting.

``config`` options: ``abcast`` — ``"consensus"`` (default) or
``"sequencer"``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Set

from ...groupcomm import ConsensusAtomicBroadcast, SequencerAtomicBroadcast
from ..operations import Request
from ..phases import END, EX, RE, SC, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, apply_request_to_store

__all__ = ["EagerUpdateEverywhereAbcast"]


class EagerUpdateEverywhereAbcast(ReplicaProtocol):
    """Per-replica endpoint of eager update everywhere via ABCAST."""

    info = ProtocolInfo(
        name="eager_ue_abcast",
        title="Eager update everywhere, atomic broadcast",
        figure="Figure 9",
        community="db",
        descriptor=PhaseDescriptor(
            technique="eager_ue_abcast",
            steps=(
                PhaseStep(RE),
                PhaseStep(SC, "abcast"),
                PhaseStep(EX),
                PhaseStep(END),
            ),
        ),
        consistency="strong",
        client_policy="local",
        propagation="eager",
        update_location="everywhere",
        failure_transparent=False,
        requires_determinism=True,
        supports_multi_op=True,
        reads_anywhere=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        flavour = config.get("abcast", "consensus")
        if flavour == "sequencer":
            self.abcast = SequencerAtomicBroadcast(
                replica.node, replica.transport, group, self._on_deliver,
                trace=replica.system.trace, channel_prefix="ueab",
            )
        else:
            self.abcast = ConsensusAtomicBroadcast(
                replica.node, replica.transport, group, replica.detector,
                self._on_deliver, trace=replica.system.trace,
                channel_prefix="ueab",
            )
        self._executed: Set[str] = set()

    # -- delegate side ------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if request.read_only:
            self.phase(rid, EX)
            values = [self.store.read(op.item) for op in request.operations]
            self.respond(client, request, committed=True, values=values)
            return
        self.abcast.abcast(
            "txn", request=request.as_wire(), client=client,
            delegate=self.replica.name,
        )

    # -- everywhere: ordered execution -----------------------------------------

    def _on_deliver(self, origin: str, mtype: str, body: dict) -> None:
        request = Request.from_wire(body["request"])
        rid = request.request_id
        if rid in self._executed:
            return
        self._executed.add(rid)
        self.phase(rid, SC, "abcast")
        self.phase(rid, EX)
        # Deterministic execution: every replica derives the same RNG from
        # the request id (stable CRC, not the salted built-in hash), so
        # update functions compute identical values at every site and run.
        request_rng = random.Random(zlib.crc32(rid.encode()))
        values, _updates = apply_request_to_store(self.store, request, request_rng)
        # Execution is deterministic, so every replica can populate the
        # duplicate-reply cache with the same values: a client retry that
        # lands on a *different* replica (the delegate crashed) is answered
        # from cache instead of re-abcast — exactly-once across failover.
        self.replica.remember_reply(request.idempotency_key, values)
        if body["delegate"] == self.replica.name:
            # Only the delegate answers — the client knows one server.
            self.respond(body["client"], request, committed=True, values=values)
