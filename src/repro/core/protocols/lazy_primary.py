"""Lazy primary copy replication (Section 4.5, Figure 10).

"Lazy replication avoids the synchronisation overhead of eager replication
techniques by providing a response to the clients before there is any
coordination between servers."  With a primary copy, the later Agreement
Coordination "is relatively straightforward ... the replicas need only to
apply the changes as the primary propagates them."

Mechanics:

* Update transactions go to the primary; it executes and commits locally
  and responds **immediately** — END precedes AC, the signature phase
  reordering of Figure 10 (and the eager/lazy distinction of Figure 16).
* Propagation: the primary ships its write-ahead-log tail to each
  secondary, either after a fixed delay per transaction or batched on a
  period.  The FIFO links plus LSN ordering mean secondaries apply the
  primary's commit order — no reconciliation needed.
* Read-only transactions run at any replica and may observe **stale**
  data; the staleness benchmark quantifies the window.

``config`` options:

* ``propagation_delay`` — how long after commit updates ship (default 20).
* ``batch_interval`` — if set, ship the accumulated WAL tail on this
  period instead of per-transaction timers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...db import TransactionUpdates
from ...errors import TransactionAborted
from ...net import Message
from ..operations import Request
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, run_transaction

__all__ = ["LazyPrimaryCopy"]

APPLY = "lp.apply"
SYNC = "lp.sync"


class LazyPrimaryCopy(ReplicaProtocol):
    """Per-replica endpoint of lazy primary copy replication."""

    info = ProtocolInfo(
        name="lazy_primary",
        title="Lazy primary copy",
        figure="Figure 10",
        community="db",
        descriptor=PhaseDescriptor(
            technique="lazy_primary",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX),
                PhaseStep(END),
                PhaseStep(AC, "propagation"),
            ),
        ),
        consistency="weak",
        client_policy="primary",
        propagation="lazy",
        update_location="primary",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        reads_anywhere=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.propagation_delay = float(config.get("propagation_delay", 20.0))
        self.batch_interval: Optional[float] = config.get("batch_interval")
        self._shipped_lsn: Dict[str, int] = {peer: 0 for peer in self.peers()}
        replica.node.on(APPLY, self._on_apply)
        replica.node.on(SYNC, self._on_sync_request)
        replica.detector.on_suspect(self._on_suspect)
        replica.detector.on_restore(self._on_peer_restored)
        if self.batch_interval is not None:
            replica.node.every(float(self.batch_interval), self._ship_tail)
            replica.node.add_recover_hook(
                lambda: replica.node.every(float(self.batch_interval), self._ship_tail)
            )

    @property
    def is_primary(self) -> bool:
        return self.replica.system.directory.primary == self.replica.name

    # -- request path -------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if request.read_only:
            # Local (possibly stale) reads at any site — the lazy selling
            # point: no communication inside the transaction at all.
            self.phase(rid, EX)
            values = [self.store.read(op.item) for op in request.operations]
            self.respond(client, request, committed=True, values=values)
            return
        # Lazy primary copy commits locally and propagates afterwards by
        # design: a primary deposed during the lock waits below still
        # commits, and reconciliation absorbs the divergence — no
        # post-wait fencing to re-check.
        if not self.is_primary:  # repro: noqa R602
            self.respond(
                client, request, committed=False,
                reason=f"not primary (primary is {self.replica.system.directory.primary})",
            )
            return
        self.replica.node.spawn(self._execute(request, client), name=f"lp-{rid}")

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        self.phase(rid, EX)
        try:
            values, updates = yield from run_transaction(
                self.tm, request, self.rng, txn_id=f"{rid}@primary"
            )
        except TransactionAborted as exc:
            self.respond(client, request, committed=False, reason=str(exc))
            return
        # END before AC: the client hears back as soon as the local commit
        # is durable; propagation happens afterwards.
        self.respond(client, request, committed=True, values=values)
        if self.batch_interval is None:
            self.replica.node.after(self.propagation_delay, self._ship_tail, rid)

    # -- propagation ----------------------------------------------------------

    def _ship_tail(self, rid: Optional[str] = None) -> None:
        if not self.is_primary:
            return
        if rid is not None:
            self.phase(rid, AC, "propagation")
        for peer in self.peers():
            shipped = self._shipped_lsn.get(peer, 0)
            tail = self.tm.wal.tail(shipped)
            if not tail:
                continue
            self._shipped_lsn[peer] = shipped + len(tail)
            self.replica.node.send(
                peer, APPLY,
                from_lsn=shipped,
                entries=[entry.as_wire() for entry in tail],
            )

    def _on_apply(self, message: Message) -> None:
        for wire in message["entries"]:
            updates = TransactionUpdates.from_wire(wire)
            self.tm.apply_updates(updates, log=False)
            # Remember propagated commits under their request id: if this
            # secondary is promoted, a client retry of a request the old
            # primary already committed *and shipped* is answered from the
            # cache.  (Unshipped commits are lost on failover — that is
            # the price of laziness the paper points out, and the reason
            # lazy techniques only promise convergence, not exactness.)
            self.replica.remember_reply(str(updates.txn_id).rsplit("@", 1)[0], [])

    # -- failover -----------------------------------------------------------

    def _on_suspect(self, peer: str) -> None:
        """Promote the lowest live secondary when the primary dies.

        Note the price of laziness the paper points out: updates the old
        primary committed but had not yet propagated are *lost* — the new
        primary starts from its own (possibly stale) copy.
        """
        directory = self.replica.system.directory
        if peer != directory.primary:
            return
        live = [
            name for name in self.group
            if name == self.replica.name or not self.replica.detector.is_suspected(name)
        ]
        if live and live[0] == self.replica.name:
            directory.set_primary(self.replica.name)

    # -- recovery -----------------------------------------------------------------

    def on_recover(self) -> None:
        """Pull the current primary's state after a restart.

        A recovered secondary missed every log shipment sent while it was
        down (the primary's shipping cursor moved on regardless), so it
        resynchronises by full state pull — the lazy analogue of restoring
        a replica from a backup before resuming log apply.
        """
        self.replica.node.spawn(self._resync(), name=f"{self.replica.name}-resync")

    def _resync(self):
        directory = self.replica.system.directory
        if directory.primary == self.replica.name:
            return
        try:
            reply = yield self.replica.node.call(directory.primary, SYNC, timeout=60.0)
        except Exception:  # noqa: BLE001 - primary unreachable; stay stale
            return
        for item, value, version in reply["state"]:
            self.store.write_versioned(item, value, version)

    def _on_sync_request(self, message) -> None:
        state = [
            [item, versioned.value, versioned.version]
            for item, versioned in self.store.items()
        ]
        self.replica.node.reply(message, state=state)

    def _on_peer_restored(self, peer: str) -> None:
        """Re-ship the whole log to a peer that was presumed dead.

        Shipments sent while the peer was down were dropped on the floor;
        rewinding its cursor replays them (idempotent thanks to the
        version check in ``write_versioned``)."""
        if self.is_primary and peer in self._shipped_lsn:
            self._shipped_lsn[peer] = 0
            self._ship_tail()

    # -- introspection -----------------------------------------------------------

    def replication_lag(self) -> Dict[str, int]:
        """Per-secondary count of not-yet-shipped WAL entries."""
        last = self.tm.wal.last_lsn() + 1
        return {peer: last - lsn for peer, lsn in self._shipped_lsn.items()}
