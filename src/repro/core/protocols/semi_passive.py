"""Semi-passive replication (Section 3.5).

A passive-style technique — one process executes, the others apply its
updates — that needs **no view-synchronous membership**: "the Server
Coordination (phase 2) and the Agreement Coordination (phase 4) are part
of one single coordination protocol called Consensus with Deferred Initial
Values".

Mechanics:

* Clients address the group (failure transparency, Figure 5): the request
  reaches every replica and is queued.
* Replicas agree on a sequence of *slots*.  For slot *k* every replica
  participates in a :class:`~repro.groupcomm.DeferredConsensus` instance
  whose initial value is a **thunk**: "execute the oldest queued request
  and return (updates, results)".  Only the coordinator of a round runs
  the thunk — that replica plays the primary for this request.
* If the coordinator is suspected (even wrongly), the next round's
  coordinator executes the request itself and proposes its own updates.
  The cost of a wrong suspicion is one redundant execution — not a view
  change — which is why the paper says the technique tolerates
  "aggressive time-outs ... without incurring a too important cost for
  incorrect failure suspicions".
* On decision every replica applies the decided after-images and responds
  to the client; the client keeps the first response.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...db.storage import DataStore
from ...groupcomm import DeferredConsensus, ReliableBroadcast
from ..operations import Request
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, apply_request_to_store

__all__ = ["SemiPassiveReplication"]


class SemiPassiveReplication(ReplicaProtocol):
    """Per-replica endpoint of semi-passive replication."""

    info = ProtocolInfo(
        name="semi_passive",
        title="Semi-passive replication",
        figure="Section 3.5",
        community="ds",
        descriptor=PhaseDescriptor(
            technique="semi_passive",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX, "deferred"),
                PhaseStep(AC, "consensus-dv"),
                PhaseStep(END),
            ),
        ),
        consistency="strong",
        client_policy="all",
        failure_transparent=True,
        requires_determinism=False,
        supports_multi_op=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.consensus = DeferredConsensus(
            replica.node,
            replica.transport,
            group,
            replica.detector,
            self._on_decide,
            trace=replica.system.trace,
            channel_prefix="sp.ct",
        )
        # Requests are re-disseminated reliably among the replicas: the
        # consensus slot for a request only terminates once a majority has
        # it in hand, so a request that initially reached a minority (lost
        # messages, partitions) must eventually spread to everyone.
        self._spread = ReliableBroadcast(
            replica.node, replica.transport, group, self._on_spread,
            trace=replica.system.trace, channel="sp.req",
        )
        self._pending: List[tuple] = []       # (request, client) FIFO
        self._pending_ids: Set[str] = set()
        self._done: Dict[str, dict] = {}
        self._slot = 0                         # next slot to decide
        self._proposed_slot = -1
        self._decisions_buffer: Dict[int, dict] = {}

    # -- request path -----------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        if self._enqueue(request, client):
            self._spread.broadcast("req", request=request.as_wire(), client=client)

    def _on_spread(self, _origin: str, _mtype: str, body: dict) -> None:
        self._enqueue(Request.from_wire(body["request"]), body["client"])

    def _enqueue(self, request: Request, client: str) -> bool:
        rid = request.request_id
        if rid in self._done or rid in self._pending_ids:
            return False
        self._pending.append((request, client))
        self._pending_ids.add(rid)
        self._maybe_propose()
        return True

    def _maybe_propose(self) -> None:
        if not self._pending or self._proposed_slot >= self._slot:
            return
        self._proposed_slot = self._slot
        slot = self._slot
        self.consensus.propose_deferred(slot, lambda: self._compute(slot))

    def _compute(self, slot: int) -> dict:
        """Coordinator-only: execute the oldest pending request.

        This is the deferred initial value — the whole point of the
        technique: execution happens at most at the (few) coordinators
        that actually run a round.
        """
        while self._pending and self._pending[0][0].request_id in self._done:
            self._pending.pop(0)
        if not self._pending:
            return {"empty": True}
        request, client = self._pending[0]
        self.phase(request.request_id, EX, "deferred")
        # Execute speculatively on a shadow of the store: if a different
        # coordinator's proposal wins this slot, our execution must leave
        # no trace.  The decided after-images are applied in _on_decide.
        shadow = DataStore(f"{self.replica.name}-shadow")
        shadow.restore(self.store.snapshot())
        values, updates = apply_request_to_store(shadow, request, self.rng)
        return {
            "empty": False,
            "request": request.as_wire(),
            "client": client,
            "values": values,
            "updates": [record.as_wire() for record in updates.records],
            "executor": self.replica.name,
        }

    # -- decision path --------------------------------------------------------

    def _on_decide(self, slot: int, decision: dict) -> None:
        self._decisions_buffer[slot] = decision
        while self._slot in self._decisions_buffer:
            self._apply_slot(self._decisions_buffer.pop(self._slot))
            self._slot += 1
        self._maybe_propose()

    def _apply_slot(self, decision: dict) -> None:
        if decision.get("empty"):
            return
        request = Request.from_wire(decision["request"])
        rid = request.request_id
        if rid in self._done:
            return
        self._done[rid] = decision
        self._pending_ids.discard(rid)
        self._pending = [
            entry for entry in self._pending if entry[0].request_id != rid
        ]
        self.phase(rid, AC, "consensus-dv")
        # Everyone — the executor included — installs the *decided*
        # after-images; speculative executions happened on shadows.
        for item, value, _version in decision["updates"]:
            self.store.write(item, value)
        self.respond(
            decision["client"], request, committed=True, values=decision["values"]
        )

    def executed_slots(self) -> int:
        """How many slots this replica executed as coordinator."""
        return sum(
            1 for d in self._done.values() if d["executor"] == self.replica.name
        )
