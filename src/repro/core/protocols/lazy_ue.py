"""Lazy update everywhere replication (Section 4.6, Figure 11).

Any site accepts updates, commits locally, responds, and propagates later
— maximum availability and minimum response time, at the price the paper
spells out: "the copies on the different site might not only be stale but
inconsistent.  Reconciliation is needed to decide which updates are the
winners and which transactions must be undone."

Mechanics:

* RE/EX/END at the client's local replica: execute under local 2PL,
  commit, answer immediately (END before AC, as in Figure 10/11).
* Each committed writeset gets a :class:`~repro.db.Stamp` (commit time,
  site, per-site sequence) and, after ``propagation_delay``, is reliably
  broadcast to the other replicas.
* AC = **reconciliation** (per object, exactly as the paper notes existing
  schemes are): every site feeds every write — its own at commit time,
  remote ones on arrival — through the same deterministic policy
  (last-writer-wins by default, site-priority optionally), so all replicas
  converge to identical values once propagation quiesces.  Transactions
  whose writes lost are counted as *undone* — the reconciliation casualty
  figure the benchmarks report.

``config`` options:

* ``propagation_delay`` — delay between commit and broadcast (default 20).
* ``reconciliation`` — ``"lww"`` (default), ``"priority"``, or
  ``"abcast"``: the paper's own suggestion for the simple model — "a
  straightforward solution ... is to run an Atomic Broadcast and
  determine the after-commit-order according to the order of the atomic
  broadcast".  Writesets are applied in ABCAST delivery order at every
  site, which converges without any timestamp scheme.
* ``priorities`` — site -> rank map for the ``"priority"`` policy.
"""

from __future__ import annotations

import itertools
from typing import Dict

from ...db import LastWriterWins, SitePriority, Stamp, TransactionUpdates
from ...errors import TransactionAborted
from ...groupcomm import ReliableBroadcast, SequencerAtomicBroadcast
from ..operations import Request
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, run_transaction

__all__ = ["LazyUpdateEverywhere"]


class LazyUpdateEverywhere(ReplicaProtocol):
    """Per-replica endpoint of lazy update everywhere replication."""

    info = ProtocolInfo(
        name="lazy_ue",
        title="Lazy update everywhere",
        figure="Figure 11",
        community="db",
        descriptor=PhaseDescriptor(
            technique="lazy_ue",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX),
                PhaseStep(END),
                PhaseStep(AC, "reconciliation"),
            ),
        ),
        consistency="weak",
        client_policy="local",
        propagation="lazy",
        update_location="everywhere",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        reads_anywhere=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.propagation_delay = float(config.get("propagation_delay", 20.0))
        self.policy = config.get("reconciliation", "lww")
        self.reconciler = None
        self._abcast = None
        self._overwritten_by_order: set = set()
        self._last_writer: Dict[str, object] = {}
        if self.policy == "priority":
            self.reconciler = SitePriority(self.store, config.get("priorities", {}))
        elif self.policy == "lww":
            self.reconciler = LastWriterWins(self.store)
        elif self.policy == "abcast":
            self._abcast = SequencerAtomicBroadcast(
                replica.node, replica.transport, group, self._on_ordered,
                trace=replica.system.trace, channel_prefix="lue.ab",
            )
        else:
            raise ValueError(f"unknown reconciliation policy {self.policy!r}")
        self._stamp_seq = itertools.count(1)
        self._rb = ReliableBroadcast(
            replica.node, replica.transport, group, self._on_propagated,
            trace=replica.system.trace, channel="lue.prop",
        )

    # -- request path -----------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if request.read_only:
            self.phase(rid, EX)
            values = [self.store.read(op.item) for op in request.operations]
            self.respond(client, request, committed=True, values=values)
            return
        self.replica.node.spawn(self._execute(request, client), name=f"lue-{rid}")

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        self.phase(rid, EX)
        try:
            values, updates = yield from run_transaction(
                self.tm, request, self.rng, txn_id=f"{rid}@{self.replica.name}"
            )
        except TransactionAborted as exc:
            self.respond(client, request, committed=False, reason=str(exc))
            return
        stamp = Stamp(
            time=self.sim.now,
            site=self.replica.name,
            txn_id=rid,
            seq=next(self._stamp_seq),
        )
        if self.reconciler is not None:
            # Register our own writes with the reconciler now, so a remote
            # write with a larger stamp can later overwrite them (and ours
            # can defend their slot against smaller stamps).
            for record in updates.records:
                self.reconciler.consider(record.item, record.value, stamp)
        self.respond(client, request, committed=True, values=values)
        self.replica.node.after(
            self.propagation_delay, self._propagate, updates, stamp, rid
        )

    # -- propagation + reconciliation --------------------------------------------

    def _propagate(self, updates: TransactionUpdates, stamp: Stamp, rid: str) -> None:
        self.phase(rid, AC, "reconciliation")
        if self._abcast is not None:
            self._abcast.abcast(
                "writeset", updates=updates.as_wire(), stamp=stamp.as_wire()
            )
        else:
            self._rb.broadcast(
                "writeset", updates=updates.as_wire(), stamp=stamp.as_wire()
            )

    def _on_propagated(self, origin: str, mtype: str, body: dict) -> None:
        if origin == self.replica.name:
            return  # already reconciled locally at commit time
        updates = TransactionUpdates.from_wire(body["updates"])
        stamp = Stamp.from_wire(body["stamp"])
        for record in updates.records:
            self.reconciler.consider(record.item, record.value, stamp)
        # Remember reconciled commits: a client whose home replica crashed
        # retries at another site, which must not re-execute a transaction
        # whose writeset already arrived here (see lazy_primary._on_apply).
        self.replica.remember_reply(str(stamp.txn_id).rsplit("@", 1)[0], [])

    def _on_ordered(self, origin: str, mtype: str, body: dict) -> None:
        """Apply writesets in the ABCAST-determined after-commit order.

        Every site applies the same sequence, so the copies converge with
        no per-object timestamps.  A transaction counts as *undone* when
        the decided order inverts real time — its write is superseded by
        one that actually committed earlier (ordinary newer-over-older
        overwrites are just history, not reconciliation casualties)."""
        updates = TransactionUpdates.from_wire(body["updates"])
        stamp = Stamp.from_wire(body["stamp"])
        for record in updates.records:
            previous = self._last_writer.get(record.item)
            if previous is not None and previous[0] != stamp.txn_id:
                previous_txn, previous_stamp = previous
                if stamp.sort_key < previous_stamp.sort_key:
                    self._overwritten_by_order.add(previous_txn)
            self._last_writer[record.item] = (stamp.txn_id, stamp)
            self.store.write(record.item, record.value)
        self.replica.remember_reply(str(stamp.txn_id).rsplit("@", 1)[0], [])

    # -- introspection ---------------------------------------------------------------

    @property
    def undone_transactions(self) -> int:
        """Transactions at this site whose writes lost reconciliation."""
        if self.reconciler is not None:
            return self.reconciler.undone_count
        return len(self._overwritten_by_order)
