"""Eager update everywhere with distributed locking (Section 4.4.1 /
Figure 8; Section 5.4.1 / Figure 13 for multi-operation transactions).

"When using distributed locking, a replica can only be accessed after it
has been locked at all sites" — the Server Coordination phase *is* the
distributed lock acquisition, the Agreement Coordination phase is a 2PC.

Mechanics:

* The client submits to its local replica (the *delegate*), which drives
  the whole protocol — clients never talk to more than one server
  (Section 4.1).
* Per operation (the SC/EX loop of Figure 13):
  - writes: the delegate requests a write lock at **every** replica
    (read-one/write-all; Section 5.4.1 notes quorums are orthogonal) and
    waits for all grants (SC).  It then computes the after-image locally
    and ships it; every site buffers it in the transaction's workspace
    (EX at all sites).
  - reads: performed locally under a local read lock (ROWA — "read
    operations are local").
* Final AC: 2PC across all replicas; commit installs every site's
  workspace and releases its locks.
* END strictly after the 2PC.

Distributed deadlocks — two delegates locking the same items from
different sites — are invisible to any single site's wait-for graph; they
are broken by **lock-wait timeouts** (each remote lock request carries
one), aborting the younger transaction system-wide.  The abort-rate
benchmark measures how quickly this degrades under contention compared
with certification.

``config`` options:

* ``lock_timeout`` — remote lock wait bound (default 40 time units).
* ``write_quorum`` — number of sites locked/written per update (default:
  all live sites, i.e. read-one/write-all).  Section 5.4.1: "The use of
  quorums is orthogonal to this discussion.  Quorums only determine how
  many sites and which of them need to be contacted" — setting a quorum
  W with 2W > n keeps the exact same phase structure while writes touch
  only W sites; reads then contact R = n - W + 1 sites and take the
  highest-versioned copy (Gifford-style weighted voting).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...db import READ, WRITE, TwoPhaseCoordinator, TwoPhaseParticipant
from ...errors import NodeCrashed, TransactionAborted
from ...net import Message
from ..operations import Operation, Request, apply_update
from ..phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep
from ..sessions import ABORT as S_ABORT, BEGIN as S_BEGIN, COMMIT as S_COMMIT, OP as S_OP
from .base import ProtocolInfo, ReplicaProtocol

__all__ = ["EagerUpdateEverywhereLocking"]

LOCK = "ueld.lock"
BUFFER = "ueld.buffer"


class EagerUpdateEverywhereLocking(ReplicaProtocol):
    """Per-replica endpoint of eager update everywhere via 2PL + 2PC."""

    info = ProtocolInfo(
        name="eager_ue_locking",
        title="Eager update everywhere, distributed locking",
        figure="Figure 8 / Figure 13",
        community="db",
        descriptor=PhaseDescriptor(
            technique="eager_ue_locking",
            steps=(
                PhaseStep(RE),
                PhaseStep(SC, "locks"),
                PhaseStep(EX),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
        ),
        txn_descriptor=PhaseDescriptor(
            technique="eager_ue_locking",
            steps=(
                PhaseStep(RE),
                PhaseStep(SC, "locks"),
                PhaseStep(EX),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
            loop=(1, 2),
        ),
        consistency="strong",
        client_policy="local",
        propagation="eager",
        update_location="everywhere",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        supports_sessions=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.lock_timeout = float(config.get("lock_timeout", 40.0))
        self.write_quorum = config.get("write_quorum")
        if self.write_quorum is not None:
            if not len(group) // 2 < self.write_quorum <= len(group):
                raise ValueError(
                    f"write_quorum must be in ({len(group) // 2}, {len(group)}]"
                )
        self.coordinator = TwoPhaseCoordinator(replica.node, trace=replica.system.trace)
        self.participant = TwoPhaseParticipant(
            replica.node, self._on_prepare, self._on_decision
        )
        self._workspaces: Dict[str, List[tuple]] = {}
        replica.node.on(LOCK, self._on_lock_request)
        replica.node.on(BUFFER, self._on_buffer)
        replica.node.on(S_BEGIN, self._on_session_begin)
        replica.node.on(S_OP, self._on_session_op)
        replica.node.on(S_COMMIT, self._on_session_commit)
        replica.node.on(S_ABORT, self._on_session_abort)
        self._sessions: Dict[str, dict] = {}

    # -- delegate side ------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        if request.read_only:
            self.replica.node.spawn(
                self._execute_read_only(request, client),
                name=f"ueld-ro-{request.request_id}",
            )
            return
        self.replica.node.spawn(
            self._execute(request, client), name=f"ueld-{request.request_id}"
        )

    def _execute_read_only(self, request: Request, client: str):
        """Reads: local under ROWA, quorum reads under weighted voting."""
        rid = request.request_id
        txn_id = f"{rid}@{self.replica.name}"
        self.phase(rid, EX)
        values = []
        try:
            for op in request.operations:
                if self.write_quorum is None:
                    yield self.tm.locks.acquire(
                        txn_id, op.item, READ, timeout=self.lock_timeout
                    )
                    values.append(self.store.read(op.item))
                else:
                    _version, value = yield from self._quorum_read(txn_id, op.item)
                    values.append(value)
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            self._release_everywhere(txn_id)
            self.respond(client, request, committed=False, reason=str(exc))
            return
        self._release_everywhere(txn_id)
        self.respond(client, request, committed=True, values=values)

    def _quorum_sites(self, count: int) -> List[str]:
        """``count`` sites starting at this replica, skipping suspected ones."""
        ring = self.group[self.group.index(self.replica.name):] + \
            self.group[:self.group.index(self.replica.name)]
        live = [n for n in ring if n == self.replica.name
                or not self.replica.detector.is_suspected(n)]
        if len(live) < count:
            raise TransactionAborted(self.replica.name, "quorum unreachable")
        return live[:count]

    def _quorum_read(self, txn_id: str, item: str):
        """Read-lock R sites; return the highest-versioned (version, value)."""
        read_quorum = len(self.group) - (self.write_quorum or len(self.group)) + 1
        sites = self._quorum_sites(read_quorum)
        grants = [
            self.replica.node.call(
                site, LOCK, timeout=self.lock_timeout + 20.0,
                txn=txn_id, item=item, mode=READ, lock_timeout=self.lock_timeout,
            )
            for site in sites
        ]
        replies = yield self.sim.all_of(grants)
        if not all(reply["granted"] for reply in replies):
            raise TransactionAborted(txn_id, "read quorum denied")
        best = max(replies, key=lambda r: (r["version"], r["site"]))
        return best["version"], best["value"]

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        txn_id = f"{rid}@{self.replica.name}"
        n_live = len([n for n in self.group
                      if not self.replica.detector.is_suspected(n)])
        quorum_size = self.write_quorum if self.write_quorum is not None else n_live
        values: List[Any] = []
        touched: List[str] = [self.replica.name]
        try:
            quorum = self._quorum_sites(quorum_size)
            touched = list(quorum)
            for op in request.operations:
                values.append(
                    (yield from self._perform_operation(rid, txn_id, op, quorum))
                )
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            yield from self._abort_everywhere(txn_id, touched)
            self.respond(client, request, committed=False, reason=str(exc))
            return
        # AC: two-phase commit across the quorum (this site included; it
        # participates through its local workspace/locks like the others).
        self.phase(rid, AC, "2pc")
        committed = yield self.coordinator.run(
            txn_id, [n for n in quorum if n != self.replica.name], local_vote=True
        )
        if committed:
            self._on_decision(txn_id, True)
            self.respond(client, request, committed=True, values=values)
        else:
            self._on_decision(txn_id, False)
            self.respond(client, request, committed=False, reason="2pc abort")

    def _perform_operation(self, rid: str, txn_id: str, op: Operation, quorum):
        """One SC/EX round of Figure 13: lock, compute, buffer at the quorum.

        Generator; returns the operation's client-visible value (None for
        blind writes).  Raises :class:`TransactionAborted` on lock denial.
        """
        if op.kind == "read":
            self.phase(rid, SC, "locks")
            if self.write_quorum is None:
                yield self.tm.locks.acquire(
                    txn_id, op.item, READ, timeout=self.lock_timeout
                )
                self.phase(rid, EX)
                return self._workspace_read(txn_id, op.item)[1]
            workspace = self._workspace_lookup(txn_id, op.item)
            if workspace is None:
                _v, value = yield from self._quorum_read(txn_id, op.item)
            else:
                value = workspace[1]
            self.phase(rid, EX)
            return value
        # SC: write lock at the whole write quorum.
        self.phase(rid, SC, "locks")
        grants = [
            self.replica.node.call(
                site, LOCK, timeout=self.lock_timeout + 20.0,
                txn=txn_id, item=op.item, mode=WRITE,
                lock_timeout=self.lock_timeout,
            )
            for site in quorum
        ]
        replies = yield self.sim.all_of(grants)
        if not all(reply["granted"] for reply in replies):
            raise TransactionAborted(txn_id, "remote lock denied")
        # EX: compute the after-image once, install it at the quorum.
        # The current value/version come from the transaction's own
        # workspace or from the highest-versioned quorum copy (the
        # write quorum intersects every earlier write quorum).
        self.phase(rid, EX)
        workspace = self._workspace_lookup(txn_id, op.item)
        if workspace is not None:
            current_version, current = workspace
        else:
            best = max(replies, key=lambda r: (r["version"], r["site"]))
            current_version, current = best["version"], best["value"]
        if op.kind == "write":
            new_value = op.argument
        else:
            new_value = apply_update(op.func, current, op.argument, self.rng)
        new_version = current_version + 1
        for site in quorum:
            self.replica.node.send(
                site, BUFFER, txn=txn_id, item=op.item,
                value=new_value, version=new_version,
            )
        return None if op.kind == "write" else new_value

    # -- interactive sessions (Section 5) ----------------------------------------

    def _on_session_begin(self, message: Message) -> None:
        sid = message["session"]
        try:
            n_live = len([n for n in self.group
                          if not self.replica.detector.is_suspected(n)])
            size = self.write_quorum if self.write_quorum is not None else n_live
            quorum = self._quorum_sites(size)
        except TransactionAborted as exc:
            self.replica.node.reply(message, ok=False, reason=str(exc))
            return
        self._sessions[sid] = {
            "txn_id": f"{sid}@{self.replica.name}",
            "quorum": quorum,
        }
        self.phase(sid, RE)
        self.replica.node.reply(message, ok=True, reason="")

    def _on_session_op(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_op(message), name=f"ueld-sess-op-{message['session']}"
        )

    def _session_op(self, message: Message):
        sid = message["session"]
        state = self._sessions.get(sid)
        if state is None:
            self.replica.node.reply(message, ok=False, reason="no such session",
                                    value=None)
            return
        op = Operation(message["kind"], message["item"],
                       argument=message["argument"], func=message["func"])
        try:
            value = yield from self._perform_operation(
                sid, state["txn_id"], op, state["quorum"]
            )
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            self._sessions.pop(sid, None)
            yield from self._abort_everywhere(state["txn_id"], state["quorum"])
            self.replica.node.reply(message, ok=False, reason=str(exc), value=None)
            return
        self.replica.node.reply(message, ok=True, reason="", value=value)

    def _on_session_commit(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_commit(message),
            name=f"ueld-sess-commit-{message['session']}",
        )

    def _session_commit(self, message: Message):
        sid = message["session"]
        state = self._sessions.pop(sid, None)
        if state is None:
            self.replica.node.reply(message, committed=False)
            return
        self.phase(sid, AC, "2pc")
        committed = yield self.coordinator.run(
            state["txn_id"],
            [n for n in state["quorum"] if n != self.replica.name],
            local_vote=True,
        )
        self._on_decision(state["txn_id"], committed)
        self.phase(sid, END)
        self.replica.node.reply(message, committed=committed)

    def _on_session_abort(self, message: Message) -> None:
        sid = message["session"]
        state = self._sessions.pop(sid, None)
        if state is not None:
            for site in state["quorum"]:
                if site != self.replica.name:
                    self.replica.node.send(site, "2pc.decision",
                                           txn=state["txn_id"], commit=False)
            self._on_decision(state["txn_id"], False)
        self.replica.node.reply(message, ok=True)

    def _workspace_lookup(self, txn_id: str, item: str):
        for buffered_item, value, version in reversed(self._workspaces.get(txn_id, [])):
            if buffered_item == item:
                return version, value
        return None

    def _workspace_read(self, txn_id: str, item: str):
        """(version, value) from the workspace, falling back to the store."""
        workspace = self._workspace_lookup(txn_id, item)
        if workspace is not None:
            return workspace
        return self.store.version(item), self.store.read(item)

    def _release_everywhere(self, txn_id: str) -> None:
        self.tm.locks.release_all(txn_id)
        if self.write_quorum is not None:
            for site in self.peers():
                self.replica.node.send(site, "2pc.decision", txn=txn_id, commit=False)

    def _abort_everywhere(self, txn_id: str, sites: List[str]):
        for site in sites:
            if site != self.replica.name:
                self.replica.node.send(site, "2pc.decision", txn=txn_id, commit=False)
        self._on_decision(txn_id, False)
        return
        yield  # pragma: no cover - makes this a generator for yield from

    # -- participant side ---------------------------------------------------------

    def _on_lock_request(self, message: Message) -> None:
        self.replica.node.spawn(
            self._grant_lock(message), name=f"ueld-lock-{message['txn']}"
        )

    def _grant_lock(self, message: Message):
        item = message["item"]
        try:
            yield self.tm.locks.acquire(
                message["txn"], item, message["mode"],
                timeout=message["lock_timeout"],
            )
        except TransactionAborted as exc:
            self.replica.node.reply(message, granted=False, reason=str(exc))
            return
        # Piggyback this copy's version and value: the delegate derives the
        # current state from the highest-versioned quorum member.
        self.replica.node.reply(
            message, granted=True, site=self.replica.name,
            version=self.store.version(item), value=self.store.read(item),
        )

    def _on_buffer(self, message: Message) -> None:
        self._workspaces.setdefault(message["txn"], []).append(
            (message["item"], message["value"], message["version"])
        )

    def _on_prepare(self, txn_id: str) -> bool:
        return txn_id in self._workspaces

    def _on_decision(self, txn_id: str, commit: bool) -> None:
        workspace = self._workspaces.pop(txn_id, None)
        if commit and workspace:
            if not txn_id.endswith(f"@{self.replica.name}"):
                # Non-delegate sites record their AC participation; the
                # delegate already recorded AC when it started the 2PC.
                self.phase(txn_id.split("@")[0], AC, "2pc")
            for item, value, version in workspace:
                self.store.write_versioned(item, value, version)
        self.tm.locks.release_all(txn_id)
