"""Eager update everywhere with distributed locking (Section 4.4.1 /
Figure 8; Section 5.4.1 / Figure 13 for multi-operation transactions).

"When using distributed locking, a replica can only be accessed after it
has been locked at all sites" — the Server Coordination phase *is* the
distributed lock acquisition, the Agreement Coordination phase is a 2PC.

Mechanics:

* The client submits to its local replica (the *delegate*), which drives
  the whole protocol — clients never talk to more than one server
  (Section 4.1).
* Per operation (the SC/EX loop of Figure 13):
  - writes: the delegate requests a write lock at **every** replica
    (read-one/write-all; Section 5.4.1 notes quorums are orthogonal) and
    waits for all grants (SC).  It then computes the after-image locally
    and ships it; every site buffers it in the transaction's workspace
    (EX at all sites).
  - reads: performed locally under a local read lock (ROWA — "read
    operations are local").
* Final AC: 2PC across all replicas; commit installs every site's
  workspace and releases its locks.
* END strictly after the 2PC.

Distributed deadlocks — two delegates locking the same items from
different sites — are invisible to any single site's wait-for graph; they
are broken by **lock-wait timeouts** (each remote lock request carries
one), aborting the younger transaction system-wide.  The abort-rate
benchmark measures how quickly this degrades under contention compared
with certification.

``config`` options:

* ``lock_timeout`` — remote lock wait bound (default 40 time units).
* ``write_quorum`` — number of sites locked/written per update (default:
  all live sites, i.e. read-one/write-all).  Section 5.4.1: "The use of
  quorums is orthogonal to this discussion.  Quorums only determine how
  many sites and which of them need to be contacted" — setting a quorum
  W with 2W > n keeps the exact same phase structure while writes touch
  only W sites; reads then contact R = n - W + 1 sites and take the
  highest-versioned copy (Gifford-style weighted voting).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...db import READ, WRITE, TwoPhaseCoordinator, TwoPhaseParticipant
from ...errors import NodeCrashed, TransactionAborted
from ...net import Message
from ..operations import Operation, Request, apply_update
from ..phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep
from ..sessions import ABORT as S_ABORT, BEGIN as S_BEGIN, COMMIT as S_COMMIT, OP as S_OP
from .base import ProtocolInfo, ReplicaProtocol

__all__ = ["EagerUpdateEverywhereLocking"]

LOCK = "ueld.lock"
BUFFER = "ueld.buffer"
SYNC = "ueld.sync"
CATCHUP = "ueld.catchup"


class EagerUpdateEverywhereLocking(ReplicaProtocol):
    """Per-replica endpoint of eager update everywhere via 2PL + 2PC."""

    info = ProtocolInfo(
        name="eager_ue_locking",
        title="Eager update everywhere, distributed locking",
        figure="Figure 8 / Figure 13",
        community="db",
        descriptor=PhaseDescriptor(
            technique="eager_ue_locking",
            steps=(
                PhaseStep(RE),
                PhaseStep(SC, "locks"),
                PhaseStep(EX),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
        ),
        txn_descriptor=PhaseDescriptor(
            technique="eager_ue_locking",
            steps=(
                PhaseStep(RE),
                PhaseStep(SC, "locks"),
                PhaseStep(EX),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
            loop=(1, 2),
        ),
        consistency="strong",
        client_policy="local",
        propagation="eager",
        update_location="everywhere",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        supports_sessions=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.lock_timeout = float(config.get("lock_timeout", 40.0))
        self.write_quorum = config.get("write_quorum")
        if self.write_quorum is not None:
            if not len(group) // 2 < self.write_quorum <= len(group):
                raise ValueError(
                    f"write_quorum must be in ({len(group) // 2}, {len(group)}]"
                )
        self.coordinator = TwoPhaseCoordinator(replica.node, trace=replica.system.trace)
        self.participant = TwoPhaseParticipant(
            replica.node, self._on_prepare, self._on_decision
        )
        self._workspaces: Dict[str, List[tuple]] = {}
        replica.node.on(LOCK, self._on_lock_request)
        replica.node.on(BUFFER, self._on_buffer)
        replica.node.on(SYNC, self._on_sync_request)
        replica.node.on(CATCHUP, self._on_catchup)
        replica.detector.on_suspect(self._on_peer_suspected)
        replica.node.on(S_BEGIN, self._on_session_begin)
        replica.node.on(S_OP, self._on_session_op)
        replica.node.on(S_COMMIT, self._on_session_commit)
        replica.node.on(S_ABORT, self._on_session_abort)
        self._sessions: Dict[str, dict] = {}

    # -- delegate side ------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        if request.read_only:
            self.replica.node.spawn(
                self._execute_read_only(request, client),
                name=f"ueld-ro-{request.request_id}",
            )
            return
        self.replica.node.spawn(
            self._execute(request, client), name=f"ueld-{request.request_id}"
        )

    def _execute_read_only(self, request: Request, client: str):
        """Reads: local under ROWA, quorum reads under weighted voting."""
        rid = request.request_id
        txn_id = f"{rid}@{self.replica.name}"
        self.phase(rid, EX)
        values = []
        try:
            for op in request.operations:
                if self.write_quorum is None:
                    yield self.tm.locks.acquire(
                        txn_id, op.item, READ, timeout=self.lock_timeout
                    )
                    values.append(self.store.read(op.item))
                else:
                    _version, value = yield from self._quorum_read(txn_id, op.item)
                    values.append(value)
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            self._release_everywhere(txn_id)
            self.respond(client, request, committed=False, reason=str(exc))
            return
        self._release_everywhere(txn_id)
        self.respond(client, request, committed=True, values=values)

    def _write_quorum_size(self) -> int:
        """Sites a write must lock: configured quorum, or all-live with a
        majority floor.

        Plain ROWA ("write all live") degrades to quorum-of-one under a
        partition — both sides commit independently and one side's updates
        are silently overwritten after the heal.  Flooring the dynamic
        quorum at a majority of the *full* group keeps any two write
        quorums intersecting: a minority side aborts with "quorum
        unreachable" (a definitive, retryable outcome) instead of
        split-brain committing.
        """
        if self.write_quorum is not None:
            return self.write_quorum
        n_live = len([n for n in self.group
                      if not self.replica.detector.is_suspected(n)])
        return max(n_live, len(self.group) // 2 + 1)

    def busy_elsewhere(self, request: Request) -> bool:
        # A buffered workspace for rid@<other-delegate> means that
        # delegate's 2PC over this request has prepared here but not yet
        # decided; admitting a retry now would race a second execution
        # against the undecided first one.
        rid = request.request_id
        own_suffix = f"@{self.replica.name}"
        return any(
            txn.rsplit("@", 1)[0] == rid and not txn.endswith(own_suffix)
            for txn in self._workspaces
        )

    def _quorum_sites(self, count: int) -> List[str]:
        """``count`` sites starting at this replica, skipping suspected ones."""
        ring = self.group[self.group.index(self.replica.name):] + \
            self.group[:self.group.index(self.replica.name)]
        live = [n for n in ring if n == self.replica.name
                or not self.replica.detector.is_suspected(n)]
        if len(live) < count:
            raise TransactionAborted(self.replica.name, "quorum unreachable")
        return live[:count]

    def _quorum_read(self, txn_id: str, item: str):
        """Read-lock R sites; return the highest-versioned (version, value)."""
        read_quorum = len(self.group) - (self.write_quorum or len(self.group)) + 1
        sites = self._quorum_sites(read_quorum)
        # Same fixed global acquisition order as writes (see
        # _perform_operation): read and write quorums intersect, so an
        # unordered read could form the second edge of a distributed
        # deadlock cycle just as easily.
        replies = []
        for site in sorted(sites):
            reply = yield self.replica.node.call(
                site, LOCK, timeout=self.lock_timeout + 20.0,
                txn=txn_id, item=item, mode=READ, lock_timeout=self.lock_timeout,
            )
            if not reply["granted"]:
                raise TransactionAborted(txn_id, "read quorum denied")
            replies.append(reply)
        best = max(replies, key=lambda r: (r["version"], r["site"]))
        return best["version"], best["value"]

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        txn_id = f"{rid}@{self.replica.name}"
        quorum_size = self._write_quorum_size()
        values: List[Any] = []
        touched: List[str] = [self.replica.name]
        try:
            quorum = self._quorum_sites(quorum_size)
            touched = list(quorum)
            for op in request.operations:
                values.append(
                    (yield from self._perform_operation(rid, txn_id, op, quorum))
                )
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            yield from self._abort_everywhere(txn_id, touched)
            self.respond(client, request, committed=False, reason=str(exc))
            return
        # AC: two-phase commit across the quorum (this site included; it
        # participates through its local workspace/locks like the others).
        self.phase(rid, AC, "2pc")
        committed = yield self.coordinator.run(
            txn_id, [n for n in quorum if n != self.replica.name], local_vote=True
        )
        if committed:
            workspace = list(self._workspaces.get(txn_id, []))
            self._on_decision(txn_id, True)
            self._propagate_to_excluded(txn_id, quorum, workspace)
            self.respond(client, request, committed=True, values=values)
        else:
            self._on_decision(txn_id, False)
            self.respond(client, request, committed=False, reason="2pc abort")

    def _perform_operation(self, rid: str, txn_id: str, op: Operation, quorum):
        """One SC/EX round of Figure 13: lock, compute, buffer at the quorum.

        Generator; returns the operation's client-visible value (None for
        blind writes).  Raises :class:`TransactionAborted` on lock denial.
        """
        if op.kind == "read":
            self.phase(rid, SC, "locks")
            if self.write_quorum is None:
                yield self.tm.locks.acquire(
                    txn_id, op.item, READ, timeout=self.lock_timeout
                )
                self.phase(rid, EX)
                return self._workspace_read(txn_id, op.item)[1]
            workspace = self._workspace_lookup(txn_id, op.item)
            if workspace is None:
                _v, value = yield from self._quorum_read(txn_id, op.item)
            else:
                value = workspace[1]
            self.phase(rid, EX)
            return value
        # SC: write lock at the whole write quorum — acquired sequentially
        # in a fixed global site order.  Parallel acquisition in ring
        # order starting at the delegate (r0 locks r0,r1,r2 while r1
        # locks r1,r2,r0) makes two delegates contending for one item
        # deadlock *every* time, and timeout resolution aborts both, so
        # under sustained retry load they livelock indefinitely.  With a
        # total order the first site arbitrates: the loser waits there
        # holding nothing else, and the winner's round runs unobstructed.
        self.phase(rid, SC, "locks")
        replies = []
        for site in sorted(quorum):
            reply = yield self.replica.node.call(
                site, LOCK, timeout=self.lock_timeout + 20.0,
                txn=txn_id, item=op.item, mode=WRITE,
                lock_timeout=self.lock_timeout,
            )
            if not reply["granted"]:
                raise TransactionAborted(txn_id, "remote lock denied")
            replies.append(reply)
        # EX: compute the after-image once, install it at the quorum.
        # The current value/version come from the transaction's own
        # workspace or from the highest-versioned quorum copy (the
        # write quorum intersects every earlier write quorum).
        self.phase(rid, EX)
        workspace = self._workspace_lookup(txn_id, op.item)
        if workspace is not None:
            current_version, current = workspace
        else:
            best = max(replies, key=lambda r: (r["version"], r["site"]))
            current_version, current = best["version"], best["value"]
        if op.kind == "write":
            new_value = op.argument
        else:
            new_value = apply_update(op.func, current, op.argument, self.rng)
        new_version = current_version + 1
        for site in quorum:
            self.replica.node.send(
                site, BUFFER, txn=txn_id, item=op.item,
                value=new_value, version=new_version,
            )
        return None if op.kind == "write" else new_value

    # -- interactive sessions (Section 5) ----------------------------------------

    def _on_session_begin(self, message: Message) -> None:
        sid = message["session"]
        try:
            quorum = self._quorum_sites(self._write_quorum_size())
        except TransactionAborted as exc:
            self.replica.node.reply(message, ok=False, reason=str(exc))
            return
        self._sessions[sid] = {
            "txn_id": f"{sid}@{self.replica.name}",
            "quorum": quorum,
        }
        self.phase(sid, RE)
        self.replica.node.reply(message, ok=True, reason="")

    def _on_session_op(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_op(message), name=f"ueld-sess-op-{message['session']}"
        )

    def _session_op(self, message: Message):
        sid = message["session"]
        state = self._sessions.get(sid)
        if state is None:
            self.replica.node.reply(message, ok=False, reason="no such session",
                                    value=None)
            return
        op = Operation(message["kind"], message["item"],
                       argument=message["argument"], func=message["func"])
        try:
            value = yield from self._perform_operation(
                sid, state["txn_id"], op, state["quorum"]
            )
        except (TransactionAborted, TimeoutError, NodeCrashed) as exc:
            self._sessions.pop(sid, None)
            yield from self._abort_everywhere(state["txn_id"], state["quorum"])
            self.replica.node.reply(message, ok=False, reason=str(exc), value=None)
            return
        self.replica.node.reply(message, ok=True, reason="", value=value)

    def _on_session_commit(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_commit(message),
            name=f"ueld-sess-commit-{message['session']}",
        )

    def _session_commit(self, message: Message):
        sid = message["session"]
        state = self._sessions.pop(sid, None)
        if state is None:
            self.replica.node.reply(message, committed=False)
            return
        self.phase(sid, AC, "2pc")
        committed = yield self.coordinator.run(
            state["txn_id"],
            [n for n in state["quorum"] if n != self.replica.name],
            local_vote=True,
        )
        workspace = list(self._workspaces.get(state["txn_id"], []))
        self._on_decision(state["txn_id"], committed)
        if committed:
            self._propagate_to_excluded(state["txn_id"], state["quorum"], workspace)
        self.phase(sid, END)
        self.replica.node.reply(message, committed=committed)

    def _on_session_abort(self, message: Message) -> None:
        sid = message["session"]
        state = self._sessions.pop(sid, None)
        if state is not None:
            for site in state["quorum"]:
                if site != self.replica.name:
                    self.replica.node.send(site, "2pc.decision",
                                           txn=state["txn_id"], commit=False)
            self._on_decision(state["txn_id"], False)
        self.replica.node.reply(message, ok=True)

    def _workspace_lookup(self, txn_id: str, item: str):
        for buffered_item, value, version in reversed(self._workspaces.get(txn_id, [])):
            if buffered_item == item:
                return version, value
        return None

    def _workspace_read(self, txn_id: str, item: str):
        """(version, value) from the workspace, falling back to the store."""
        workspace = self._workspace_lookup(txn_id, item)
        if workspace is not None:
            return workspace
        return self.store.version(item), self.store.read(item)

    def _release_everywhere(self, txn_id: str) -> None:
        self.tm.locks.release_all(txn_id)
        if self.write_quorum is not None:
            for site in self.peers():
                self.replica.node.send(site, "2pc.decision", txn=txn_id, commit=False)

    def _abort_everywhere(self, txn_id: str, sites: List[str]):
        for site in sites:
            if site != self.replica.name:
                self.replica.node.send(site, "2pc.decision", txn=txn_id, commit=False)
        self._on_decision(txn_id, False)
        return
        yield  # pragma: no cover - makes this a generator for yield from

    # -- participant side ---------------------------------------------------------

    def _on_lock_request(self, message: Message) -> None:
        self.replica.node.spawn(
            self._grant_lock(message), name=f"ueld-lock-{message['txn']}"
        )

    def _grant_lock(self, message: Message):
        item = message["item"]
        try:
            yield self.tm.locks.acquire(
                message["txn"], item, message["mode"],
                timeout=message["lock_timeout"],
            )
        except TransactionAborted as exc:
            self.replica.node.reply(message, granted=False, reason=str(exc))
            return
        # Piggyback this copy's version and value: the delegate derives the
        # current state from the highest-versioned quorum member.
        self.replica.node.reply(
            message, granted=True, site=self.replica.name,
            version=self.store.version(item), value=self.store.read(item),
        )

    def _propagate_to_excluded(self, txn_id: str, quorum, workspace) -> None:
        """Best-effort after-image propagation to non-quorum group members.

        The majority floor (see :meth:`_write_quorum_size`) means a
        commit's synchronous quorum may exclude live sites — typically a
        replica that just recovered but is still suspected by the
        delegate.  Shipping the committed after-images to the excluded
        members keeps them converging instead of silently diverging until
        the next full-group write.  Versioned installs make this
        idempotent and safe to lose (a crashed member re-pulls on
        recovery).

        Only the dynamic ROWA mode repairs exclusions: under an explicit
        ``write_quorum`` (weighted voting), touching exactly W sites is
        the design — readers pay for the staleness with R-site reads —
        not a degradation to patch up.
        """
        if self.write_quorum is not None or not workspace:
            return
        excluded = [
            site for site in self.group
            if site != self.replica.name and site not in quorum
        ]
        for site in excluded:
            self.replica.node.send(
                site, CATCHUP, txn=txn_id,
                state=[[item, value, version] for item, value, version in workspace],
            )

    def _on_catchup(self, message: Message) -> None:
        for item, value, version in message["state"]:
            self.store.write_versioned(item, value, version)
        # The catch-up carries a committed transaction: remember it under
        # its request id so a client retry re-homed here is deduplicated.
        self.replica.remember_reply(message["txn"].rsplit("@", 1)[0], [])

    def _on_buffer(self, message: Message) -> None:
        self._workspaces.setdefault(message["txn"], []).append(
            (message["item"], message["value"], message["version"])
        )

    def _on_prepare(self, txn_id: str, coordinator: str) -> bool:
        # Update everywhere has no primacy to fence on; any delegate may
        # coordinate.  Vote yes iff this site buffered the workspace.
        return txn_id in self._workspaces

    # -- failure handling ---------------------------------------------------------

    def _on_peer_suspected(self, peer: str) -> None:
        """Abort a suspected delegate's *unprepared* transactions locally.

        A delegate that crashes mid-round can never send its abort
        decisions, so the locks it was granted here would wedge this copy
        of every item it touched forever (and with ordered acquisition,
        one wedged first-site lock stalls the whole group).  Releasing on
        suspicion is safe even when the suspicion is false: dropping the
        workspace means this site votes NO on any later PREPARE for the
        transaction, so the live delegate's round aborts instead of
        committing over state it no longer locks.  Transactions that
        already *prepared* here stay blocked — that is 2PC's documented
        blocking behaviour, repaired by the termination protocol once the
        coordinator's journal is reachable again.
        """
        suffix = f"@{peer}"
        candidates = set(self._workspaces) | self.tm.locks.holding_transactions()
        for txn_id in sorted(candidates, key=str):
            if not isinstance(txn_id, str) or not txn_id.endswith(suffix):
                continue
            if self.participant.blocked_for(txn_id) is not None:
                continue
            self._workspaces.pop(txn_id, None)
            self.tm.locks.release_all(txn_id)

    # -- recovery -----------------------------------------------------------------

    def on_recover(self) -> None:
        """Catch up after a restart.

        Volatile state (workspaces, sessions) died with the node.  The
        store survived, but the surviving majority kept committing while
        this site was suspected — its write quorums simply stopped
        including us — so the local copies may be arbitrarily stale.  Pull
        every live peer's store and install whatever is newer (versions
        make the merge idempotent) before serving delegates again.
        """
        self._workspaces.clear()
        self._sessions.clear()
        self.replica.node.spawn(
            self._resync(), name=f"{self.replica.name}-resync"
        )

    def _resync(self):
        for peer in self.peers():
            if self.replica.detector.is_suspected(peer):
                continue
            try:
                reply = yield self.replica.node.call(peer, SYNC, timeout=60.0)
            except (TimeoutError, NodeCrashed):
                continue
            for item, value, version in reply["state"]:
                self.store.write_versioned(item, value, version)

    def _on_sync_request(self, message: Message) -> None:
        self.replica.node.reply(
            message,
            state=[
                [item, versioned.value, versioned.version]
                for item, versioned in self.store.items()
            ],
        )

    def _on_decision(self, txn_id: str, commit: bool) -> None:
        workspace = self._workspaces.pop(txn_id, None)
        if commit and workspace:
            if not txn_id.endswith(f"@{self.replica.name}"):
                # Non-delegate sites record their AC participation; the
                # delegate already recorded AC when it started the 2PC.
                self.phase(txn_id.split("@")[0], AC, "2pc")
                # And remember the commit under the request id (default
                # idempotency key) so a retry re-homed to this site after
                # the delegate crashed is deduplicated, not re-executed.
                # The delegate itself caches real values via respond().
                self.replica.remember_reply(txn_id.rsplit("@", 1)[0], [])
            for item, value, version in workspace:
                self.store.write_versioned(item, value, version)
        self.tm.locks.release_all(txn_id)
