"""Certification-based database replication (Section 5.4.2, Figure 14).

The optimistic member of the family: "it makes sense ... to use shadow
copies at one site to perform the operations and then, once the
transaction is completed, send all the changes in one single message.
... the agreement coordination phase ... involves deciding whether the
operations can be executed correctly ... a certification step during
which sites make sure they can execute transactions in the order
specified by the total order established by ABCAST."

Figure 16 classifies these techniques as the only update-everywhere ones
without an initial SC phase: "optimistic in the sense that they do the
processing without initial synchronisation, and abort transactions in
order to maintain consistency".

Mechanics:

* RE: the client contacts its local replica (the *delegate*).
* EX: the delegate executes the whole transaction on **shadow copies** —
  no locks, no communication — recording the readset (items + versions)
  and buffering the writeset.
* The (readset, writeset) pair is ABCAST to all replicas.
* AC = **certification**: each replica runs the identical deterministic
  test (:class:`~repro.db.Certifier`) in delivery order; passing
  writesets are applied, failing transactions abort everywhere without
  any extra message round.
* END: the delegate reports commit or abort to the client.

``config`` options:

* ``abcast`` — ``"consensus"`` (default) or ``"sequencer"``.
* ``certification_mode`` — ``"read"`` (backward validation, default) or
  ``"write"`` (first-committer-wins ablation).
* ``processing_time`` — simulated cost of the validation/apply work on
  the reply path (default 0: the pure protocol skeleton).
* ``optimistic`` — use :class:`~repro.groupcomm.OptimisticAtomicBroadcast`
  ([KPAS99a], the DRAGON result the paper's introduction describes):
  sites start the certification work at *tentative* delivery, overlapping
  it with the ordering protocol; when the final order confirms the
  tentative one (the common LAN case), the reply goes out without paying
  ``processing_time`` again — the group-communication overhead is hidden
  behind transaction processing.
"""

from __future__ import annotations

import itertools
from typing import Dict, Set

from collections import deque

from ...db import Certifier, UpdateRecord
from ...groupcomm import (
    ConsensusAtomicBroadcast,
    OptimisticAtomicBroadcast,
    SequencerAtomicBroadcast,
)
from ..operations import Request
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, optimistic_execute

__all__ = ["CertificationReplication"]


class CertificationReplication(ReplicaProtocol):
    """Per-replica endpoint of certification-based replication."""

    info = ProtocolInfo(
        name="certification",
        title="Certification-based replication",
        figure="Figure 14",
        community="db",
        descriptor=PhaseDescriptor(
            technique="certification",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX, "shadow"),
                PhaseStep(AC, "abcast+certification"),
                PhaseStep(END),
            ),
        ),
        consistency="strong",
        client_policy="local",
        propagation="eager",
        update_location="everywhere",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        reads_anywhere=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        mode = config.get("certification_mode", "read")
        self.certifier = Certifier(self.store, mode=mode)
        self.processing_time = float(config.get("processing_time", 0.0))
        self.optimistic = bool(config.get("optimistic", False))
        flavour = config.get("abcast", "consensus")
        if self.optimistic:
            self.abcast = OptimisticAtomicBroadcast(
                replica.node, replica.transport, group, replica.detector,
                opt_deliver=self._on_tentative,
                final_deliver=self._on_final_optimistic,
                flavour=flavour, trace=replica.system.trace,
                channel_prefix="cert",
            )
        elif flavour == "sequencer":
            self.abcast = SequencerAtomicBroadcast(
                replica.node, replica.transport, group, self._on_deliver,
                trace=replica.system.trace, channel_prefix="cert",
            )
        else:
            self.abcast = ConsensusAtomicBroadcast(
                replica.node, replica.transport, group, replica.detector,
                self._on_deliver, trace=replica.system.trace,
                channel_prefix="cert",
            )
        self._certified: Set[str] = set()
        self._local_values: Dict[str, list] = {}
        self._local_clients: Dict[str, str] = {}
        # Per-broadcast execution nonce: _certified is keyed by it so a
        # duplicated delivery of one broadcast certifies once, while a
        # client retry (a *new* optimistic execution of the same request
        # after an abort) gets a fresh certification instead of being
        # silently swallowed at every replica.
        self._exec_seq = itertools.count(1)
        # Speculative-processing pipeline (optimistic mode): work started
        # at tentative delivery, consumed at final delivery.
        self._spec_queue: deque = deque()
        self._spec_busy = False
        self._spec_finish_at: Dict[str, float] = {}

    # -- delegate side ----------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if request.read_only:
            self.phase(rid, EX, "shadow")
            values = [self.store.read(op.item) for op in request.operations]
            self.respond(client, request, committed=True, values=values)
            return
        # EX on shadow copies, before any coordination (optimistic).
        self.phase(rid, EX, "shadow")
        values, readset, writeset, base_versions = optimistic_execute(
            self.store, request, self.rng
        )
        self._local_values[rid] = values
        self._local_clients[rid] = client
        self.abcast.abcast(
            "certify",
            request=request.as_wire(),
            readset=readset,
            writeset=[record.as_wire() for record in writeset],
            base_versions=base_versions,
            delegate=self.replica.name,
            exec=f"{self.replica.name}:{next(self._exec_seq)}",
        )

    # -- everywhere: totally ordered certification ---------------------------------

    def _on_deliver(self, origin: str, mtype: str, body: dict) -> None:
        """Classic path: certify at final delivery, pay processing there."""
        self._certify_and_reply(body, extra_delay=self.processing_time)

    def _certify_and_reply(self, body: dict, extra_delay: float) -> None:
        request = Request.from_wire(body["request"])
        rid = request.request_id
        exec_id = body.get("exec", rid)
        if exec_id in self._certified:
            return
        self._certified.add(exec_id)
        cached = self.replica.cached_reply(request.idempotency_key)
        if cached is not None:
            # An earlier attempt of this request already committed; this
            # broadcast is a retry that raced the first commit's delivery.
            # Certifying it against the already-applied writeset would
            # double-apply, so replay the commit instead.
            if body["delegate"] == self.replica.name:
                client = self._local_clients.pop(rid, None)
                self._local_values.pop(rid, None)
                if client is not None:
                    self.respond(client, request, committed=True, values=cached)
            return
        self.phase(rid, AC, "certification")
        writeset = [UpdateRecord.from_wire(wire) for wire in body["writeset"]]
        outcome = self.certifier.certify(
            body["readset"], writeset, base_versions=body["base_versions"]
        )
        if outcome.committed:
            # Cache the commit at *every* replica, not just the delegate:
            # a retry after the delegate crashed must not re-run the
            # optimistic execution against the already-applied writeset
            # (it would certify cleanly and double-apply).  Non-delegates
            # never saw the read values, so they cache an empty value list
            # — the retrying client still gets its committed verdict.
            self.replica.remember_reply(
                request.idempotency_key, self._local_values.get(rid, [])
            )
        if body["delegate"] != self.replica.name:
            return
        client = self._local_clients.pop(rid, None)
        values = self._local_values.pop(rid, [])
        if client is None:
            return

        def reply() -> None:
            if outcome.committed:
                self.respond(client, request, committed=True, values=values)
            else:
                self.respond(
                    client, request, committed=False,
                    reason=f"certification conflict on {outcome.conflicts}",
                )

        if extra_delay > 0:
            self.replica.node.after(extra_delay, reply)
        else:
            reply()

    # -- optimistic path ([KPAS99a]) -------------------------------------------------

    def _on_tentative(self, origin: str, mtype: str, body: dict) -> None:
        """Start the certification work as soon as the message arrives."""
        if self.processing_time <= 0:
            return
        rid = Request.from_wire(body["request"]).request_id
        self._spec_queue.append(rid)
        self._pump_speculation()

    def _pump_speculation(self) -> None:
        if self._spec_busy or not self._spec_queue:
            return
        self._spec_busy = True
        rid = self._spec_queue.popleft()
        self._spec_finish_at[rid] = self.sim.now + self.processing_time

        def work():
            yield self.sim.timeout(self.processing_time)
            self._spec_busy = False
            self._pump_speculation()

        self.replica.node.spawn(work(), name=f"cert-spec-{rid}")

    def _on_final_optimistic(self, origin: str, mtype: str, body: dict,
                             matched: bool) -> None:
        rid = Request.from_wire(body["request"]).request_id
        # Valid speculation continues where it stands: the reply only
        # waits for the *remaining* work, i.e. the part of the processing
        # the ordering latency did not manage to hide.  A mismatch means
        # the speculative work is worthless and the full cost is paid.
        if matched and rid in self._spec_finish_at:
            remaining = max(0.0, self._spec_finish_at[rid] - self.sim.now)
        else:
            remaining = self.processing_time
        self._certify_and_reply(body, extra_delay=remaining)

    # -- introspection ------------------------------------------------------------

    @property
    def abort_rate(self) -> float:
        return self.certifier.abort_rate
