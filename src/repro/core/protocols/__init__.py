"""The paper's replication techniques, one module each.

``REGISTRY`` maps technique names to protocol classes; it is the lookup
table behind :class:`~repro.core.system.ReplicatedSystem` and the
classification figures.
"""

from .active import ActiveReplication
from .base import ProtocolInfo, ReplicaProtocol
from .certification import CertificationReplication
from .eager_primary import EagerPrimaryCopy
from .eager_ue_abcast import EagerUpdateEverywhereAbcast
from .eager_ue_locking import EagerUpdateEverywhereLocking
from .lazy_primary import LazyPrimaryCopy
from .lazy_ue import LazyUpdateEverywhere
from .passive import PassiveReplication
from .semi_active import SemiActiveReplication
from .semi_passive import SemiPassiveReplication

REGISTRY = {
    cls.info.name: cls
    for cls in (
        ActiveReplication,
        PassiveReplication,
        SemiActiveReplication,
        SemiPassiveReplication,
        EagerPrimaryCopy,
        EagerUpdateEverywhereLocking,
        EagerUpdateEverywhereAbcast,
        LazyPrimaryCopy,
        LazyUpdateEverywhere,
        CertificationReplication,
    )
}

DS_TECHNIQUES = [name for name, cls in REGISTRY.items() if cls.info.community == "ds"]
DB_TECHNIQUES = [name for name, cls in REGISTRY.items() if cls.info.community == "db"]

__all__ = [
    "REGISTRY",
    "DS_TECHNIQUES",
    "DB_TECHNIQUES",
    "ProtocolInfo",
    "ReplicaProtocol",
    "ActiveReplication",
    "PassiveReplication",
    "SemiActiveReplication",
    "SemiPassiveReplication",
    "EagerPrimaryCopy",
    "EagerUpdateEverywhereLocking",
    "EagerUpdateEverywhereAbcast",
    "LazyPrimaryCopy",
    "LazyUpdateEverywhere",
    "CertificationReplication",
]
