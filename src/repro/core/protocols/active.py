"""Active replication — the state-machine approach (Section 3.2, Figure 2).

"All replicas receive and process the same sequence of client requests.
Consistency is guaranteed by assuming that, when provided with the same
input in the same order, replicas will produce the same output."

Mechanics reproduced here:

* The client addresses the *group* (policy ``"all"``): its request reaches
  every replica, merging the RE and SC phases into the atomic broadcast.
* Replicas order requests with ABCAST.  To avoid every replica injecting
  every request into the broadcast, the lowest live replica injects and
  the others arm a fallback timer — if the injector crashes, they inject
  themselves, preserving failure transparency.
* Execution is deterministic state-machine application in delivery order;
  there is **no Agreement Coordination phase** (Figure 2: "phase AC is not
  used"), since identical inputs in identical order yield identical state.
* Every replica responds; "the client typically only waits for the first
  answer (the others are ignored)".

The determinism requirement is real, not stylised: submit an operation
using the ``random_token`` update function and the replicas genuinely
diverge (each draws from its own RNG) — the failure mode that motivates
passive replication.

``config`` options:

* ``abcast`` — ``"consensus"`` (default; crash-tolerant Chandra–Toueg
  reduction) or ``"sequencer"`` (cheap fixed sequencer for failure-free
  experiments).
* ``inject_fallback`` — how long a non-injector waits before injecting a
  client request itself (default 30 time units).
"""

from __future__ import annotations

from typing import Dict, Set

from ...groupcomm import ConsensusAtomicBroadcast, SequencerAtomicBroadcast
from ..operations import Request
from ..phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, apply_request_to_store

__all__ = ["ActiveReplication"]


class ActiveReplication(ReplicaProtocol):
    """Per-replica endpoint of the active replication technique."""

    info = ProtocolInfo(
        name="active",
        title="Active replication",
        figure="Figure 2",
        community="ds",
        descriptor=PhaseDescriptor(
            technique="active",
            steps=(
                PhaseStep(RE, "abcast"),
                PhaseStep(SC, "abcast", merged_with=RE),
                PhaseStep(EX),
                PhaseStep(END),
            ),
        ),
        consistency="strong",
        client_policy="all",
        failure_transparent=True,
        requires_determinism=True,
        supports_multi_op=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.fallback = float(config.get("inject_fallback", 30.0))
        flavour = config.get("abcast", "consensus")
        if flavour == "sequencer":
            self.abcast = SequencerAtomicBroadcast(
                replica.node, replica.transport, group, self._on_deliver,
                trace=replica.system.trace,
            )
        else:
            self.abcast = ConsensusAtomicBroadcast(
                replica.node, replica.transport, group, replica.detector,
                self._on_deliver, trace=replica.system.trace,
            )
        self._executed: Set[str] = set()
        self._awaiting_order: Dict[str, tuple] = {}
        # If the replica responsible for injecting requests is suspected,
        # take over its pending work at detection time instead of waiting
        # for the fallback timer — keeps the crash fully masked.
        replica.detector.on_suspect(lambda _peer: self._inject_all_pending())

    # -- request path -----------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if rid in self._executed or rid in self._awaiting_order:
            return
        self._awaiting_order[rid] = (request, client)
        if self._am_injector():
            self._inject(rid)
        else:
            self.replica.node.after(self.fallback, self._inject_if_pending, rid)

    def _am_injector(self) -> bool:
        for name in self.group:
            if name == self.replica.name:
                return True
            if not self.replica.detector.is_suspected(name):
                return False
        return False

    def _inject_if_pending(self, rid: str) -> None:
        if rid in self._awaiting_order and rid not in self._executed:
            self._inject(rid)

    def _inject_all_pending(self) -> None:
        if not self._am_injector():
            return
        for rid in list(self._awaiting_order):
            self._inject_if_pending(rid)

    def _inject(self, rid: str) -> None:
        request, client = self._awaiting_order[rid]
        self.abcast.abcast("request", request=request.as_wire(), client=client)

    # -- ordered delivery ----------------------------------------------------

    def _on_deliver(self, origin: str, mtype: str, body: dict) -> None:
        request = Request.from_wire(body["request"])
        rid = request.request_id
        if rid in self._executed:
            return  # a second replica also injected it; ignore duplicates
        self._executed.add(rid)
        self._awaiting_order.pop(rid, None)
        self.phase(rid, SC, "abcast")
        self.phase(rid, EX)
        values, _updates = apply_request_to_store(self.store, request, self.rng)
        # Every replica answers; the client keeps the first response.
        self.respond(body["client"], request, committed=True, values=values)
