"""Passive (primary-backup) replication (Section 3.3, Figure 3).

"Clients send their requests to a primary, which executes the requests and
sends update messages to the backups.  The backups do not execute the
invocation, but apply the changes produced by the invocation execution at
the primary."

Faithful points:

* **No Server Coordination phase** — the primary alone orders execution.
* The update is propagated with **VSCAST** (Section 3.3 explains FIFO
  alone cannot survive a primary failover; the view-synchronous broadcast
  orders a faulty primary's last updates against the new primary's).
* Non-determinism is fine: only the primary executes; backups apply
  after-images.  ``random_token`` operations are safe here.
* **Failures are not transparent to clients** (Figure 5): if the primary
  crashes, the client times out, the membership installs a new view, the
  directory flips to the new primary (the first member of the new view)
  and the client re-submits.
* Exactly-once across failover: the primary's response values travel with
  the vscast update, so a backup promoted to primary answers re-submitted
  requests from its result cache instead of re-executing them.

``config`` options: none.
"""

from __future__ import annotations

from typing import Dict

from ...db import TransactionUpdates
from ...errors import TransactionAborted
from ...groupcomm import View, ViewSyncGroup
from ..operations import Request
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from .base import ProtocolInfo, ReplicaProtocol, run_transaction

__all__ = ["PassiveReplication"]


class PassiveReplication(ReplicaProtocol):
    """Per-replica endpoint of primary-backup replication."""

    info = ProtocolInfo(
        name="passive",
        title="Passive (primary-backup) replication",
        figure="Figure 3",
        community="ds",
        descriptor=PhaseDescriptor(
            technique="passive",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX),
                PhaseStep(AC, "vscast"),
                PhaseStep(END),
            ),
        ),
        consistency="strong",
        client_policy="primary",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.results_cache: Dict[str, list] = {}
        replica.node.on("passive.forward", self._on_forward)
        self.view_group = ViewSyncGroup(
            replica.node,
            replica.transport,
            replica.detector,
            group,
            self._on_vs_deliver,
            on_view_change=self._on_view_change,
            get_state=self._state_snapshot,
            set_state=self._state_install,
            trace=replica.system.trace,
        )

    # -- membership --------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return (
            self.view_group.member
            and not self.view_group.excluded
            and self.view_group.view.members[0] == self.replica.name
        )

    def _on_view_change(self, view: View) -> None:
        # All surviving members install the same view, so they agree on the
        # new primary; updating the shared directory models the name
        # service clients consult on retry.
        self.replica.system.directory.set_primary(view.members[0])

    def _state_snapshot(self):
        return {
            "store": [
                [item, versioned.value, versioned.version]
                for item, versioned in self.store.items()
            ],
            "results": dict(self.results_cache),
        }

    def _state_install(self, state) -> None:
        if state is None:
            return
        for item, value, version in state["store"]:
            self.store.write_versioned(item, value, version)
        self.results_cache.update(state["results"])

    # -- request path ------------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        rid = request.request_id
        if rid in self.results_cache:
            # Re-submitted after failover; the update already reached us
            # view-synchronously, so answer from the cache.
            self.respond(client, request, committed=True, values=self.results_cache[rid])
            return
        # A primary deposed during the lock waits still commits locally,
        # but the view-synchronous broadcast fences the update: a vscast
        # issued in the old view is never delivered in the new one, so
        # the role check needs no post-wait revalidation.
        if not self.is_primary:  # repro: noqa R602
            # Stale directory entry: forward to the current primary.
            primary = self.view_group.view.members[0]
            if primary != self.replica.name:
                self.replica.node.send(
                    primary, "passive.forward",
                    request=request.as_wire(), client=client,
                )
            return
        self.replica.node.spawn(
            self._execute(request, client), name=f"passive-{rid}"
        )

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        self.phase(rid, EX)
        try:
            values, updates = yield from run_transaction(
                self.tm, request, self.rng, txn_id=f"{rid}@{self.replica.name}"
            )
        except TransactionAborted as exc:
            self.respond(client, request, committed=False, reason=str(exc))
            return
        self.phase(rid, AC, "vscast")
        self.view_group.vscast(
            "apply", request_id=rid, updates=updates.as_wire(), values=values
        )
        # The local vscast delivery is synchronous, so by the time we get
        # here the result cache already holds rid; respond to the client.
        self.respond(client, request, committed=True, values=values)

    # -- backup path --------------------------------------------------------------

    def _on_vs_deliver(self, origin: str, mtype: str, body: dict) -> None:
        if mtype != "apply":
            return
        rid = body["request_id"]
        if rid in self.results_cache:
            return
        self.results_cache[rid] = body["values"]
        if origin != self.replica.name:
            # Backups record their part of the Agreement Coordination
            # phase and install the primary's after-images.
            self.phase(rid, AC, "vscast")
            self.tm.apply_updates(TransactionUpdates.from_wire(body["updates"]))

    def _on_forward(self, message) -> None:
        self.handle_request(Request.from_wire(message["request"]), message["client"])

    # -- recovery -----------------------------------------------------------------

    def on_recover(self) -> None:
        """Re-join the group after a restart.

        The surviving members excluded this replica via a view change when
        it crashed, so membership does not come back for free: the
        restarted backup asks to join, and the lowest-ranked survivor
        transfers current state (store + result cache) with the INSTALL
        message — without this, a recovered backup would serve from a
        stale store forever.
        """
        self.view_group.join(self.peers())
