"""Eager primary copy replication (Section 4.3 / Figure 7; Section 5.2 /
Figure 12 for multi-operation transactions).

The database hot-standby scheme: "an update operation is first performed
at a primary master copy and then propagated from this master copy to the
secondary copies.  When the primary has the confirmation that the
secondary copies have performed the update, it commits and returns a
notification to the user."

Mechanics:

* Clients send update transactions to the primary (reads may go to any
  site — "Reading transactions can be performed on any site", served
  locally by every replica).
* **No Server Coordination phase** — the primary orders everything.
* EX at the primary through its strict-2PL transaction manager;
  after each operation the resulting after-images are propagated to the
  secondaries which buffer them in a per-transaction workspace (the
  Execution/Agreement loop of Figure 12 — for single-operation
  transactions this collapses to Figure 7's single round).
* Final AC: a **two-phase commit**.  Secondaries vote, and on commit
  install the buffered workspace atomically.  Per Section 4.3, 2PC rather
  than VSCAST suffices because a primary failure simply aborts all its
  active transactions.
* END strictly after 2PC — this is the *eager* variant; the response
  never precedes agreement.

Failover: the replicas' failure detectors watch the primary; when it is
suspected, the lowest live secondary appoints itself (modelling the
paper's "human operator can reconfigure the system so that the back-up is
the new primary"), updates the directory, resolves in-doubt 2PC
transactions cooperatively (commit if any peer saw commit, else abort) and
takes over.  Clients notice the failure (timeout) and re-submit — database
failover is explicitly *not* transparent.

``config`` options: none.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...db import TwoPhaseCoordinator, TwoPhaseParticipant
from ...errors import TransactionAborted
from ...net import Message
from ..operations import Operation, Request, apply_update
from ..phases import AC, END, EX, RE, PhaseDescriptor, PhaseStep
from ..sessions import ABORT as S_ABORT, BEGIN as S_BEGIN, COMMIT as S_COMMIT, OP as S_OP
from .base import ProtocolInfo, ReplicaProtocol

__all__ = ["EagerPrimaryCopy"]

OP_APPLY = "ep.op_apply"
QUERY_INDOUBT = "ep.indoubt_query"
SYNC = "ep.sync"
SYNC_PUSH = "ep.sync_push"


class EagerPrimaryCopy(ReplicaProtocol):
    """Per-replica endpoint of eager primary copy (hot standby)."""

    info = ProtocolInfo(
        name="eager_primary",
        title="Eager primary copy",
        figure="Figure 7 / Figure 12",
        community="db",
        descriptor=PhaseDescriptor(
            technique="eager_primary",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
        ),
        txn_descriptor=PhaseDescriptor(
            technique="eager_primary",
            steps=(
                PhaseStep(RE),
                PhaseStep(EX),
                PhaseStep(AC, "propagation"),
                PhaseStep(AC, "2pc"),
                PhaseStep(END),
            ),
            loop=(1, 2),
        ),
        consistency="strong",
        client_policy="primary",
        propagation="eager",
        update_location="primary",
        failure_transparent=False,
        requires_determinism=False,
        supports_multi_op=True,
        reads_anywhere=True,
        supports_sessions=True,
    )

    def __init__(self, replica, group, config) -> None:
        super().__init__(replica, group, config)
        self.coordinator = TwoPhaseCoordinator(replica.node, trace=replica.system.trace)
        self.participant = TwoPhaseParticipant(
            replica.node, self._on_prepare, self._on_decision
        )
        self._workspaces: Dict[str, List[tuple]] = {}
        self._decided: Dict[str, bool] = {}
        replica.node.on(OP_APPLY, self._on_op_apply)
        replica.node.on(QUERY_INDOUBT, self._on_indoubt_query)
        replica.node.on(SYNC, self._on_sync_request)
        replica.node.on(SYNC_PUSH, self._on_sync_push)
        replica.node.on(S_BEGIN, self._on_session_begin)
        replica.node.on(S_OP, self._on_session_op)
        replica.node.on(S_COMMIT, self._on_session_commit)
        replica.node.on(S_ABORT, self._on_session_abort)
        self._sessions: Dict[str, dict] = {}
        replica.detector.on_suspect(self._on_suspect)
        replica.detector.on_restore(self._on_peer_restored)

    # -- role ------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.replica.system.directory.primary == self.replica.name

    def _live_peers(self) -> List[str]:
        return [
            name for name in self.peers()
            if not self.replica.detector.is_suspected(name)
        ]

    # -- request path ---------------------------------------------------------

    def handle_request(self, request: Request, client: str) -> None:
        if request.read_only:
            # Reads are local at any site (possibly returning data that is
            # current as of the last installed update).
            self.phase(request.request_id, EX)
            values = [self.store.read(op.item) for op in request.operations]
            self.respond(client, request, committed=True, values=values)
            return
        # The success path re-fences this check at _execute's 2PC
        # boundary; the only unfenced effect after it is the abort-path
        # failure reply, which exercises no primary authority.
        if not self.is_primary:  # repro: noqa R602
            self.respond(
                client, request, committed=False,
                reason=f"not primary (primary is {self.replica.system.directory.primary})",
            )
            return
        self.replica.node.spawn(
            self._execute(request, client), name=f"ep-{request.request_id}"
        )

    def _execute(self, request: Request, client: str):
        rid = request.request_id
        txn = self.tm.begin(f"{rid}@primary")
        values: List[Any] = []
        secondaries = self._live_peers()
        try:
            for op in request.operations:
                self.phase(rid, EX)
                if op.kind == "read":
                    values.append((yield txn.read(op.item)))
                    continue
                if op.kind == "write":
                    new_value = op.argument
                else:
                    current = yield txn.read(op.item)
                    new_value = apply_update(op.func, current, op.argument, self.rng)
                yield txn.write(op.item, new_value)
                values.append(None if op.kind == "write" else new_value)
                # Per-operation change propagation (Figure 12's EX/AC loop).
                self.phase(rid, AC, "propagation")
                for secondary in secondaries:
                    self.replica.node.send(
                        secondary, OP_APPLY, txn=rid, item=op.item, value=new_value
                    )
        except TransactionAborted as exc:
            txn.abort()
            for secondary in secondaries:
                self.replica.node.send(secondary, "2pc.decision", txn=rid, commit=False)
            self.respond(client, request, committed=False, reason=str(exc))
            return
        # Final Agreement Coordination: two-phase commit.  A primary that
        # was deposed while executing (false suspicion flipped the
        # directory) must not start the round: participants would fence
        # its prepares anyway, and aborting here releases locks sooner
        # and gives the client a retryable routing miss.
        if not self.is_primary:
            txn.abort()
            for secondary in secondaries:
                self.replica.node.send(secondary, "2pc.decision", txn=rid, commit=False)
            self.respond(
                client, request, committed=False,
                reason=f"not primary (primary is {self.replica.system.directory.primary})",
            )
            return
        self.phase(rid, AC, "2pc")
        committed = yield self.coordinator.run(rid, secondaries, local_vote=True)
        if committed:
            txn.commit()
            self._decided[rid] = True
            self.respond(client, request, committed=True, values=values)
        else:
            txn.abort()
            self._decided[rid] = False
            self.respond(client, request, committed=False, reason="2pc abort")

    # -- interactive sessions (Section 5) --------------------------------------------

    def _on_session_begin(self, message: Message) -> None:
        sid = message["session"]
        if not self.is_primary:
            self.replica.node.reply(
                message, ok=False,
                reason=f"not primary (primary is {self.replica.system.directory.primary})",
            )
            return
        txn = self.tm.begin(f"{sid}@primary")
        self._sessions[sid] = {
            "txn": txn,
            "secondaries": self._live_peers(),
        }
        self.phase(sid, RE)
        self.replica.node.reply(message, ok=True, reason="")

    def _on_session_op(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_op(message), name=f"ep-sess-op-{message['session']}"
        )

    def _session_op(self, message: Message):
        sid = message["session"]
        state = self._sessions.get(sid)
        if state is None:
            self.replica.node.reply(message, ok=False, reason="no such session",
                                    value=None)
            return
        txn = state["txn"]
        op = Operation(message["kind"], message["item"],
                       argument=message["argument"], func=message["func"])
        try:
            self.phase(sid, EX)
            if op.kind == "read":
                value = yield txn.read(op.item)
            else:
                if op.kind == "write":
                    value = op.argument
                else:
                    current = yield txn.read(op.item)
                    value = apply_update(op.func, current, op.argument, self.rng)
                yield txn.write(op.item, value)
                # The lock waits above are suspension points: a
                # concurrent session abort may have cleaned this session
                # up (rolling its transaction back) while we were
                # parked.  Re-read the session instead of trusting the
                # pre-wait snapshot before propagating the write.
                state = self._sessions.get(sid)
                if state is None:
                    self.replica.node.reply(message, ok=False,
                                            reason="session closed",
                                            value=None)
                    return
                # Per-operation change propagation, exactly as in the
                # one-shot multi-operation path (Figure 12's EX/AC loop).
                self.phase(sid, AC, "propagation")
                for secondary in state["secondaries"]:
                    self.replica.node.send(
                        secondary, OP_APPLY, txn=sid, item=op.item, value=value
                    )
        except TransactionAborted as exc:
            self._session_cleanup(sid, commit=False)
            self.replica.node.reply(message, ok=False, reason=str(exc), value=None)
            return
        self.replica.node.reply(message, ok=True, reason="",
                                value=None if op.kind == "write" else value)

    def _on_session_commit(self, message: Message) -> None:
        self.replica.node.spawn(
            self._session_commit(message), name=f"ep-sess-commit-{message['session']}"
        )

    def _session_commit(self, message: Message):
        sid = message["session"]
        state = self._sessions.get(sid)
        if state is None:
            self.replica.node.reply(message, committed=False)
            return
        self.phase(sid, AC, "2pc")
        committed = yield self.coordinator.run(sid, state["secondaries"],
                                               local_vote=True)
        self._session_cleanup(sid, commit=committed)
        self.phase(sid, END)
        self.replica.node.reply(message, committed=committed)

    def _on_session_abort(self, message: Message) -> None:
        self._session_cleanup(message["session"], commit=False)
        self.replica.node.reply(message, ok=True)

    def _session_cleanup(self, sid: str, commit: bool) -> None:
        state = self._sessions.pop(sid, None)
        if state is None:
            return
        if commit:
            state["txn"].commit()
        else:
            state["txn"].abort()
            for secondary in state["secondaries"]:
                self.replica.node.send(secondary, "2pc.decision",
                                       txn=sid, commit=False)
        self._decided[sid] = commit

    # -- secondary side -----------------------------------------------------------

    def _on_op_apply(self, message: Message) -> None:
        self._workspaces.setdefault(message["txn"], []).append(
            (message["item"], message["value"])
        )

    def _on_prepare(self, txn_id: str, coordinator: str) -> bool:
        # A secondary can vote yes iff it holds the transaction workspace
        # AND the coordinator is still the directory's primary.  The fence
        # matters when a false suspicion promotes a new primary while the
        # old one is alive and mid-round: without it, both primaries can
        # commit the same retried request through disjoint participant
        # sets, double-applying it.  The deposed coordinator's round must
        # die; the client's retry lands at the new primary.
        if coordinator != self.replica.system.directory.primary:
            return False
        return txn_id in self._workspaces

    def busy_elsewhere(self, request: Request) -> bool:
        # A workspace buffered for another site's transaction over this
        # request means a 2PC is prepared-but-undecided here; re-admitting
        # the retry (e.g. after promotion) could double-apply.
        rid = request.request_id
        own_suffix = f"@{self.replica.name}"
        return any(
            txn.rsplit("@", 1)[0] == rid and not txn.endswith(own_suffix)
            for txn in self._workspaces
        )

    def _on_decision(self, txn_id: str, commit: bool) -> None:
        self._decided[txn_id] = commit
        workspace = self._workspaces.pop(txn_id, None)
        if commit and workspace:
            self.phase(txn_id, AC, "2pc")
            for item, value in workspace:
                self.store.write(item, value)
            # Secondaries remember the commit under the request id (the
            # default idempotency key): if this secondary is promoted and
            # the client retries the same request, it is answered from the
            # cache instead of re-executed on the new primary.
            self.replica.remember_reply(txn_id.rsplit("@", 1)[0], [])

    # -- failover ---------------------------------------------------------------------

    def _on_suspect(self, peer: str) -> None:
        directory = self.replica.system.directory
        if peer != directory.primary:
            return
        live = [
            name for name in self.group
            if name == self.replica.name or not self.replica.detector.is_suspected(name)
        ]
        if live and live[0] == self.replica.name:
            directory.set_primary(self.replica.name)
        self.replica.node.spawn(self._terminate_in_doubt(), name="ep-termination")

    def _terminate_in_doubt(self):
        """Cooperative termination for transactions stranded by the crash."""
        for txn_id in list(self.participant.in_doubt):
            commit = False
            for peer in self._live_peers():
                try:
                    reply = yield self.replica.node.call(
                        peer, QUERY_INDOUBT, timeout=30.0, txn=txn_id
                    )
                except Exception:  # noqa: BLE001 - peer down; try the next one
                    continue
                if reply["known"]:
                    commit = reply["commit"]
                    break
            self.participant.in_doubt.pop(txn_id, None)
            self._on_decision(txn_id, commit)

    def _on_indoubt_query(self, message: Message) -> None:
        txn_id = message["txn"]
        known = txn_id in self._decided
        self.replica.node.reply(
            message, known=known, commit=self._decided.get(txn_id, False)
        )

    # -- recovery -----------------------------------------------------------------

    def on_recover(self) -> None:
        """Catch up with the current primary after a restart.

        The recovering node kept its durable store but missed every
        transaction committed while it was down (and any in-flight
        workspace died with its volatile state).  It pulls the current
        primary's state and installs everything newer than its own copies
        — the hot-standby resynchronisation step that precedes rejoining
        the 2PC participant set.
        """
        self._workspaces.clear()
        self.replica.node.spawn(self._resync(), name=f"{self.replica.name}-resync")

    def _resync(self):
        directory = self.replica.system.directory
        if directory.primary == self.replica.name:
            return  # nothing newer exists anywhere
        try:
            reply = yield self.replica.node.call(
                directory.primary, SYNC, timeout=60.0
            )
        except Exception:  # noqa: BLE001 - primary unreachable; stay stale
            return
        for item, value, version in reply["state"]:
            self.store.write_versioned(item, value, version)

    def _on_sync_request(self, message: Message) -> None:
        self.replica.node.reply(message, state=self._state_wire())

    def _on_peer_restored(self, peer: str) -> None:
        """Primary-side rejoin: push state when a suspected peer proves alive.

        Closes the race the pull-at-recovery path leaves open: any commit
        performed while the peer was excluded from the participant set
        happened before this restore event, so the pushed state contains
        it; later commits include the peer in the 2PC again.
        """
        if self.is_primary:
            self.replica.node.send(peer, SYNC_PUSH, state=self._state_wire())

    def _on_sync_push(self, message: Message) -> None:
        for item, value, version in message["state"]:
            self.store.write_versioned(item, value, version)

    def _state_wire(self) -> list:
        return [
            [item, versioned.value, versioned.version]
            for item, versioned in self.store.items()
        ]
