"""Admission control at the replicated-system edge.

An open-loop arrival process keeps offering work whether or not the
system can absorb it, so the edge needs a policy for the overflow.  The
:class:`AdmissionController` implements the standard trio:

* **token-bucket throttling** — arrivals are admitted at a sustained
  ``rate`` with bursts up to ``burst`` tokens, smoothing spikes into the
  replicas instead of forwarding them raw;
* **queue-based load leveling** — arrivals that find the bucket empty
  wait in a bounded FIFO queue and are drained as tokens refill;
* **shedding** — arrivals that find the queue full, or whose deadline
  (the PR 6 envelope budget) has already expired, are refused with an
  aborted :class:`~repro.core.operations.Result` instead of being left
  to time out deep inside the protocol.

The controller maintains the conservation invariant

    ``offered == admitted + shed + queued``

at every instant, which the admission tests pin.  It is entirely
event-driven off the simulation clock (lazy token refill, one drain
timer at the next-token time), so an admission-controlled run stays
deterministic per seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .system import ClientNode, ReplicatedSystem

__all__ = ["AdmissionConfig", "AdmissionController", "SHED_QUEUE_FULL",
           "SHED_DEADLINE", "SHED_DEADLINE_QUEUED"]

SHED_QUEUE_FULL = "shed: admission queue full"

# Refill accumulates ``elapsed * rate`` increments, so a bucket that
# should hold exactly one token can sit at 0.999... and the next-token
# delay rounds below the float resolution of the clock — a zero-advance
# timer livelock.  Treat anything within this tolerance as a whole token
# and never schedule a drain closer than the matching time floor.
_TOKEN_EPS = 1e-9
_MIN_DRAIN_DELAY = 1e-6
SHED_DEADLINE = "shed: deadline exceeded at admission"
SHED_DEADLINE_QUEUED = "shed: deadline exceeded in admission queue"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for the system-edge admission policy.

    ``rate`` is the sustained admission rate in requests per simulated
    time unit; ``rate <= 0`` disables throttling (every arrival is
    admitted immediately and the queue is never used).  ``burst`` is the
    token-bucket capacity — how many arrivals may pass back-to-back
    after an idle period.  ``queue_capacity`` bounds the leveling queue;
    arrivals beyond it are shed.  ``shed_on_deadline`` refuses arrivals
    whose deadline already passed and drops queued entries whose
    deadline expires while they wait.
    """

    rate: float = 0.0
    burst: float = 8.0
    queue_capacity: int = 1024
    shed_on_deadline: bool = True

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError("burst must be >= 1 token")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")


class AdmissionController:
    """Gates every :meth:`ClientNode.submit` of one system.

    Counters are authoritative for the offered/goodput/shed accounting:
    the open-loop engine reads them into :class:`WorkloadSummary` and the
    observer (when present) mirrors them into ``ts.offered`` /
    ``ts.admitted`` / ``ts.shed`` time series.
    """

    def __init__(self, system: "ReplicatedSystem", config: AdmissionConfig) -> None:
        self.system = system
        self.config = config
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self._queue: Deque[Tuple["ClientNode", dict]] = deque()
        self._tokens = float(config.burst)
        self._refilled_at = system.sim.now
        self._drain_timer = None

    # -- public API -----------------------------------------------------------

    @property
    def queued(self) -> int:
        """Arrivals currently waiting in the leveling queue."""
        return len(self._queue)

    def submit(self, client: "ClientNode", entry: dict) -> None:
        """Offer one arrival; admit, enqueue or shed it."""
        self.offered += 1
        self._observe("ts.offered")
        deadline = entry.get("deadline")
        if (
            self.config.shed_on_deadline
            and deadline is not None
            and self.system.sim.now > deadline
        ):
            self._shed(client, entry, SHED_DEADLINE)
            return
        if self.config.rate <= 0:
            self._admit(client, entry, consume=False)
            return
        self._refill()
        if not self._queue and self._tokens >= 1.0 - _TOKEN_EPS:
            self._admit(client, entry, consume=True)
            return
        if len(self._queue) >= self.config.queue_capacity:
            self._shed(client, entry, SHED_QUEUE_FULL)
            return
        self._queue.append((client, entry))
        self._schedule_drain()

    def snapshot(self) -> Dict[str, int]:
        """Edge accounting; satisfies offered == admitted + shed + queued."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "queued": self.queued,
        }

    # -- mechanics ------------------------------------------------------------

    def _refill(self) -> None:
        now = self.system.sim.now
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                float(self.config.burst), self._tokens + elapsed * self.config.rate
            )
        self._refilled_at = now

    def _admit(self, client: "ClientNode", entry: dict, consume: bool) -> None:
        if consume:
            self._tokens = max(0.0, self._tokens - 1.0)
        self.admitted += 1
        self._observe("ts.admitted")
        client._dispatch(entry)

    def _shed(self, client: "ClientNode", entry: dict, reason: str) -> None:
        self.shed += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        self._observe("ts.shed")
        client._shed(entry, reason)

    def _schedule_drain(self) -> None:
        if self._drain_timer is not None or not self._queue:
            return
        self._refill()
        # Time until the bucket next holds a whole token.
        deficit = max(0.0, 1.0 - self._tokens)
        delay = max(deficit / self.config.rate, _MIN_DRAIN_DELAY)
        self._drain_timer = self.system.sim.schedule(delay, self._drain)

    def _drain(self) -> None:
        self._drain_timer = None
        self._refill()
        now = self.system.sim.now
        while self._queue and self._tokens >= 1.0 - _TOKEN_EPS:
            client, entry = self._queue.popleft()
            deadline = entry.get("deadline")
            if (
                self.config.shed_on_deadline
                and deadline is not None
                and now > deadline
            ):
                # Expired while waiting; sheds don't consume a token.
                self._shed(client, entry, SHED_DEADLINE_QUEUED)
                continue
            self._admit(client, entry, consume=True)
        self._schedule_drain()

    def _observe(self, series: str) -> None:
        observer = self.system.observer
        if observer is not None:
            observer.metrics.sample(series, self.system.sim.now)

    def __repr__(self) -> str:
        return (
            f"<AdmissionController offered={self.offered} admitted={self.admitted} "
            f"shed={self.shed} queued={self.queued}>"
        )
