"""The five-phase functional model (Section 2.2, Figure 1).

The paper describes any replication protocol as a combination of five
generic phases:

1. **RE** — Request: the client submits an operation.
2. **SC** — Server Coordination: replicas synchronise *before* executing.
3. **EX** — Execution: the operation is performed.
4. **AC** — Agreement Coordination: replicas agree on the result.
5. **END** — Response: the outcome reaches the client.

Protocols differ in which phases they use, how they order them (lazy
techniques respond before coordinating), whether phases are merged (an
atomic broadcast performs RE and SC at once) and whether sub-sequences loop
(one iteration per operation of a multi-operation transaction).

This module makes the model executable:

* :class:`PhaseStep` / :class:`PhaseDescriptor` — the declarative shape of
  a technique, as drawn in Figures 2-4 and 7-14, able to render itself the
  way Figure 16 tabulates the techniques.
* :class:`PhaseTracer` — runtime recording of phase transitions.  Protocol
  implementations report phases as they happen; the figure benchmarks then
  *verify* that the executed sequence equals the declared one, which is the
  mechanical check that this reproduction matches the paper's diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import TraceLog

__all__ = [
    "RE",
    "SC",
    "EX",
    "AC",
    "END",
    "PHASE_ORDER",
    "PhaseStep",
    "PhaseDescriptor",
    "PhaseTracer",
]

RE = "RE"
SC = "SC"
EX = "EX"
AC = "AC"
END = "END"

PHASE_ORDER = (RE, SC, EX, AC, END)


@dataclass(frozen=True)
class PhaseStep:
    """One step in a technique's phase sequence.

    ``mechanism`` names what implements the phase (``"abcast"``, ``"2pc"``,
    ``"vscast"``, ``"reconciliation"``, ...).  ``merged_with`` marks phases
    the paper draws as a single box (active replication merges RE and SC
    into the atomic broadcast).
    """

    phase: str
    mechanism: str = ""
    merged_with: Optional[str] = None

    def label(self) -> str:
        name = f"{self.merged_with}+{self.phase}" if self.merged_with else self.phase
        return f"{name}({self.mechanism})" if self.mechanism else name


@dataclass(frozen=True)
class PhaseDescriptor:
    """The declared phase structure of one replication technique.

    ``loop`` marks an inclusive range of step indices repeated once per
    transaction operation (Section 5's modification of the model), e.g.
    eager primary copy for transactions loops over (EX, AC).
    """

    technique: str
    steps: Tuple[PhaseStep, ...]
    loop: Optional[Tuple[int, int]] = None
    loop_unit: str = "operation"

    def phase_names(self) -> List[str]:
        return [step.phase for step in self.steps]

    def expand(self, iterations: int = 1) -> List[str]:
        """Phase sequence with the loop unrolled ``iterations`` times."""
        if self.loop is None or iterations <= 1:
            return self.phase_names()
        start, stop = self.loop
        head = [step.phase for step in self.steps[:start]]
        body = [step.phase for step in self.steps[start:stop + 1]]
        tail = [step.phase for step in self.steps[stop + 1:]]
        return head + body * iterations + tail

    def render(self) -> str:
        """One-line rendering in the style of Figure 16, e.g.
        ``RE -> [SC -> EX]* -> AC -> END``."""
        parts = []
        for index, step in enumerate(self.steps):
            label = step.label()
            if self.loop is not None:
                if index == self.loop[0]:
                    label = "[" + label
                if index == self.loop[1]:
                    label = label + "]*"
            parts.append(label)
        return " -> ".join(parts)

    def uses(self, phase: str) -> bool:
        return any(
            step.phase == phase or step.merged_with == phase for step in self.steps
        )

    def index_of(self, phase: str) -> int:
        for index, step in enumerate(self.steps):
            if step.phase == phase:
                return index
        return -1

    @property
    def responds_before_agreement(self) -> bool:
        """True for lazy techniques: END precedes AC (Figures 10/11)."""
        end_index, ac_index = self.index_of(END), self.index_of(AC)
        return end_index != -1 and ac_index != -1 and end_index < ac_index


def _fold_repeats(sequence: List[str]) -> List[str]:
    """Fold immediately repeated blocks of any length.

    ``[RE, EX, AC, EX, AC, END]`` becomes ``[RE, EX, AC, END]`` — the
    shape a multi-operation transaction's loop iterations collapse to.
    """
    folded = list(sequence)
    changed = True
    while changed:
        changed = False
        for size in range(1, len(folded) // 2 + 1):
            i = 0
            while i + 2 * size <= len(folded):
                if folded[i:i + size] == folded[i + size:i + 2 * size]:
                    del folded[i + size:i + 2 * size]
                    changed = True
                else:
                    i += 1
    return folded


class PhaseTracer:
    """Collects phase transitions emitted by running protocols.

    Records flow into a :class:`~repro.sim.TraceLog` under category
    ``"phase"`` with payload ``request``, ``phase``, ``mechanism``.  The
    observation helpers reconstruct, per request, the phase sequence as it
    unfolded at a given replica or across the system.

    With an :class:`~repro.obs.Observer` attached, every record also
    opens a phase *span* — the previous phase of the same (source,
    request) pair ends when the next begins, turning the paper's phase
    row into measurable per-phase latency.
    """

    def __init__(self, trace: TraceLog, obs: Optional[object] = None) -> None:
        self.trace = trace
        self.obs = obs

    def record(self, source: str, request_id: object, phase: str, mechanism: str = "") -> None:
        """Report that ``source`` entered ``phase`` on behalf of a request."""
        if phase not in PHASE_ORDER:
            raise ValueError(f"unknown phase {phase!r}")
        self.trace.record("phase", source, request=request_id, phase=phase, mechanism=mechanism)
        if self.obs is not None:
            self.obs.on_phase(source, request_id, phase, mechanism)

    def observed_sequence(
        self,
        request_id: object,
        source: Optional[str] = None,
        collapse: bool = False,
    ) -> List[str]:
        """Phase names recorded for a request, in time order.

        With ``collapse=True`` adjacent repetitions are folded (a 3-op
        transaction's EX,AC,EX,AC,EX,AC collapses to EX,AC) which makes the
        observation comparable to the single-operation descriptor.
        """
        events = self.trace.select(category="phase", source=source, request=request_id)
        phases = [event.data["phase"] for event in events]
        if not collapse:
            return phases
        return _fold_repeats(phases)

    def mechanisms_used(self, request_id: object) -> Dict[str, str]:
        """Map phase -> mechanism observed for a request (last wins)."""
        out: Dict[str, str] = {}
        for event in self.trace.select(category="phase", request=request_id):
            if event.data.get("mechanism"):
                out[event.data["phase"]] = event.data["mechanism"]
        return out

    def matches(
        self,
        descriptor: PhaseDescriptor,
        request_id: object,
        source: Optional[str] = None,
        iterations: int = 1,
    ) -> bool:
        """Whether the observed sequence equals the declared one."""
        expected = descriptor.expand(iterations)
        observed = self.observed_sequence(request_id, source=source)
        return observed == expected
