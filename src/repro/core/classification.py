"""The paper's classification figures, derived from protocol metadata.

Figures 5, 6, 15 and 16 are not illustrations in this reproduction — they
are *computed* from the ``ProtocolInfo`` records of the implemented
techniques, and the figure benchmarks additionally cross-check the phase
rows of Figure 16 against live execution traces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .phases import AC, END, EX, PHASE_ORDER, RE, SC, PhaseDescriptor
from .protocols import REGISTRY
from .protocols.base import ProtocolInfo

__all__ = [
    "ds_matrix",
    "db_matrix",
    "strong_consistency_combinations",
    "synthetic_view",
    "render_matrix",
    "render_synthetic_view",
]


def _infos(community: str = None) -> List[ProtocolInfo]:
    infos = [cls.info for cls in REGISTRY.values()]
    if community is not None:
        infos = [info for info in infos if info.community == community]
    return infos


def ds_matrix() -> Dict[Tuple[bool, bool], List[str]]:
    """Figure 5: distributed-systems techniques by
    (failure transparent?, determinism needed?)."""
    matrix: Dict[Tuple[bool, bool], List[str]] = {}
    for info in _infos("ds"):
        key = (info.failure_transparent, info.requires_determinism)
        matrix.setdefault(key, []).append(info.name)
    return matrix


def db_matrix() -> Dict[Tuple[str, str], List[str]]:
    """Figure 6: database techniques by (propagation, update location).

    Gray et al.'s two dimensions: eager vs. lazy update propagation, and
    primary copy vs. update everywhere.
    """
    matrix: Dict[Tuple[str, str], List[str]] = {}
    for info in _infos("db"):
        if info.propagation is None or info.update_location is None:
            continue
        matrix.setdefault((info.propagation, info.update_location), []).append(info.name)
    return matrix


def strong_consistency_combinations() -> List[List[str]]:
    """Figure 15: the legal phase combinations for strong consistency.

    The paper's rule: "any replication technique that ensures strong
    consistency has either an SC and/or AC step before the END step".
    Returns the distinct (collapsed) phase sequences used by the
    implemented strong-consistency techniques — which turn out to be the
    paper's three rows.
    """
    sequences = []
    for info in _infos():
        if info.consistency != "strong":
            continue
        names = _collapsed_phases(info.descriptor)
        if names not in sequences:
            sequences.append(names)
    return sorted(sequences, key=len, reverse=True)


def _collapsed_phases(descriptor: PhaseDescriptor) -> List[str]:
    names: List[str] = []
    for name in descriptor.phase_names():
        if not names or names[-1] != name:
            names.append(name)
    return names


def satisfies_strong_consistency_rule(descriptor: PhaseDescriptor) -> bool:
    """Check the Figure 15 rule on a descriptor: SC or AC before END."""
    names = descriptor.phase_names()
    if END not in names:
        return False
    end_index = names.index(END)
    return any(name in (SC, AC) for name in names[:end_index])


def synthetic_view() -> List[dict]:
    """Figure 16: every technique's phase row and consistency class."""
    rows = []
    for info in _infos():
        rows.append(
            {
                "technique": info.name,
                "title": info.title,
                "community": info.community,
                "phases": _collapsed_phases(info.descriptor),
                "rendered": info.descriptor.render(),
                "consistency": info.consistency,
                "figure": info.figure,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Text renderings (the library's stand-in for the paper's diagrams)
# ---------------------------------------------------------------------------

def render_matrix(
    matrix: Dict[tuple, List[str]],
    row_labels: Dict[object, str],
    column_labels: Dict[object, str],
) -> str:
    """Render a 2x2 classification matrix as aligned text."""
    rows = sorted(row_labels)
    columns = sorted(column_labels)
    cells = {
        (r, c): ", ".join(sorted(matrix.get((r, c), []))) or "-"
        for r in rows
        for c in columns
    }
    col_width = max(
        [len(column_labels[c]) for c in columns]
        + [len(cells[(r, c)]) for r in rows for c in columns]
    ) + 2
    row_width = max(len(row_labels[r]) for r in rows) + 2
    lines = [
        " " * row_width + "".join(column_labels[c].ljust(col_width) for c in columns)
    ]
    for r in rows:
        lines.append(
            row_labels[r].ljust(row_width)
            + "".join(cells[(r, c)].ljust(col_width) for c in columns)
        )
    return "\n".join(lines)


def render_synthetic_view() -> str:
    """Figure 16 as a text table: one phase row per technique."""
    rows = synthetic_view()
    name_width = max(len(row["title"]) for row in rows) + 2
    lines = []
    for row in sorted(rows, key=lambda r: (r["community"], r["technique"])):
        phases = " ".join(row["phases"])
        lines.append(
            f"{row['title']:<{name_width}}{phases:<22}"
            f"{row['consistency']} consistency"
        )
    return "\n".join(lines)
