"""Workload metrics: latency, throughput, aborts, message overhead.

The Section 6 performance-study benchmarks report their numbers through
these helpers so every experiment prints comparable rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from ..core.operations import Result
from ..net import NetworkStats

__all__ = ["LatencyStats", "WorkloadSummary", "summarize", "messages_per_request"]


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of a set of latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def of(values: Iterable[float]) -> "LatencyStats":
        data = sorted(values)
        if not data:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

        def percentile(q: float) -> float:
            index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
            return data[index]

        return LatencyStats(
            count=len(data),
            mean=sum(data) / len(data),
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=data[-1],
        )

    def __repr__(self) -> str:
        return (
            f"<LatencyStats n={self.count} mean={self.mean:.2f} "
            f"p50={self.p50:.2f} p95={self.p95:.2f} p99={self.p99:.2f} "
            f"max={self.maximum:.2f}>"
        )


@dataclass(frozen=True)
class WorkloadSummary:
    """Everything a benchmark row needs about one run.

    ``requests``/``aborted``/``latency`` describe *logical* requests (one
    row per final client result).  The open-loop accounting rides next to
    them: ``offered`` counts arrivals presented at the system edge,
    ``shed`` the arrivals refused by admission control before reaching a
    replica, and ``attempts`` every physical submission including
    driver-level retries of aborted transactions — so ``retries`` and
    :attr:`attempt_abort_rate` no longer under-report when a closed-loop
    driver hides aborts by resubmitting.
    """

    requests: int
    committed: int
    aborted: int
    latency: LatencyStats
    duration: float
    retries: int
    offered: int = 0
    shed: int = 0
    attempts: int = 0

    @property
    def abort_rate(self) -> float:
        """Aborts among *final* results (driver retries already folded)."""
        return self.aborted / self.requests if self.requests else 0.0

    @property
    def attempt_aborts(self) -> int:
        """Aborted attempts, counting every resubmitted intermediate one."""
        return self.aborted + max(0, self.attempts - self.requests)

    @property
    def attempt_abort_rate(self) -> float:
        """Abort probability of a single submission (what the server saw)."""
        return self.attempt_aborts / self.attempts if self.attempts else 0.0

    @property
    def throughput(self) -> float:
        """Committed requests per time unit."""
        return self.committed / self.duration if self.duration > 0 else 0.0

    @property
    def goodput(self) -> float:
        """Alias of :attr:`throughput` in the open-loop vocabulary."""
        return self.throughput

    @property
    def offered_load(self) -> float:
        """Arrivals per time unit presented at the system edge."""
        return self.offered / self.duration if self.duration > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered arrivals refused by admission control."""
        return self.shed / self.offered if self.offered else 0.0

    def row(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "committed": self.committed,
            "abort_rate": round(self.abort_rate, 4),
            "mean_latency": round(self.latency.mean, 3),
            "p50_latency": round(self.latency.p50, 3),
            "p95_latency": round(self.latency.p95, 3),
            "p99_latency": round(self.latency.p99, 3),
            "throughput": round(self.throughput, 4),
            "retries": self.retries,
            "offered": self.offered,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "attempts": self.attempts,
            "attempt_abort_rate": round(self.attempt_abort_rate, 4),
        }


def summarize(
    results: Iterable[Result],
    duration: Optional[float] = None,
    extra_attempts: Iterable[Result] = (),
    offered: Optional[int] = None,
    shed: int = 0,
) -> WorkloadSummary:
    """Aggregate a list of client results into a summary.

    ``extra_attempts`` holds the intermediate aborted attempts a
    closed-loop driver resubmitted (each one counts as a retry *and* an
    attempt — previously they vanished from the summary entirely).
    ``offered``/``shed`` carry the open-loop edge accounting; ``offered``
    defaults to the number of results, the closed-loop identity.
    """
    results = list(results)
    extras = list(extra_attempts)
    committed = [r for r in results if r.committed]
    if duration is None:
        duration = (
            max((r.completed_at for r in results), default=0.0)
            - min((r.submitted_at for r in results), default=0.0)
        )
    return WorkloadSummary(
        requests=len(results),
        committed=len(committed),
        aborted=len(results) - len(committed),
        latency=LatencyStats.of(r.latency for r in committed),
        duration=duration,
        retries=sum(r.retries for r in results)
        + sum(r.retries for r in extras)
        + len(extras),
        offered=len(results) if offered is None else offered,
        shed=shed,
        attempts=len(results) + len(extras),
    )


def messages_per_request(stats: NetworkStats, requests: int,
                         exclude_prefixes: Iterable[str] = ("fd.",)) -> float:
    """Protocol messages sent per client request.

    Failure-detector heartbeats are excluded by default: they are constant
    background cost, not per-request overhead, and would swamp the
    comparison the paper's message-cost discussion is about.
    """
    if requests <= 0:
        return 0.0
    excluded = sum(
        count
        for mtype, count in stats.by_type.items()
        if any(mtype.startswith(prefix) for prefix in exclude_prefixes)
    )
    return (stats.sent - excluded) / requests
