"""Workload metrics: latency, throughput, aborts, message overhead.

The Section 6 performance-study benchmarks report their numbers through
these helpers so every experiment prints comparable rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from ..core.operations import Result
from ..net import NetworkStats

__all__ = ["LatencyStats", "WorkloadSummary", "summarize", "messages_per_request"]


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of a set of latencies."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def of(values: Iterable[float]) -> "LatencyStats":
        data = sorted(values)
        if not data:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

        def percentile(q: float) -> float:
            index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
            return data[index]

        return LatencyStats(
            count=len(data),
            mean=sum(data) / len(data),
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=data[-1],
        )

    def __repr__(self) -> str:
        return (
            f"<LatencyStats n={self.count} mean={self.mean:.2f} "
            f"p50={self.p50:.2f} p95={self.p95:.2f} p99={self.p99:.2f} "
            f"max={self.maximum:.2f}>"
        )


@dataclass(frozen=True)
class WorkloadSummary:
    """Everything a benchmark row needs about one run."""

    requests: int
    committed: int
    aborted: int
    latency: LatencyStats
    duration: float
    retries: int

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Committed requests per time unit."""
        return self.committed / self.duration if self.duration > 0 else 0.0

    def row(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "committed": self.committed,
            "abort_rate": round(self.abort_rate, 4),
            "mean_latency": round(self.latency.mean, 3),
            "p95_latency": round(self.latency.p95, 3),
            "p99_latency": round(self.latency.p99, 3),
            "throughput": round(self.throughput, 4),
            "retries": self.retries,
        }


def summarize(results: Iterable[Result], duration: Optional[float] = None) -> WorkloadSummary:
    """Aggregate a list of client results into a summary."""
    results = list(results)
    committed = [r for r in results if r.committed]
    if duration is None:
        duration = (
            max((r.completed_at for r in results), default=0.0)
            - min((r.submitted_at for r in results), default=0.0)
        )
    return WorkloadSummary(
        requests=len(results),
        committed=len(committed),
        aborted=len(results) - len(committed),
        latency=LatencyStats.of(r.latency for r in committed),
        duration=duration,
        retries=sum(r.retries for r in results),
    )


def messages_per_request(stats: NetworkStats, requests: int,
                         exclude_prefixes: Iterable[str] = ("fd.",)) -> float:
    """Protocol messages sent per client request.

    Failure-detector heartbeats are excluded by default: they are constant
    background cost, not per-request overhead, and would swamp the
    comparison the paper's message-cost discussion is about.
    """
    if requests <= 0:
        return 0.0
    excluded = sum(
        count
        for mtype, count in stats.by_type.items()
        if any(mtype.startswith(prefix) for prefix in exclude_prefixes)
    )
    return (stats.sent - excluded) / requests
