"""One-copy serializability oracles.

Section 2.2: "database protocols use serializability adapted to replicated
scenarios: one-copy serializability".  Two complementary oracles:

* :func:`counter_check` — for increment workloads ("add" updates), the
  final replicated value must equal the sum of the committed increments.
  Lost updates (lazy update everywhere's reconciliation casualties),
  double-application and phantom commits all violate it.  Simple, but it
  is a complete atomicity check for this workload class.
* :func:`serialization_graph` / :func:`check_one_copy_serializable` — a
  reads-from graph built purely from client observations.  It requires
  the *traceable workload* convention used by the test suites: every
  write installs a globally unique value, so a read (or an ``add``
  update's inferred pre-value) identifies exactly which transaction it
  read from.  Transactions then form read-from edges; a cycle means the
  execution is not equivalent to any serial one-copy history.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.operations import Result
from ..errors import ConsistencyViolation

__all__ = [
    "counter_check",
    "expected_counters",
    "serialization_graph",
    "check_one_copy_serializable",
]


def expected_counters(results: Iterable[Result]) -> Dict[str, Any]:
    """Final value per item implied by the committed ``add`` updates."""
    totals: Dict[str, Any] = {}
    for result in results:
        if not result.committed:
            continue
        for op in result.operations:
            if op.kind == "update" and op.func == "add":
                totals[op.item] = totals.get(op.item, 0) + op.argument
            elif op.is_write:
                raise ValueError(
                    "counter_check only handles pure add-update workloads; "
                    f"saw {op.kind}/{op.func} on {op.item}"
                )
    return totals


def counter_check(
    results: Iterable[Result], stores: Dict[str, Any], strict: bool = True
) -> List[str]:
    """Compare committed-increment sums against every replica's state.

    ``stores`` maps replica name to its :class:`~repro.db.DataStore`.
    Returns a list of violation descriptions (empty = consistent).  With
    ``strict`` raises :class:`ConsistencyViolation` instead of returning
    a non-empty list.
    """
    totals = expected_counters(results)
    violations = []
    for replica, store in stores.items():
        for item, expected in totals.items():
            actual = store.read(item) or 0
            if actual != expected:
                violations.append(
                    f"{replica}: item {item!r} = {actual}, expected {expected}"
                )
    if violations and strict:
        raise ConsistencyViolation("; ".join(violations))
    return violations


# ---------------------------------------------------------------------------
# Reads-from serialization graph
# ---------------------------------------------------------------------------

def _observations(result: Result) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Any]]]:
    """(reads, writes) as (item, value) pairs derived from one result.

    ``add`` updates expose their pre-value as ``output - argument``, which
    lets the oracle chain increments without instrumenting servers.
    """
    reads: List[Tuple[str, Any]] = []
    writes: List[Tuple[str, Any]] = []
    for op, output in zip(result.operations, result.values):
        if op.kind == "read":
            reads.append((op.item, output))
        elif op.kind == "write":
            writes.append((op.item, op.argument))
        elif op.func == "add":
            pre = (output - op.argument) if output is not None else None
            if pre != 0:  # pre == 0 means it read the initial state
                reads.append((op.item, pre))
            writes.append((op.item, output))
        elif op.func == "set":
            writes.append((op.item, op.argument))
        else:
            writes.append((op.item, output))
    return reads, writes


def serialization_graph(results: Iterable[Result]) -> Dict[str, Set[str]]:
    """Reads-from edges between committed transactions.

    Edge ``a -> b`` means transaction *b* read a value written by *a*
    (so *a* must precede *b* in any equivalent serial history).  Requires
    unique written values; duplicate values raise ``ValueError``.
    """
    committed = [r for r in results if r.committed]
    writer_of: Dict[Tuple[str, Any], str] = {}
    for result in committed:
        _reads, writes = _observations(result)
        for item, value in writes:
            key = (item, value)
            if key in writer_of and writer_of[key] != result.request_id:
                raise ValueError(
                    f"value {value!r} for item {item!r} written by two "
                    "transactions; the graph oracle needs unique writes"
                )
            writer_of[key] = result.request_id
    graph: Dict[str, Set[str]] = {r.request_id: set() for r in committed}
    for result in committed:
        reads, _writes = _observations(result)
        for item, value in reads:
            if value is None:
                continue
            writer = writer_of.get((item, value))
            if writer is not None and writer != result.request_id:
                graph[writer].add(result.request_id)
    return graph


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    stack: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        colour[node] = GREY
        stack.append(node)
        for successor in graph.get(node, ()):
            if colour.get(successor, WHITE) == GREY:
                return stack[stack.index(successor):] + [successor]
            if colour.get(successor, WHITE) == WHITE:
                cycle = dfs(successor)
                if cycle is not None:
                    return cycle
        stack.pop()
        colour[node] = BLACK
        return None

    for node in graph:
        if colour[node] == WHITE:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def check_one_copy_serializable(
    results: Iterable[Result], strict: bool = True
) -> Optional[List[str]]:
    """Assert the reads-from graph of committed transactions is acyclic.

    Returns None when serializable; otherwise the offending cycle (or
    raises :class:`ConsistencyViolation` when ``strict``).
    """
    graph = serialization_graph(results)
    cycle = _find_cycle(graph)
    if cycle is not None and strict:
        raise ConsistencyViolation(f"serialization cycle: {' -> '.join(cycle)}")
    return cycle
