"""Execution histories assembled from client observations.

The consistency oracles (linearizability, serializability) work on what
clients actually observed — invocation/response intervals in real
(simulated) time plus returned values — mirroring how the correctness
criteria in Section 2.2 are defined over external behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

from ..core.operations import Result

__all__ = ["Invocation", "History", "history_from_results"]


@dataclass(frozen=True)
class Invocation:
    """One completed client request, as the client saw it.

    ``output`` is the observable result: the value read for reads, the new
    value for updates, None for blind writes.
    """

    request_id: str
    kind: str               # "read" | "write" | "update"
    item: str
    argument: Any
    func: str
    output: Any
    start: float
    end: float
    client: str = ""
    committed: bool = True

    def overlaps(self, other: "Invocation") -> bool:
        return self.start < other.end and other.start < self.end

    def precedes(self, other: "Invocation") -> bool:
        """Real-time order: this response happened before that invocation."""
        return self.end <= other.start

    def __repr__(self) -> str:
        return (
            f"<Inv {self.request_id} {self.kind}({self.item})"
            f"->{self.output!r} [{self.start:.1f},{self.end:.1f}]>"
        )


class History:
    """A set of single-operation invocations over shared items."""

    def __init__(self, invocations: Iterable[Invocation]) -> None:
        self.invocations = sorted(invocations, key=lambda inv: (inv.start, inv.end))

    def __len__(self) -> int:
        return len(self.invocations)

    def __iter__(self):
        return iter(self.invocations)

    def for_item(self, item: str) -> "History":
        return History(inv for inv in self.invocations if inv.item == item)

    def items(self) -> List[str]:
        return sorted({inv.item for inv in self.invocations})

    def committed(self) -> "History":
        return History(inv for inv in self.invocations if inv.committed)

    def __repr__(self) -> str:
        return f"<History n={len(self.invocations)} items={self.items()}>"


def history_from_results(
    results: Iterable[Result], client: str = "", committed_only: bool = True
) -> History:
    """Build a history from client :class:`Result` records.

    Only single-operation requests are convertible — each becomes one
    invocation spanning the request's submit/response interval.  Requests
    with several operations are skipped (use the serializability oracle
    for those).
    """
    invocations = []
    for result in results:
        if len(result.operations) != 1:
            continue
        if committed_only and not result.committed:
            continue
        op = result.operations[0]
        invocations.append(
            Invocation(
                request_id=result.request_id,
                kind=op.kind,
                item=op.item,
                argument=op.argument,
                func=op.func,
                output=result.values[0] if result.values else None,
                start=result.submitted_at,
                end=result.completed_at,
                client=client,
                committed=result.committed,
            )
        )
    return History(invocations)
