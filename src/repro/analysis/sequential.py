"""Sequential consistency checking.

Section 2.2: "Linearisability is strictly stronger than sequential
consistency.  Linearisability is based on real-time dependencies, while
sequential consistency only considers the order in which operations are
performed on every individual process.  Sequential consistency allows,
under some conditions, to read old values."

The checker searches for a legal total order of all invocations that
preserves each *client's* program order — but, unlike the linearizability
checker, ignores real time across clients.  A lazy-primary history where
one client's read returns a stale value can therefore be sequentially
consistent while failing linearizability, which is exactly the paper's
point about the two criteria (and its observation that sequential
consistency "has similarities with one-copy serializability").
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Tuple

from .history import History, Invocation
from .linearizability import LinearizabilityReport, _apply, _freeze

__all__ = ["check_sequentially_consistent"]


def _check_item(invocations: List[Invocation], initial: Any) -> bool:
    """Search for a per-client-order-preserving legal total order."""
    if not invocations:
        return True
    # Program order per client: an invocation is eligible only when all of
    # the same client's earlier invocations have been placed.
    by_client: Dict[str, List[int]] = {}
    for index, invocation in enumerate(invocations):
        by_client.setdefault(invocation.client or f"?{index}", []).append(index)
    for indices in by_client.values():
        indices.sort(key=lambda i: (invocations[i].start, invocations[i].end))
    position_in_client: Dict[int, Tuple[str, int]] = {}
    for client, indices in by_client.items():
        for position, index in enumerate(indices):
            position_in_client[index] = (client, position)

    seen: set = set()

    def dfs(remaining: FrozenSet[int], state: Any) -> bool:
        if not remaining:
            return True
        key = (remaining, _freeze(state))
        if key in seen:
            return False
        for index in sorted(remaining):
            client, position = position_in_client[index]
            earlier = by_client[client][:position]
            if any(e in remaining for e in earlier):
                continue  # program order: a predecessor is still unplaced
            legal, new_state = _apply(state, invocations[index])
            if not legal:
                continue
            if dfs(remaining - {index}, new_state):
                return True
        seen.add(key)
        return False

    return dfs(frozenset(range(len(invocations))), initial)


def check_sequentially_consistent(
    history: History, initial: Any = None
) -> LinearizabilityReport:
    """Check a single-operation history for sequential consistency.

    Items are checked independently (valid for per-item histories as long
    as clients' cross-item orderings are not relied upon; the workloads in
    this library exercise one item per check).
    """
    for item in history.items():
        sub = list(history.for_item(item).committed())
        if not _check_item(sub, initial):
            return LinearizabilityReport(False, item=item)
    return LinearizabilityReport(True)
