"""Linearizability checking (Wing & Gong style search).

Section 2.2: "Distributed systems use linearisability ... based on
real-time dependencies".  The distributed-systems techniques in this
library (active, passive, semi-active, semi-passive) promise
linearizable behaviour; this checker verifies it on recorded client
histories.

The object model is a register per item supporting ``read``, blind
``write`` and functional ``update`` (``add``/``append``/``set``); the
checker searches for a total order of the invocations that (a) respects
real time — an operation that responded before another was invoked must
be ordered first — and (b) is legal for the register semantics, including
every observed output.  Exponential in the worst case, fine for the
bounded-concurrency histories the tests and benchmarks generate.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from .history import History, Invocation

__all__ = ["check_linearizable", "LinearizabilityReport"]


class LinearizabilityReport:
    """Outcome of a check: verdict plus witness or counter-information."""

    def __init__(self, ok: bool, witness: Optional[List[Invocation]] = None,
                 item: str = "") -> None:
        self.ok = ok
        self.witness = witness or []
        self.item = item

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        verdict = "linearizable" if self.ok else f"NOT linearizable (item {self.item})"
        return f"<LinearizabilityReport {verdict}>"


def _apply(state: Any, invocation: Invocation) -> Tuple[bool, Any]:
    """Register semantics: returns (legal, new_state)."""
    if invocation.kind == "read":
        return (invocation.output == state, state)
    if invocation.kind == "write":
        return (True, invocation.argument)
    # update: output must equal f(state, argument)
    from ..core.operations import apply_update
    import random
    expected = apply_update(invocation.func, state, invocation.argument, random.Random(0))
    frozen = tuple(expected) if isinstance(expected, list) else expected
    observed = (
        tuple(invocation.output) if isinstance(invocation.output, list)
        else invocation.output
    )
    return (observed == frozen, expected)


def _freeze(state: Any) -> Any:
    return tuple(state) if isinstance(state, list) else state


def _check_item(invocations: List[Invocation], initial: Any) -> LinearizabilityReport:
    n = len(invocations)
    if n == 0:
        return LinearizabilityReport(True)
    order: List[Invocation] = []
    seen: set = set()

    def dfs(remaining: FrozenSet[int], state: Any) -> bool:
        if not remaining:
            return True
        key = (remaining, _freeze(state))
        if key in seen:
            return False
        min_end = min(invocations[i].end for i in remaining)
        for i in sorted(remaining):
            inv = invocations[i]
            if inv.start > min_end:
                continue  # some pending op responded before this was invoked
            legal, new_state = _apply(state, inv)
            if not legal:
                continue
            order.append(inv)
            if dfs(remaining - {i}, new_state):
                return True
            order.pop()
        seen.add(key)
        return False

    ok = dfs(frozenset(range(n)), initial)
    return LinearizabilityReport(ok, witness=list(order) if ok else None)


def check_linearizable(history: History, initial: Any = None) -> LinearizabilityReport:
    """Check a (single-operation) history for linearizability.

    Items are independent registers, so each item's sub-history is checked
    separately; the first violating item is reported.
    """
    for item in history.items():
        sub = history.for_item(item).committed()
        report = _check_item(list(sub), initial)
        if not report.ok:
            return LinearizabilityReport(False, item=item)
    return LinearizabilityReport(True)
