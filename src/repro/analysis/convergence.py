"""Replica-state convergence and staleness measurement.

Weak-consistency techniques (Figure 16's lazy rows) promise convergence
only *eventually*; these helpers measure both the end state and the
inconsistency window on the way there.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConsistencyViolation

__all__ = ["assert_converged", "divergence_report", "StalenessProbe"]


def divergence_report(system) -> Dict[str, List[str]]:
    """Items on which live replicas disagree, with the differing values."""
    names = system.live_replicas()
    all_items: set = set()
    for name in names:
        all_items.update(item for item, _v in system.store_of(name).items())
    report: Dict[str, List[str]] = {}
    for item in sorted(all_items):
        values = {name: system.store_of(name).read(item) for name in names}
        if len({repr(v) for v in values.values()}) > 1:
            report[item] = [f"{name}={value!r}" for name, value in values.items()]
    return report


def assert_converged(system, values_only: bool = True) -> None:
    """Raise :class:`ConsistencyViolation` if live replicas diverge."""
    if not system.converged(values_only=values_only):
        report = divergence_report(system)
        raise ConsistencyViolation(f"replicas diverge: {report}")


class StalenessProbe:
    """Periodically samples one item at every replica.

    Drives nothing itself: call :meth:`sample` on a schedule (the lazy
    benchmarks hook it to a simulator timer).  ``staleness_of(replica)``
    then reports for how long that replica lagged the freshest copy —
    the "inconsistency window" of lazy replication.
    """

    def __init__(self, system, item: str) -> None:
        self.system = system
        self.item = item
        self.samples: List[Tuple[float, Dict[str, Any]]] = []

    def sample(self) -> None:
        snapshot = {
            name: self.system.store_of(name).read(self.item)
            for name in self.system.live_replicas()
        }
        self.samples.append((self.system.sim.now, snapshot))

    def every(self, interval: float, until: float) -> None:
        """Schedule samples every ``interval`` up to time ``until``."""
        t = self.system.sim.now + interval
        while t <= until:
            self.system.sim.schedule_at(t, self.sample)
            t += interval

    def stale_fraction(self) -> float:
        """Fraction of samples in which some replica lagged another."""
        if not self.samples:
            return 0.0
        stale = sum(
            1 for _t, snap in self.samples if len({repr(v) for v in snap.values()}) > 1
        )
        return stale / len(self.samples)

    def max_staleness_duration(self) -> float:
        """Longest contiguous run of divergent samples, in time units."""
        longest = 0.0
        run_start: Optional[float] = None
        for t, snap in self.samples:
            divergent = len({repr(v) for v in snap.values()}) > 1
            if divergent and run_start is None:
                run_start = t
            elif not divergent and run_start is not None:
                longest = max(longest, t - run_start)
                run_start = None
        if run_start is not None and self.samples:
            longest = max(longest, self.samples[-1][0] - run_start)
        return longest
