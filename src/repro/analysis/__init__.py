"""Consistency oracles and metrics for replicated executions."""

from .convergence import StalenessProbe, assert_converged, divergence_report
from .history import History, Invocation, history_from_results
from .linearizability import LinearizabilityReport, check_linearizable
from .metrics import LatencyStats, WorkloadSummary, messages_per_request, summarize
from .sequential import check_sequentially_consistent
from .serializability import (
    check_one_copy_serializable,
    counter_check,
    expected_counters,
    serialization_graph,
)

__all__ = [
    "History",
    "Invocation",
    "history_from_results",
    "check_linearizable",
    "check_sequentially_consistent",
    "LinearizabilityReport",
    "counter_check",
    "expected_counters",
    "serialization_graph",
    "check_one_copy_serializable",
    "assert_converged",
    "divergence_report",
    "StalenessProbe",
    "LatencyStats",
    "WorkloadSummary",
    "summarize",
    "messages_per_request",
]
