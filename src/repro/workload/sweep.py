"""Seed-sweep runner: seeds × offered rates × techniques across CPU cores.

One deterministic run is one measurement; the performance study needs a
*matrix* of them — every technique at every offered load over several
seeds — and PR 1's determinism makes the matrix embarrassingly parallel:
each cell is an independent simulation fixed by ``(technique, seed,
rate)``, so worker scheduling cannot change any result, only the order
rows come back in.  The merge step sorts rows into canonical ``(
technique, seed, rate)`` order and serialises with sorted keys, so the
merged JSON is byte-identical however many workers ran the sweep and in
whatever order they finished — the merge-determinism test shuffles the
rows to pin exactly that.

The headline artifact is the **saturation table**: goodput and p99
latency versus offered load per technique, with the knee — the first
offered rate where p99 exceeds ``KNEE_P99_FACTOR`` × the technique's
low-load p99, or goodput falls below ``KNEE_GOODPUT_FLOOR`` × offered —
marked per technique.  That table is the missing half of the paper's
Section 6 performance study.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.admission import AdmissionConfig
from ..core.protocols import DB_TECHNIQUES, DS_TECHNIQUES
from .generator import WorkloadSpec
from .openloop import ArrivalSpec, run_openloop

__all__ = [
    "SweepConfig",
    "run_cell",
    "run_sweep",
    "merge_rows",
    "saturation_table",
    "render_saturation",
    "write_sweep",
]

ALL_TECHNIQUES: Tuple[str, ...] = tuple(DS_TECHNIQUES + DB_TECHNIQUES)

# Knee detection: the saturation point is the first offered rate where
# p99 blows past this multiple of the technique's lowest-load p99 ...
KNEE_P99_FACTOR = 2.0
# ... or goodput drops below this fraction of the offered load.
KNEE_GOODPUT_FLOOR = 0.9


@dataclass(frozen=True)
class SweepConfig:
    """The sweep matrix and the per-cell run shape.

    ``rates`` is the offered-load axis (arrivals per time unit);
    ``clients`` is the *logical* client population each cell draws
    arrivals from, ``edges`` the physical client nodes they enter
    through.  ``admission_rate > 0`` gates every cell behind a
    token-bucket admission edge at that sustained rate (0 disables
    admission, letting offered load hit the replicas raw).
    """

    techniques: Tuple[str, ...] = ALL_TECHNIQUES
    seeds: Tuple[int, ...] = (0, 1)
    rates: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4)
    process: str = "poisson"
    duration: float = 600.0
    clients: int = 100_000
    edges: int = 4
    replicas: int = 3
    items: int = 50
    read_fraction: float = 0.5
    hot_fraction: float = 0.1
    hot_access_probability: float = 0.5
    admission_rate: float = 0.0
    admission_burst: float = 8.0
    queue_capacity: int = 256
    deadline_budget: Optional[float] = None

    def cells(self) -> List[Dict[str, Any]]:
        """One picklable work item per (technique, seed, rate)."""
        shared = asdict(self)
        shared.pop("techniques")
        shared.pop("seeds")
        shared.pop("rates")
        return [
            dict(shared, technique=technique, seed=seed, rate=rate)
            for technique in self.techniques
            for seed in self.seeds
            for rate in self.rates
        ]


def run_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Run one sweep cell; returns a JSON-safe row.

    Module-level (not a closure) so ``multiprocessing`` can import it by
    reference in worker processes under both fork and spawn.
    """
    spec = WorkloadSpec(
        items=cell["items"],
        read_fraction=cell["read_fraction"],
        hot_fraction=cell["hot_fraction"],
        hot_access_probability=cell["hot_access_probability"],
    )
    arrival = ArrivalSpec(
        process=cell["process"],
        rate=cell["rate"],
        duration=cell["duration"],
        clients=cell["clients"],
        deadline_budget=cell["deadline_budget"],
    )
    admission = None
    if cell["admission_rate"] > 0:
        admission = AdmissionConfig(
            rate=cell["admission_rate"],
            burst=cell["admission_burst"],
            queue_capacity=cell["queue_capacity"],
        )
    system, engine, summary = run_openloop(
        cell["technique"],
        spec=spec,
        arrival=arrival,
        replicas=cell["replicas"],
        clients=cell["edges"],
        seed=cell["seed"],
        admission=admission,
        settle=200.0,
    )
    row = {
        "technique": cell["technique"],
        "seed": cell["seed"],
        "rate": cell["rate"],
        "summary": summary.row(),
        "offered_load": round(summary.offered_load, 6),
        "goodput": round(summary.goodput, 6),
        "shed_rate": round(summary.shed_rate, 6),
        "p99_latency": round(summary.latency.p99, 6),
        "engine": engine.stats(),
        "converged": system.converged(),
    }
    return row


def merge_rows(rows: Iterable[Dict[str, Any]],
               config: SweepConfig) -> Dict[str, Any]:
    """Canonical merged document, independent of row arrival order."""
    ordered = sorted(
        rows, key=lambda r: (r["technique"], r["seed"], r["rate"])
    )
    return {
        "config": asdict(config),
        "rows": ordered,
        "saturation": saturation_table(ordered),
    }


def run_sweep(config: SweepConfig, jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run every cell, fanned across CPU cores; returns the merged doc.

    ``jobs=1`` runs serially in-process (no pool), which is what the
    determinism tests use; ``jobs=None`` uses one worker per core,
    capped at the cell count.
    """
    cells = config.cells()
    if jobs is None:
        jobs = min(os.cpu_count() or 1, len(cells))
    if jobs <= 1 or len(cells) <= 1:
        rows = [run_cell(cell) for cell in cells]
    else:
        import multiprocessing

        with multiprocessing.Pool(processes=jobs) as pool:
            rows = list(pool.imap_unordered(run_cell, cells))
    return merge_rows(rows, config)


# -- saturation ---------------------------------------------------------------


def saturation_table(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-technique goodput/p99 versus offered load, with the p99 knee.

    Seeds are averaged per (technique, rate).  The knee is the first
    rate breaking either threshold; ``None`` means the technique never
    saturated inside the swept range.
    """
    by_cell: Dict[Tuple[str, float], List[Dict[str, Any]]] = {}
    techniques: List[str] = []
    for row in rows:
        key = (row["technique"], row["rate"])
        by_cell.setdefault(key, []).append(row)
        if row["technique"] not in techniques:
            techniques.append(row["technique"])

    table: List[Dict[str, Any]] = []
    for technique in sorted(techniques):
        rates = sorted(rate for tech, rate in by_cell if tech == technique)
        points = []
        for rate in rates:
            cell_rows = by_cell[(technique, rate)]
            n = len(cell_rows)
            points.append({
                "rate": rate,
                "offered_load": round(
                    sum(r["offered_load"] for r in cell_rows) / n, 6),
                "goodput": round(sum(r["goodput"] for r in cell_rows) / n, 6),
                "shed_rate": round(
                    sum(r["shed_rate"] for r in cell_rows) / n, 6),
                "p99_latency": round(
                    sum(r["p99_latency"] for r in cell_rows) / n, 6),
            })
        base_p99 = points[0]["p99_latency"] if points else 0.0
        knee = None
        for point in points:
            saturated_p99 = (
                base_p99 > 0 and point["p99_latency"] > KNEE_P99_FACTOR * base_p99
            )
            starved = (
                point["offered_load"] > 0
                and point["goodput"] < KNEE_GOODPUT_FLOOR * point["offered_load"]
            )
            if saturated_p99 or starved:
                knee = point["rate"]
                break
        table.append({
            "technique": technique,
            "points": points,
            "knee_rate": knee,
        })
    return table


def render_saturation(table: Sequence[Dict[str, Any]]) -> str:
    """Plain-text saturation table (also written next to the JSON)."""
    lines = [
        f"{'technique':18s} {'rate':>7s} {'offered':>9s} {'goodput':>9s} "
        f"{'shed':>7s} {'p99':>9s}  knee",
        "-" * 68,
    ]
    for entry in table:
        knee = entry["knee_rate"]
        for i, point in enumerate(entry["points"]):
            marker = ""
            if knee is not None and point["rate"] == knee:
                marker = "<-- knee"
            name = entry["technique"] if i == 0 else ""
            lines.append(
                f"{name:18s} {point['rate']:7.3f} {point['offered_load']:9.4f} "
                f"{point['goodput']:9.4f} {point['shed_rate']:7.3f} "
                f"{point['p99_latency']:9.2f}  {marker}"
            )
    return "\n".join(lines) + "\n"


def write_sweep(merged: Dict[str, Any], out_dir: str) -> Dict[str, str]:
    """Write ``sweep.json`` + ``saturation.txt``; byte-stable per config."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    json_path = os.path.join(out_dir, "sweep.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, sort_keys=True, indent=1)
        handle.write("\n")
    paths["json"] = json_path
    txt_path = os.path.join(out_dir, "saturation.txt")
    with open(txt_path, "w", encoding="utf-8") as handle:
        handle.write(render_saturation(merged["saturation"]))
    paths["table"] = txt_path
    return paths
