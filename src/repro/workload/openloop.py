"""Open-loop workload engine: arrival processes over lightweight clients.

The closed-loop driver models each client as a simulator process that
waits for its previous response before submitting again — faithful to
interactive terminals, but it caps the client population at the number
of processes the run can afford, and offered load collapses exactly when
the system slows down (the coordinated-omission trap).  An open-loop
engine decouples the two: an **arrival process** decides *when* requests
enter, independent of how the system is doing, and each arrival is
attributed to one of up to 10⁵–10⁶ **logical clients** represented as
lightweight in-flight records instead of processes.  Offered load is an
input, goodput is an output, and the difference — queueing, shedding,
aborts — is the saturation behaviour Section 6 is about.

Arrival timing draws from named :meth:`~repro.sim.Simulator.stream`
RNGs, so the arrival schedule is deterministic per seed and independent
of protocol-internal randomness: two techniques swept with the same seed
face the byte-identical offered sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.metrics import WorkloadSummary, summarize
from ..core.admission import AdmissionConfig
from ..core.operations import Result
from ..core.system import ReplicatedSystem
from .generator import WorkloadGenerator, WorkloadSpec

__all__ = ["ArrivalSpec", "OpenLoopEngine", "run_openloop"]

_PROCESSES = ("poisson", "deterministic", "burst", "diurnal")


@dataclass(frozen=True)
class ArrivalSpec:
    """Shape of an open-loop arrival process.

    ``process`` selects the inter-arrival law:

    * ``"poisson"`` — exponential gaps at ``rate`` (memoryless traffic);
    * ``"deterministic"`` — fixed gaps of ``1/rate`` (paced load tester);
    * ``"burst"`` — Poisson at ``rate``, except inside periodic windows
      (every ``burst_every`` time units, for ``burst_length``) where the
      rate jumps to ``burst_rate`` — flash-crowd traffic;
    * ``"diurnal"`` — Poisson whose rate follows a sinusoid of period
      ``diurnal_period`` and relative amplitude ``diurnal_amplitude``
      around ``rate`` — a compressed day/night cycle.

    Each arrival is attributed to one of ``clients`` logical clients and
    may carry a ``deadline_budget`` (relative give-up time stamped on
    the message envelope, enforced by admission control and replicas).
    """

    process: str = "poisson"
    rate: float = 1.0
    duration: float = 1000.0
    clients: int = 100_000
    burst_rate: float = 0.0
    burst_every: float = 200.0
    burst_length: float = 50.0
    diurnal_period: float = 500.0
    diurnal_amplitude: float = 0.8
    deadline_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.process not in _PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"available: {sorted(_PROCESSES)}"
            )
        if not self.rate > 0:
            raise ValueError("rate must be > 0")
        if not self.duration > 0:
            raise ValueError("duration must be > 0")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.process == "burst":
            if not self.burst_rate > 0:
                raise ValueError("burst process needs burst_rate > 0")
            if not 0 < self.burst_length <= self.burst_every:
                raise ValueError("need 0 < burst_length <= burst_every")
        if self.process == "diurnal":
            if not 0 <= self.diurnal_amplitude < 1:
                raise ValueError("diurnal_amplitude must be in [0, 1)")
            if not self.diurnal_period > 0:
                raise ValueError("diurnal_period must be > 0")
        if self.deadline_budget is not None and not self.deadline_budget > 0:
            raise ValueError("deadline_budget must be > 0 when set")

    def rate_at(self, time: float) -> float:
        """Instantaneous target rate at simulated ``time``."""
        if self.process == "burst":
            phase = time % self.burst_every
            return self.burst_rate if phase < self.burst_length else self.rate
        if self.process == "diurnal":
            wave = math.sin(2 * math.pi * time / self.diurnal_period)
            return self.rate * (1.0 + self.diurnal_amplitude * wave)
        return self.rate


class _InFlight:
    """One outstanding open-loop request: a future callback, not a process.

    The per-client state a closed-loop driver keeps in a generator frame
    (who submitted, when) fits in three slots here, which is what lets a
    single run carry hundreds of thousands of logical clients.
    """

    __slots__ = ("engine", "client_id", "submitted_at")

    def __init__(self, engine: "OpenLoopEngine", client_id: int,
                 submitted_at: float) -> None:
        self.engine = engine
        self.client_id = client_id
        self.submitted_at = submitted_at

    def __call__(self, future) -> None:
        self.engine._on_done(self, future.result)


class OpenLoopEngine:
    """Submits an arrival process against a :class:`ReplicatedSystem`.

    The engine draws arrival gaps from the ``openloop.arrivals`` stream
    and logical-client attribution from ``openloop.clients``; requests
    enter through the system's (physical) client edges round-robin by
    logical client id, so admission control and routing policies apply
    unchanged.  Results split into served (``results``) and shed
    (``shed_results``) by the admission edge's ``shed:`` reason prefix.
    """

    def __init__(self, system: ReplicatedSystem, generator: WorkloadGenerator,
                 arrival: ArrivalSpec) -> None:
        self.system = system
        self.generator = generator
        self.arrival = arrival
        self._gap_rng = system.sim.stream("openloop.arrivals")
        self._client_rng = system.sim.stream("openloop.clients")
        self.results: List[Result] = []
        self.shed_results: List[Result] = []
        self.submitted = 0
        self.in_flight = 0
        self.max_in_flight = 0
        self._touched: set = set()
        self._started_at = 0.0
        self._arrivals_done = False
        self._drained = None

    # -- driving ---------------------------------------------------------------

    def run(self, settle: float = 0.0, max_events: int = 50_000_000) -> WorkloadSummary:
        """Play the arrival process to the end and drain all in-flight work."""
        sim = self.system.sim
        self._started_at = sim.now
        self._drained = sim.future(label="openloop-drained")
        sim.schedule(self._next_gap(), self._arrive)
        sim.run_until_done(self._drained, max_events=max_events)
        duration = sim.now - self._started_at
        if settle > 0:
            self.system.settle(settle)
        return self.summary(duration=duration)

    def _arrive(self) -> None:
        sim = self.system.sim
        client_id = self._client_rng.randrange(self.arrival.clients)
        self._touched.add(client_id)
        edge = self.system.clients[client_id % len(self.system.clients)]
        deadline = None
        if self.arrival.deadline_budget is not None:
            deadline = sim.now + self.arrival.deadline_budget
        record = _InFlight(self, client_id, sim.now)
        self.submitted += 1
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight
        if self.system.admission is None:
            self._observe("ts.offered")
        future = edge.submit(self.generator.next_transaction(), deadline=deadline)
        future.add_callback(record)
        elapsed = sim.now - self._started_at
        gap = self._next_gap()
        if elapsed + gap < self.arrival.duration:
            sim.schedule(gap, self._arrive)
        else:
            self._arrivals_done = True
            self._maybe_drained()

    def _next_gap(self) -> float:
        arrival = self.arrival
        if arrival.process == "deterministic":
            return 1.0 / arrival.rate
        # Nonhomogeneous processes approximate by drawing the exponential
        # gap at the instantaneous rate — accurate while the rate changes
        # slowly relative to the gap, which burst/diurnal defaults respect.
        rate = arrival.rate_at(self.system.sim.now - self._started_at)
        rate = max(rate, 1e-9)
        return self._gap_rng.expovariate(rate)

    def _on_done(self, record: _InFlight, result: Result) -> None:
        self.in_flight -= 1
        if (result.reason or "").startswith("shed:"):
            self.shed_results.append(result)
        else:
            self.results.append(result)
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        if self._arrivals_done and self.in_flight == 0:
            queued = (
                self.system.admission.queued
                if self.system.admission is not None
                else 0
            )
            if queued == 0:
                self._drained.try_set_result(None)

    def _observe(self, series: str) -> None:
        observer = self.system.observer
        if observer is not None:
            observer.metrics.sample(series, self.system.sim.now)

    # -- accounting ------------------------------------------------------------

    def summary(self, duration: Optional[float] = None) -> WorkloadSummary:
        """Aggregate served results with the edge's offered/shed counters."""
        admission = self.system.admission
        offered = admission.offered if admission is not None else self.submitted
        shed = admission.shed if admission is not None else len(self.shed_results)
        return summarize(
            self.results, duration=duration, offered=offered, shed=shed
        )

    def stats(self) -> Dict[str, Any]:
        """Engine-side accounting next to the admission snapshot."""
        row: Dict[str, Any] = {
            "submitted": self.submitted,
            "logical_clients": len(self._touched),
            "max_in_flight": self.max_in_flight,
            "served": len(self.results),
            "shed": len(self.shed_results),
        }
        if self.system.admission is not None:
            row["admission"] = self.system.admission.snapshot()
        return row


def run_openloop(
    protocol: str,
    spec: Optional[WorkloadSpec] = None,
    arrival: Optional[ArrivalSpec] = None,
    replicas: int = 3,
    clients: int = 4,
    seed: int = 7,
    admission: Optional[AdmissionConfig] = None,
    settle: float = 300.0,
    system_kwargs: Optional[dict] = None,
    config: Optional[dict] = None,
    observe: bool = False,
) -> tuple:
    """One-call open-loop experiment: build system, play arrivals, summarize.

    Returns ``(system, engine, summary)``.  ``clients`` is the number of
    *physical* client edges; the logical population lives in
    ``arrival.clients``.
    """
    spec = spec if spec is not None else WorkloadSpec()
    arrival = arrival if arrival is not None else ArrivalSpec()
    system = ReplicatedSystem(
        protocol,
        replicas=replicas,
        clients=clients,
        seed=seed,
        config=config,
        observe=observe,
        admission=admission,
        **(system_kwargs or {}),
    )
    generator = WorkloadGenerator(spec, seed=seed)
    engine = OpenLoopEngine(system, generator, arrival)
    summary = engine.run(settle=settle)
    return system, engine, summary
