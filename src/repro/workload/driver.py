"""Closed-loop workload driver.

Runs N client processes against a :class:`~repro.core.ReplicatedSystem`:
each submits a transaction, waits for the response, optionally thinks,
and repeats — the classic closed-loop model, which makes response time
and throughput directly comparable across techniques.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from ..analysis.metrics import WorkloadSummary, summarize
from ..core.operations import Result
from ..core.system import ReplicatedSystem
from .generator import WorkloadGenerator, WorkloadSpec

__all__ = ["ClosedLoopDriver", "run_workload"]


class ClosedLoopDriver:
    """Drives every client of a system through a fixed request budget.

    Parameters
    ----------
    system:
        The replicated system under test (clients already built).
    generator:
        Source of transactions; shared across clients so the aggregate
        mix matches the spec exactly.
    requests_per_client:
        Closed-loop budget for each client.
    think_time:
        Pause between a response and the next submission.
    retry_aborts:
        Re-submit aborted transactions (fresh request id) until they
        commit, counting the extra attempts; how interactive database
        clients behave under deadlock/certification aborts.
    """

    def __init__(
        self,
        system: ReplicatedSystem,
        generator: WorkloadGenerator,
        requests_per_client: int = 20,
        think_time: float = 0.0,
        retry_aborts: bool = False,
        max_retries: int = 20,
    ) -> None:
        self.system = system
        self.generator = generator
        self.requests_per_client = requests_per_client
        self.think_time = think_time
        self.retry_aborts = retry_aborts
        self.max_retries = max_retries
        self.results: List[Result] = []
        # Intermediate aborted attempts under ``retry_aborts``.  These used
        # to be dropped on the floor — ``extra_attempts`` was a bare
        # counter that never reached the summary, so ``retries`` and the
        # per-attempt abort rate under-reported whenever retries happened.
        self.attempts: List[Result] = []

    @property
    def extra_attempts(self) -> int:
        """Number of resubmissions performed by the driver."""
        return len(self.attempts)

    def run(self, settle: float = 0.0, max_events: int = 50_000_000) -> WorkloadSummary:
        """Run all clients to completion; returns the aggregate summary."""
        handles = [
            self.system.sim.spawn(self._client_loop(index), name=f"driver-c{index}")
            for index in range(len(self.system.clients))
        ]
        done = self.system.sim.all_of(handles)
        start = self.system.sim.now
        self.system.sim.run_until_done(done, max_events=max_events)
        duration = self.system.sim.now - start
        if settle > 0:
            self.system.settle(settle)
        return summarize(self.results, duration=duration,
                         extra_attempts=self.attempts)

    def _client_loop(self, index: int):
        client = self.system.clients[index]
        for _ in range(self.requests_per_client):
            operations = self.generator.next_transaction()
            first_submitted = self.system.sim.now
            result = yield client.submit(operations)
            attempts = 0
            while (
                self.retry_aborts
                and not result.committed
                and attempts < self.max_retries
            ):
                attempts += 1
                self.attempts.append(result)
                if self.think_time > 0:
                    yield self.system.sim.timeout(self.think_time)
                result = yield client.submit(operations)
            if attempts:
                # The logical request started at the first submission, so
                # its latency must span every attempt, not just the last.
                result = replace(result, submitted_at=first_submitted)
            self.results.append(result)
            if self.think_time > 0:
                yield self.system.sim.timeout(self.think_time)


def run_workload(
    protocol: str,
    spec: Optional[WorkloadSpec] = None,
    replicas: int = 3,
    clients: int = 2,
    requests_per_client: int = 15,
    seed: int = 7,
    think_time: float = 0.0,
    retry_aborts: bool = False,
    settle: float = 300.0,
    system_kwargs: Optional[dict] = None,
    config: Optional[dict] = None,
    observe: bool = False,
) -> tuple:
    """One-call experiment: build system, drive workload, summarize.

    Returns ``(system, driver, summary)`` so callers can inspect stores,
    traces and network statistics afterwards.  With ``observe=True`` the
    system carries a :class:`~repro.obs.Observer`; export its spans and
    metrics via :func:`repro.obs.write_artifacts`.
    """
    spec = spec if spec is not None else WorkloadSpec()
    system = ReplicatedSystem(
        protocol,
        replicas=replicas,
        clients=clients,
        seed=seed,
        config=config,
        observe=observe,
        **(system_kwargs or {}),
    )
    generator = WorkloadGenerator(spec, seed=seed)
    driver = ClosedLoopDriver(
        system,
        generator,
        requests_per_client=requests_per_client,
        think_time=think_time,
        retry_aborts=retry_aborts,
    )
    summary = driver.run(settle=settle)
    return system, driver, summary
