"""Workload generation.

Parameterises the "different workloads" axis of the performance study the
paper announces in Section 6: read/write mix, transaction size, data-set
size and access skew (hot spots drive conflict rates, which is what
separates locking from certification behaviour).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.operations import Operation

__all__ = ["WorkloadSpec", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic workload.

    ``hot_fraction``/``hot_access_probability`` implement a simple two-
    level skew: a ``hot_fraction`` of the items receives
    ``hot_access_probability`` of the accesses.  ``zipf_s > 0`` switches
    to a Zipf-ranked distribution instead.
    """

    items: int = 20
    read_fraction: float = 0.5
    ops_per_transaction: int = 1
    update_func: str = "add"
    update_argument: int = 1
    hot_fraction: float = 0.0
    hot_access_probability: float = 0.0
    zipf_s: float = 0.0
    item_prefix: str = "item"

    def __post_init__(self) -> None:
        if not 0 <= self.read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.items < 1 or self.ops_per_transaction < 1:
            raise ValueError("items and ops_per_transaction must be >= 1")
        # Skew knobs are probabilities/fractions: out-of-range values used
        # to be accepted silently and produced inverted skew (hot set
        # larger than the item space) or crashing weights downstream.
        # ``not (x <= 1)`` style also rejects NaN, which passes ``x > 1``.
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0 <= self.hot_access_probability <= 1:
            raise ValueError("hot_access_probability must be in [0, 1]")
        if not self.zipf_s >= 0:
            raise ValueError("zipf_s must be >= 0")


class WorkloadGenerator:
    """Draws transactions matching a :class:`WorkloadSpec`.

    Deterministic given the seed/rng, so two techniques benchmarked with
    the same seed see byte-identical workloads.
    """

    def __init__(self, spec: WorkloadSpec, rng: Optional[random.Random] = None,
                 seed: int = 0) -> None:
        self.spec = spec
        self._unique_values = itertools.count(1)
        self.rng = rng if rng is not None else random.Random(seed)
        self._names = [f"{spec.item_prefix}{i}" for i in range(spec.items)]
        # Half-up rounding, not ``int()`` truncation: ``0.29 * 100`` is
        # 28.999... in binary floating point, and truncating it silently
        # shrinks the hot set below the spec'd share (28 instead of 29).
        if spec.hot_fraction > 0:
            self.hot_set_size = max(1, int(spec.items * spec.hot_fraction + 0.5))
        else:
            self.hot_set_size = 0
        if spec.zipf_s > 0:
            weights = [1.0 / (rank ** spec.zipf_s) for rank in range(1, spec.items + 1)]
            total = sum(weights)
            self._weights: Optional[List[float]] = [w / total for w in weights]
        else:
            self._weights = None

    # -- item selection ---------------------------------------------------

    def pick_item(self) -> str:
        spec = self.spec
        if self._weights is not None:
            return self.rng.choices(self._names, weights=self._weights, k=1)[0]
        if self.hot_set_size > 0 and self.rng.random() < spec.hot_access_probability:
            return self._names[self.rng.randrange(self.hot_set_size)]
        return self._names[self.rng.randrange(spec.items)]

    # -- transaction drawing -------------------------------------------------

    def next_transaction(self) -> List[Operation]:
        """One transaction: ``ops_per_transaction`` operations."""
        ops = []
        for _ in range(self.spec.ops_per_transaction):
            item = self.pick_item()
            if self.rng.random() < self.spec.read_fraction:
                ops.append(Operation.read(item))
            else:
                ops.append(self._update(item))
        return ops

    def next_update_transaction(self) -> List[Operation]:
        """A transaction of updates only (used by convergence oracles)."""
        return [self._update(self.pick_item()) for _ in range(self.spec.ops_per_transaction)]

    def unique_write(self, item: Optional[str] = None) -> Operation:
        """A blind write with a globally unique value (traceable oracle)."""
        return Operation.write(item or self.pick_item(), f"v{next(self._unique_values)}")

    def _update(self, item: str) -> Operation:
        return Operation.update(item, self.spec.update_func, self.spec.update_argument)
