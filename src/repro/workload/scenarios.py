"""Canned workload scenarios.

Named, documented parameter sets used across examples, tests and
benchmarks, so experiments reference a scenario by intent rather than by
raw numbers.
"""

from __future__ import annotations

from typing import List

from ..core.operations import Operation
from .generator import WorkloadSpec

__all__ = [
    "uniform_updates",
    "read_mostly",
    "hotspot",
    "zipf_updates",
    "bank_transfer",
    "SCENARIOS",
]


def uniform_updates(items: int = 16) -> WorkloadSpec:
    """All-update traffic spread uniformly; the convergence stress test."""
    return WorkloadSpec(items=items, read_fraction=0.0, ops_per_transaction=1)


def read_mostly(items: int = 32, read_fraction: float = 0.9) -> WorkloadSpec:
    """The web-ish mix that motivates replication for locality (§4)."""
    return WorkloadSpec(items=items, read_fraction=read_fraction,
                        ops_per_transaction=1)


def hotspot(items: int = 100, hot_items: int = 2,
            hot_probability: float = 0.8) -> WorkloadSpec:
    """Most traffic hits a tiny hot set: the conflict generator that
    separates blocking (locking) from aborting (certification)."""
    return WorkloadSpec(
        items=items,
        read_fraction=0.0,
        ops_per_transaction=2,
        hot_fraction=hot_items / items,
        hot_access_probability=hot_probability,
    )


def zipf_updates(items: int = 50, s: float = 1.1) -> WorkloadSpec:
    """Zipf-skewed update traffic (realistic popularity distribution)."""
    return WorkloadSpec(items=items, read_fraction=0.0, zipf_s=s)


def bank_transfer(source: str, target: str, amount: int) -> List[Operation]:
    """A classic two-item transaction: debit one account, credit another.

    The multi-operation shape of Section 5 — exercised by the Figure 12/13
    benchmarks and the serializability tests (either both ops commit or
    neither does).
    """
    return [
        Operation.update(source, "add", -amount),
        Operation.update(target, "add", amount),
    ]


SCENARIOS = {
    "uniform_updates": uniform_updates,
    "read_mostly": read_mostly,
    "hotspot": hotspot,
    "zipf_updates": zipf_updates,
}
