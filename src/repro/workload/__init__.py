"""Workload generation and closed-loop driving."""

from .driver import ClosedLoopDriver, run_workload
from .generator import WorkloadGenerator, WorkloadSpec
from .scenarios import (
    SCENARIOS,
    bank_transfer,
    hotspot,
    read_mostly,
    uniform_updates,
    zipf_updates,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "ClosedLoopDriver",
    "run_workload",
    "SCENARIOS",
    "uniform_updates",
    "read_mostly",
    "hotspot",
    "zipf_updates",
    "bank_transfer",
]
