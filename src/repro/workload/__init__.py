"""Workload generation: closed-loop driving, open-loop arrivals, sweeps."""

from .driver import ClosedLoopDriver, run_workload
from .generator import WorkloadGenerator, WorkloadSpec
from .openloop import ArrivalSpec, OpenLoopEngine, run_openloop
from .sweep import (
    SweepConfig,
    merge_rows,
    render_saturation,
    run_cell,
    run_sweep,
    saturation_table,
    write_sweep,
)
from .scenarios import (
    SCENARIOS,
    bank_transfer,
    hotspot,
    read_mostly,
    uniform_updates,
    zipf_updates,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadGenerator",
    "ClosedLoopDriver",
    "run_workload",
    "ArrivalSpec",
    "OpenLoopEngine",
    "run_openloop",
    "SweepConfig",
    "run_cell",
    "run_sweep",
    "merge_rows",
    "saturation_table",
    "render_saturation",
    "write_sweep",
    "SCENARIOS",
    "uniform_updates",
    "read_mostly",
    "hotspot",
    "zipf_updates",
    "bank_transfer",
]
