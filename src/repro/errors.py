"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish simulation bugs (:class:`SimulationError`)
from legitimate protocol outcomes such as transaction aborts
(:class:`TransactionAborted`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly.

    Raised for programming errors such as scheduling an event in the past,
    resolving a future twice, or running a simulator that has been stopped.
    """


class ProcessInterrupted(ReproError):
    """A simulated process was interrupted while waiting.

    Thrown *into* a process generator by :meth:`repro.sim.Process.interrupt`.
    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class NodeCrashed(ReproError):
    """An operation could not proceed because the hosting node crashed."""


class Cancelled(ReproError):
    """A pending operation was abandoned by its caller.

    Raised out of a future when :meth:`repro.sim.Future.cancel` runs before
    the future resolves — e.g. a client that gives up on an in-flight call
    because its retry deadline expired.  Like :class:`TransactionAborted`
    this is a normal outcome, not a bug.
    """

    def __init__(self, reason: object = None) -> None:
        super().__init__(f"cancelled: {reason!r}" if reason is not None else "cancelled")
        self.reason = reason


class NetworkError(ReproError):
    """A message could not be delivered (partition, drop, unknown address)."""


class TransactionAborted(ReproError):
    """A transaction was aborted.

    This is a *normal* protocol outcome, not a bug: deadlock victims,
    certification failures, and 2PC "no" votes all surface as aborts.  The
    ``reason`` attribute records which mechanism aborted the transaction.
    """

    def __init__(self, txn_id: object, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class ReplicationError(ReproError):
    """A replication protocol reached an unrecoverable state."""


class ConsistencyViolation(ReproError):
    """An analysis oracle detected a consistency violation.

    Raised by the one-copy-serializability and linearizability checkers in
    :mod:`repro.analysis` when a recorded history breaks its criterion.
    """
