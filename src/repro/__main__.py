"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every implemented technique with its taxonomy coordinates.
``figures``
    Regenerate the paper's figures from live executions (text form).
``compare [--replicas N] [--requests N] [--seed N]``
    Run one update workload under every technique and print the
    trade-off table (latency, messages, aborts, convergence).
``run TECHNIQUE [--replicas N] [--requests N] [--seed N]``
    Drive one technique and print its summary plus phase row.
``observe TECHNIQUE [--replicas N] [--requests N] [--seed N] [--out DIR]``
    Drive one technique with span tracing and metrics enabled and write
    the three run artifacts (Perfetto-loadable ``.trace.json``, JSONL
    spans, plain-text metrics report); see docs/observability.md.
``chaos [--campaign NAME] [--technique NAME] [--seed N] [--out DIR]``
    Run the chaos campaign matrix — every named fault campaign against
    every technique by default — through the resilient client edge,
    asserting each technique's declared guarantee and exporting obs
    evidence artifacts; see docs/resilience.md.  ``--list`` shows the
    campaigns.  Exits non-zero if any cell fails its guarantee.
``profile TECHNIQUE|--all [--replicas N] [--requests N] [--seed N] [--out DIR]``
    Drive one technique (or all ten) observed, extract each request's
    critical path and five-phase latency attribution, and write the
    byte-deterministic ``profile_<tech>_seed<seed>.json`` plus a
    Perfetto-loadable counter track of the run's windowed time series;
    prints the phase cost matrix.  See docs/observability.md.
``phasecost [--check] [--docs DIR]``
    Regenerate (or, with ``--check``, verify the freshness of) the
    committed phase cost catalog ``docs/phasecost.{md,json}`` covering
    all ten techniques; ``make check`` runs the check form.
``sweep [--smoke] [--technique NAME] [--seeds CSV] [--rates CSV] [--jobs N]``
    Fan the open-loop seed×rate×technique matrix across CPU cores,
    merge the per-cell rows into one byte-deterministic JSON and print
    the saturation table (goodput and p99 vs offered load, knee marked);
    see docs/workloads.md.  ``--smoke`` shrinks the matrix for CI.
``lint [paths] [options]``
    Run the static determinism/layering/contract linter
    (delegates to ``python -m repro.lint``; see docs/linting.md).
"""

from __future__ import annotations

import argparse
import sys

from . import DB_TECHNIQUES, DS_TECHNIQUES, REGISTRY
from .analysis import counter_check, messages_per_request
from .workload import WorkloadSpec, run_workload


def cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'technique':18s} {'community':10s} {'phase row':24s} "
          f"{'consistency':12s} {'figure'}")
    print("-" * 80)
    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        info = REGISTRY[name].info
        row = " ".join(info.descriptor.phase_names())
        print(f"{name:18s} {info.community:10s} {row:24s} "
              f"{info.consistency:12s} {info.figure}")
    return 0


def cmd_figures(_args: argparse.Namespace) -> int:
    # Reuse the example script wholesale; it already renders everything.
    import importlib.util
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "..", "examples",
                        "paper_figures.py")
    if not os.path.exists(path):
        print("examples/paper_figures.py not found (installed without examples); "
              "see the repository checkout", file=sys.stderr)
        return 1
    spec = importlib.util.spec_from_file_location("paper_figures", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def _run_one(name: str, args: argparse.Namespace, observe: bool = False):
    spec = WorkloadSpec(items=8, read_fraction=0.0)
    return run_workload(
        name, spec=spec, replicas=args.replicas, clients=2,
        requests_per_client=args.requests, seed=args.seed,
        think_time=10.0, settle=500.0, config={"abcast": "sequencer"},
        observe=observe,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    print(f"{'technique':18s} {'mean lat':>9s} {'p95 lat':>9s} "
          f"{'msgs/txn':>9s} {'aborts':>7s} {'converged':>10s} {'exact':>6s}")
    print("-" * 75)
    for name in DS_TECHNIQUES + DB_TECHNIQUES:
        system, driver, summary = _run_one(name, args)
        msgs = messages_per_request(system.net.stats, summary.requests)
        committed = [r for r in driver.results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        exact = not counter_check(committed, stores, strict=False)
        print(f"{name:18s} {summary.latency.mean:9.2f} {summary.latency.p95:9.2f} "
              f"{msgs:9.1f} {summary.abort_rate:7.2f} "
              f"{str(system.converged()):>10s} {'yes' if exact else 'NO':>6s}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.technique not in REGISTRY:
        print(f"unknown technique {args.technique!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    system, driver, summary = _run_one(args.technique, args)
    info = system.info
    print(f"technique    : {info.title} ({info.figure})")
    print(f"phase row    : {' '.join(info.descriptor.phase_names())} "
          f"[{info.consistency} consistency]")
    print(f"requests     : {summary.requests} "
          f"({summary.committed} committed, {summary.aborted} aborted)")
    print(f"latency      : mean {summary.latency.mean:.2f}, "
          f"p95 {summary.latency.p95:.2f}")
    print(f"messages/txn : "
          f"{messages_per_request(system.net.stats, summary.requests):.1f}")
    print(f"converged    : {system.converged()}")
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    import os

    from .obs import write_artifacts

    if args.technique not in REGISTRY:
        print(f"unknown technique {args.technique!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    system, driver, summary = _run_one(args.technique, args, observe=True)
    stem = os.path.join(args.out, f"observe_{args.technique}_seed{args.seed}")
    node_order = system.replica_names + [c.name for c in system.clients]
    paths = write_artifacts(
        system.observer, stem, node_order=node_order,
        title=f"{args.technique} seed={args.seed}",
    )
    print(f"technique    : {system.info.title} ({system.info.figure})")
    print(f"requests     : {summary.requests} "
          f"({summary.committed} committed, {summary.aborted} aborted)")
    print(f"spans        : {len(system.observer.tracer.spans)}")
    print()
    print(system.observer.metrics.report(
        title=f"{args.technique} seed={args.seed}"))
    for kind in sorted(paths):
        print(f"{kind:7s} -> {paths[kind]}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import os

    from .resilience import CAMPAIGNS, run_matrix

    if args.list:
        for name in sorted(CAMPAIGNS):
            campaign = CAMPAIGNS[name]
            print(f"{name}")
            print(f"    {campaign.description}")
        return 0
    for name in args.campaign or ():
        if name not in CAMPAIGNS:
            print(f"unknown campaign {name!r}; try: python -m repro chaos --list",
                  file=sys.stderr)
            return 2
    for name in args.technique or ():
        if name not in REGISTRY:
            print(f"unknown technique {name!r}; try: python -m repro list",
                  file=sys.stderr)
            return 2
    observe = not args.no_observe
    out = args.out if observe else None
    if out:
        os.makedirs(out, exist_ok=True)
    reports = run_matrix(
        campaigns=args.campaign or None,
        techniques=args.technique or None,
        seed=args.seed,
        observe=observe,
        artifact_dir=out,
    )
    for report in reports:
        print(report.summary())
    passed = sum(1 for r in reports if r.passed)
    print()
    print(f"{passed}/{len(reports)} cells passed "
          f"({len({r.campaign for r in reports})} campaigns x "
          f"{len({r.technique for r in reports})} techniques, seed {args.seed})")
    if out:
        print(f"evidence artifacts -> {out}/")
    return 0 if passed == len(reports) else 1


def _print_phase_table(profile: dict) -> None:
    from .obs import KINDS, PHASES

    matrix = profile["matrix"]
    print(f"{'phase':7s} {'time':>9s} {'share':>7s} {'msgs':>6s} {'bytes':>8s}")
    print("-" * 42)
    for phase in PHASES:
        row = matrix["phases"][phase]
        print(f"{phase:7s} {row['time']:9.2f} {row['share']*100:6.1f}% "
              f"{row['messages']:6d} {row['bytes']:8d}")
    kinds = " ".join(
        f"{kind}={matrix['kinds'][kind]['share']*100:.1f}%" for kind in KINDS
    )
    print(f"dominant: {matrix['dominant_phase']}  critical path: {kinds}")


def cmd_profile(args: argparse.Namespace) -> int:
    import os

    from .obs import write_counter_track
    from .profiling import profile_run, write_profile

    if args.all:
        techniques = DS_TECHNIQUES + DB_TECHNIQUES
    elif args.technique:
        if args.technique not in REGISTRY:
            print(f"unknown technique {args.technique!r}; "
                  "try: python -m repro list", file=sys.stderr)
            return 2
        techniques = [args.technique]
    else:
        print("profile: give a technique or --all", file=sys.stderr)
        return 2
    for name in techniques:
        system, _driver, profile = profile_run(
            name, seed=args.seed, replicas=args.replicas,
            requests_per_client=args.requests,
        )
        stem = os.path.join(args.out, f"profile_{name}_seed{args.seed}")
        path = write_profile(profile, f"{stem}.json")
        counters = write_counter_track(
            system.observer, stem, title=f"{name} seed={args.seed}"
        )
        matrix = profile["matrix"]
        print(f"== {name} ({profile['figure']}) seed={args.seed} "
              f"mean response {matrix['response_time_mean']:.2f} ==")
        _print_phase_table(profile)
        print(f"profile  -> {path}")
        print(f"counters -> {counters}")
        print()
    return 0


def cmd_phasecost(args: argparse.Namespace) -> int:
    from .profiling import check_phasecost, write_phasecost

    if args.check:
        problems = check_phasecost(args.docs)
        for problem in problems:
            print(problem, file=sys.stderr)
        if not problems:
            print(f"phase cost catalog in {args.docs}/ is fresh")
        return 1 if problems else 0
    for path in write_phasecost(args.docs):
        print(f"wrote {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .workload.sweep import SweepConfig, render_saturation, run_sweep, write_sweep

    techniques = tuple(args.technique or (DS_TECHNIQUES + DB_TECHNIQUES))
    for name in techniques:
        if name not in REGISTRY:
            print(f"unknown technique {name!r}; try: python -m repro list",
                  file=sys.stderr)
            return 2
    seeds = tuple(int(s) for s in args.seeds.split(","))
    rates = tuple(float(r) for r in args.rates.split(","))
    duration = args.duration
    clients = args.clients
    if args.smoke:
        # CI-sized matrix: two techniques spanning both communities, one
        # seed, two rates, short horizon — enough to exercise the full
        # pipeline (fan-out, merge, saturation render) in seconds.
        techniques = tuple(args.technique or ("active", "lazy_primary"))
        seeds = (0,)
        rates = (0.1, 0.4)
        duration = 200.0
        clients = 20_000
    config = SweepConfig(
        techniques=techniques,
        seeds=seeds,
        rates=rates,
        process=args.process,
        duration=duration,
        clients=clients,
        replicas=args.replicas,
        admission_rate=args.admission_rate,
        deadline_budget=args.deadline,
    )
    merged = run_sweep(config, jobs=args.jobs)
    paths = write_sweep(merged, args.out)
    print(render_saturation(merged["saturation"]))
    cells = len(merged["rows"])
    print(f"{cells} cells ({len(techniques)} techniques x {len(seeds)} seeds "
          f"x {len(rates)} rates)")
    for kind in sorted(paths):
        print(f"{kind:5s} -> {paths[kind]}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forward everything after "lint" untouched so the linter's own
        # argparse handles --select/--format/... without double parsing.
        from .lint.cli import main as lint_main
        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Executable reproduction of 'Understanding Replication in "
                    "Databases and Distributed Systems' (ICDCS 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list implemented techniques")
    sub.add_parser("figures", help="render the paper's figures from live runs")
    for command in ("compare", "run", "observe"):
        sp = sub.add_parser(command)
        if command in ("run", "observe"):
            sp.add_argument("technique")
        sp.add_argument("--replicas", type=int, default=3)
        sp.add_argument("--requests", type=int, default=10)
        sp.add_argument("--seed", type=int, default=7)
        if command == "observe":
            sp.add_argument("--out", default="benchmarks/output",
                            help="directory receiving the run artifacts")
    sp = sub.add_parser("chaos", help="run the chaos campaign matrix")
    sp.add_argument("--campaign", action="append",
                    help="campaign name (repeatable; default: all)")
    sp.add_argument("--technique", action="append",
                    help="technique name (repeatable; default: all)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--out", default="benchmarks/output/chaos",
                    help="directory receiving the evidence artifacts")
    sp.add_argument("--no-observe", action="store_true",
                    help="skip span/metrics collection and artifact export")
    sp.add_argument("--list", action="store_true",
                    help="list the named campaigns and exit")
    sp = sub.add_parser("profile", help="phase-resolved latency profile")
    sp.add_argument("technique", nargs="?", default=None)
    sp.add_argument("--all", action="store_true",
                    help="profile every implemented technique")
    sp.add_argument("--replicas", type=int, default=3)
    sp.add_argument("--requests", type=int, default=10)
    sp.add_argument("--seed", type=int, default=7)
    sp.add_argument("--out", default="benchmarks/output/profile",
                    help="directory receiving profile and counter artifacts")
    sp = sub.add_parser("phasecost", help="(re)generate docs/phasecost.{md,json}")
    sp.add_argument("--check", action="store_true",
                    help="verify freshness instead of writing")
    sp.add_argument("--docs", default="docs",
                    help="directory holding the committed catalog")
    sp = sub.add_parser("sweep", help="open-loop seed x rate x technique sweep")
    sp.add_argument("--technique", action="append",
                    help="technique name (repeatable; default: all ten)")
    sp.add_argument("--seeds", default="0,1",
                    help="comma-separated seed list")
    sp.add_argument("--rates", default="0.05,0.1,0.2,0.4",
                    help="comma-separated offered rates (arrivals/time unit)")
    sp.add_argument("--process", default="poisson",
                    choices=("poisson", "deterministic", "burst", "diurnal"))
    sp.add_argument("--duration", type=float, default=600.0)
    sp.add_argument("--clients", type=int, default=100_000,
                    help="logical client population per cell")
    sp.add_argument("--replicas", type=int, default=3)
    sp.add_argument("--admission-rate", type=float, default=0.0,
                    help="token-bucket admission rate (0 = no admission gate)")
    sp.add_argument("--deadline", type=float, default=None,
                    help="per-request deadline budget in time units")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: one per core)")
    sp.add_argument("--out", default="benchmarks/output/sweep",
                    help="directory receiving sweep.json + saturation.txt")
    sp.add_argument("--smoke", action="store_true",
                    help="CI-sized matrix (2 techniques, 1 seed, 2 rates)")
    args = parser.parse_args(argv)
    return {"list": cmd_list, "figures": cmd_figures,
            "compare": cmd_compare, "run": cmd_run,
            "observe": cmd_observe, "chaos": cmd_chaos,
            "profile": cmd_profile, "phasecost": cmd_phasecost,
            "sweep": cmd_sweep}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
