"""Lint engine: file discovery, parsing, rule dispatch, suppression.

:func:`run_lint` is the programmatic entry point used by the CLI, the
test-suite and any tooling that wants diagnostics as data::

    from repro.lint import run_lint
    problems = run_lint(["src/repro"])
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .config import DEFAULT_BASELINE
from .diagnostics import Baseline, Diagnostic, suppressed
from .registry import Rule, selected_rules

__all__ = ["FileContext", "run_lint", "collect_files", "parse_file"]


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str            # path as reported in diagnostics (posix separators)
    module: Optional[str]   # dotted module name when inside a repro tree
    package: Optional[str]  # first-level repro subpackage, "" for top-level
    tree: ast.Module
    lines: List[str]
    is_package: bool = False  # True for __init__.py (module names a package)

    @property
    def in_repro(self) -> bool:
        return self.module is not None


def _module_of(path: str) -> Tuple[Optional[str], Optional[str], bool]:
    """Map a file path onto (module, first-level package) within ``repro``.

    Recognises any ``.../src/repro/...`` layout (the repository itself and
    the miniature trees the self-tests build under tmp dirs); falls back
    to the last ``repro`` path segment so an installed checkout still
    resolves.  Files outside a repro tree get ``(None, None)`` and only
    project-wide rules apply to them.
    """
    parts = os.path.abspath(path).split(os.sep)
    candidates = [i for i, part in enumerate(parts[:-1]) if part == "repro"]
    if not candidates:
        return None, None, False
    preferred = [i for i in candidates if i > 0 and parts[i - 1] == "src"]
    index = preferred[-1] if preferred else candidates[-1]
    tail = parts[index:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][: -len(".py")]
    is_package = tail[-1] == "__init__"
    if is_package:
        tail = tail[:-1]
    module = ".".join(tail)
    if len(tail) == 1:
        package = ""
    else:
        package = "" if tail[1].startswith("__") else tail[1]
    return module, package, is_package


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand path arguments into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen = set()
    unique = []
    for path in found:
        key = os.path.abspath(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def parse_file(path: str) -> Tuple[Optional[FileContext], Optional[Diagnostic]]:
    """Parse one file; returns ``(context, None)`` or ``(None, error)``."""
    display = path.replace(os.sep, "/")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return None, Diagnostic(display, 0, "E001", "error", f"cannot read: {exc}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Diagnostic(
            display, exc.lineno or 0, "E001", "error",
            f"syntax error: {exc.msg}",
        )
    module, package, is_package = _module_of(path)
    return FileContext(
        path=display, module=module, package=package,
        tree=tree, lines=source.splitlines(), is_package=is_package,
    ), None


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[str] = DEFAULT_BASELINE,
) -> List[Diagnostic]:
    """Lint ``paths`` and return the surviving diagnostics, sorted.

    Inline ``# repro: noqa`` comments and the baseline file (when it
    exists; pass ``baseline=None`` to disable) are applied before the
    list is returned, so a non-empty result means actionable findings.
    """
    rules = selected_rules(select, ignore)
    contexts: List[FileContext] = []
    diagnostics: List[Diagnostic] = []
    for path in collect_files(paths):
        context, error = parse_file(path)
        if error is not None:
            diagnostics.append(error)
        else:
            contexts.append(context)

    lines_by_path = {ctx.path: ctx.lines for ctx in contexts}
    if any(enabled.scope == "project" for enabled in rules):
        # One ProgramIndex serves every whole-program pass (M4xx, W5xx,
        # R6xx): build it here, before rule dispatch, so the passes share
        # it by construction instead of each racing to build its own.
        from .symeval import program_index

        program_index(contexts)
    for enabled in rules:
        if enabled.scope == "file":
            for context in contexts:
                diagnostics.extend(_run_rule(enabled, (context,)))
        else:
            diagnostics.extend(_run_rule(enabled, (contexts,)))

    diagnostics = [
        d for d in diagnostics
        if not suppressed(d, lines_by_path.get(d.file, ()))
    ]
    if baseline is not None:
        diagnostics = Baseline.load(baseline).filter(diagnostics)
    diagnostics.sort(key=lambda d: (d.file, d.line, d.col, d.rule))
    return diagnostics


def _run_rule(enabled: Rule, args: tuple) -> List[Diagnostic]:
    out = []
    for found in enabled.check(*args):
        out.append(
            Diagnostic(
                file=found.file, line=found.line, rule=enabled.id,
                severity=enabled.severity, message=found.message,
                col=found.col,
            )
        )
    return out


# Importing the rule modules registers every rule; keep these imports at
# the bottom so the modules can import FileContext for annotations.
from . import contracts as _contracts  # noqa: E402,F401
from . import determinism as _determinism  # noqa: E402,F401
from . import layering as _layering  # noqa: E402,F401
from . import msgflow as _msgflow  # noqa: E402,F401
from . import waitgraph as _waitgraph  # noqa: E402,F401
from . import interference as _interference  # noqa: E402,F401
