"""The linter's single data file: every project-specific constant.

Rules read their policy from here so that adjusting the architecture —
adding a package, moving one between layers, widening the deterministic
core — is a one-file change reviewed next to the DAG it alters, never a
code change inside a rule.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Layering (rules L201/L202)
# ---------------------------------------------------------------------------
# The import DAG of ``repro``'s first-level packages, exactly as drawn in
# docs/internals.md:
#
#     errors -> sim -> net -> failures -> {groupcomm, db} -> core
#            -> {analysis, workload, viz}
#
# ``ALLOWED_DEPS[p]`` lists every package that modules inside ``p`` may
# import from.  A package never appears in its own entry (intra-package
# imports are always legal), and ``lint`` is deliberately standalone so the
# tooling can never deadlock on the code it checks.

ALLOWED_DEPS = {
    "errors": frozenset(),
    "sim": frozenset({"errors"}),
    "net": frozenset({"errors", "sim"}),
    "failures": frozenset({"errors", "sim", "net"}),
    "groupcomm": frozenset({"errors", "sim", "net", "failures"}),
    "db": frozenset({"errors", "sim", "net", "failures"}),
    "core": frozenset({"errors", "sim", "net", "failures", "groupcomm", "db"}),
    "analysis": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core"}
    ),
    "workload": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core", "analysis"}
    ),
    "viz": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core", "analysis"}
    ),
    "lint": frozenset(),
}

# Top-level modules of the ``repro`` package itself (``__init__``,
# ``__main__``) re-export everything; they sit above the DAG.
TOP_LEVEL_MAY_IMPORT_ANYTHING = True

# ---------------------------------------------------------------------------
# Determinism (rules D101-D106)
# ---------------------------------------------------------------------------
# Packages whose code must be bit-for-bit reproducible given a seed.  The
# analysis/workload/viz layers consume traces after the fact and are
# exempt (they still must not perturb a run, but they hold no simulated
# state).
DETERMINISTIC_PACKAGES = frozenset(
    {"core", "groupcomm", "db", "net", "failures", "sim"}
)

# ``random.<fn>()`` calls share the interpreter-global Mersenne state; any
# one of them desynchronises every seeded run.  Constructing a seeded
# ``random.Random`` is the sanctioned alternative, so the class name is
# exempt.
RANDOM_MODULE = "random"
RANDOM_ALLOWED_ATTRS = frozenset({"Random", "SystemRandom"})

# Wall-clock and entropy sources.  Keys are ``module`` names as imported,
# values the forbidden attributes (``"*"`` = everything in the module).
NONDETERMINISTIC_CALLS = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "secrets": frozenset({"*"}),
}

# Builtins that consume an iterable without depending on its order; a set
# flowing into one of these is harmless.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

# ---------------------------------------------------------------------------
# Protocol contracts (rules P301-P304)
# ---------------------------------------------------------------------------
# The five generic phases of the paper's functional model (Figure 1).
PHASES = ("RE", "SC", "EX", "AC", "END")

# Class whose subclasses constitute replication techniques, and the class
# attribute carrying their classification row.
PROTOCOL_BASE = "ReplicaProtocol"
PROTOCOL_INFO_NAME = "info"
PROTOCOL_INFO_TYPE = "ProtocolInfo"

# Methods of the shared base whose bodies emit phases on behalf of every
# subclass: the dispatcher records RE before calling ``handle_request``,
# and ``respond`` records END before answering the client.
BASE_EMITS = frozenset({"RE"})
RESPOND_EMITS = "END"

# ---------------------------------------------------------------------------
# Suppression
# ---------------------------------------------------------------------------
NOQA_MARKER = "repro: noqa"
DEFAULT_BASELINE = "lint-baseline.txt"
