"""The linter's single data file: every project-specific constant.

Rules read their policy from here so that adjusting the architecture —
adding a package, moving one between layers, widening the deterministic
core — is a one-file change reviewed next to the DAG it alters, never a
code change inside a rule.
"""

from __future__ import annotations

from typing import Any, Dict

# ---------------------------------------------------------------------------
# Layering (rules L201/L202)
# ---------------------------------------------------------------------------
# The import DAG of ``repro``'s first-level packages, exactly as drawn in
# docs/internals.md:
#
#     errors -> sim -> net -> failures -> {groupcomm, db} -> core
#            -> {analysis, workload, viz}
#
# with the observability layer slotted between ``net`` and ``core``:
# ``obs`` may depend on ``sim``/``net``; ``core`` (and the entry points
# above it) may depend on ``obs``; the layers *below* ``core`` hold only
# duck-typed, optional observer references — never the import.
#
# ``ALLOWED_DEPS[p]`` lists every package that modules inside ``p`` may
# import from.  A package never appears in its own entry (intra-package
# imports are always legal), and ``lint`` is deliberately standalone so the
# tooling can never deadlock on the code it checks.

ALLOWED_DEPS = {
    "errors": frozenset(),
    "sim": frozenset({"errors"}),
    "net": frozenset({"errors", "sim"}),
    "obs": frozenset({"errors", "sim", "net"}),
    "failures": frozenset({"errors", "sim", "net"}),
    "groupcomm": frozenset({"errors", "sim", "net", "failures"}),
    "db": frozenset({"errors", "sim", "net", "failures"}),
    "core": frozenset(
        {"errors", "sim", "net", "obs", "failures", "groupcomm", "db"}
    ),
    "analysis": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core"}
    ),
    "resilience": frozenset(
        {"errors", "sim", "net", "obs", "failures", "groupcomm", "db", "core",
         "analysis"}
    ),
    "workload": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core", "analysis"}
    ),
    "profiling": frozenset(
        {"errors", "sim", "net", "obs", "failures", "groupcomm", "db", "core",
         "analysis", "workload"}
    ),
    "viz": frozenset(
        {"errors", "sim", "net", "failures", "groupcomm", "db", "core", "analysis"}
    ),
    "lint": frozenset(),
}

# Top-level modules of the ``repro`` package itself (``__init__``,
# ``__main__``) re-export everything; they sit above the DAG.
TOP_LEVEL_MAY_IMPORT_ANYTHING = True

# ---------------------------------------------------------------------------
# Determinism (rules D101-D106)
# ---------------------------------------------------------------------------
# Packages whose code must be bit-for-bit reproducible given a seed.  The
# analysis/workload/viz layers consume traces after the fact and are
# exempt (they still must not perturb a run, but they hold no simulated
# state).
DETERMINISTIC_PACKAGES = frozenset(
    {"core", "groupcomm", "db", "net", "failures", "sim", "obs", "resilience",
     "profiling"}
)

# Module-granular widening of the scope above, by full dotted name.  The
# open-loop engine lives in the otherwise-exempt ``workload`` layer but
# holds simulated state (arrival schedules, in-flight records) and feeds
# the simulator's event queue, so it must obey the same rules as the
# deterministic core.  The sweep runner next to it stays exempt: it
# orchestrates OS processes around *finished* runs.
DETERMINISTIC_MODULES = frozenset({"repro.workload.openloop"})

# ``random.<fn>()`` calls share the interpreter-global Mersenne state; any
# one of them desynchronises every seeded run.  Constructing a seeded
# ``random.Random`` is the sanctioned alternative, so the class name is
# exempt.
RANDOM_MODULE = "random"
RANDOM_ALLOWED_ATTRS = frozenset({"Random", "SystemRandom"})

# Wall-clock and entropy sources.  Keys are ``module`` names as imported,
# values the forbidden attributes (``"*"`` = everything in the module).
NONDETERMINISTIC_CALLS = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "secrets": frozenset({"*"}),
}

# Builtins that consume an iterable without depending on its order; a set
# flowing into one of these is harmless.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

# ---------------------------------------------------------------------------
# Protocol contracts (rules P301-P304)
# ---------------------------------------------------------------------------
# The five generic phases of the paper's functional model (Figure 1).
PHASES = ("RE", "SC", "EX", "AC", "END")

# Class whose subclasses constitute replication techniques, and the class
# attribute carrying their classification row.
PROTOCOL_BASE = "ReplicaProtocol"
PROTOCOL_INFO_NAME = "info"
PROTOCOL_INFO_TYPE = "ProtocolInfo"

# Methods of the shared base whose bodies emit phases on behalf of every
# subclass: the dispatcher records RE before calling ``handle_request``,
# and ``respond`` records END before answering the client.
BASE_EMITS = frozenset({"RE"})
RESPOND_EMITS = "END"

# ---------------------------------------------------------------------------
# Message flow (rules M401-M404)
# ---------------------------------------------------------------------------
# Point-to-point send methods and the positional index of their
# message-type argument.  ``Node.send/send_many/call`` and
# ``ReliableTransport.send/send_to_group`` share one string namespace:
# transport inner types travel inside node-level ``rt.data`` envelopes but
# never collide with node types by convention, so the flow graph keeps a
# single table for both.
SEND_METHODS = {
    "send": 1,
    "send_many": 1,
    "send_to_group": 1,
    "call": 1,
}

# ``Node.call`` bookkeeping kwargs that are not payload keys.
CALL_CONTROL_KWARGS = frozenset({"timeout"})

# A ``.send`` carrying one of these kwargs is the raw ``Network.send``
# (src/dst routing layer), not a protocol message construction site; the
# same goes for a receiver literally named ``network``.
NETWORK_SEND_KWARGS = frozenset({"payload", "reply_to"})
NETWORK_RECEIVER_NAMES = frozenset({"network"})

# Catalog name for the reserved reply envelope (``Node.reply`` sends it;
# the call-correlation machinery in ``Node._dispatch`` consumes it, so it
# has no ``.on`` registration by design).
REPLY_TYPE_NAME = "$reply"

# Receiver-name fragments that attribute a send/registration to the
# reliable-transport layer in the generated catalog (display only; the
# flow analysis itself is layer-agnostic).
TRANSPORT_RECEIVER_HINT = "transport"

# Group-communication primitives: constructor shape of every class whose
# instances fan messages out to a ``deliver(origin, mtype, body)``-style
# callback.  ``send`` is the broadcast method name, ``deliver`` the
# positional indices (after ``self``) of the delivery callbacks in the
# constructor, ``deliver_kwargs`` their keyword spellings, and
# ``channel_param`` the constructor parameter naming the wire channel
# (``None`` = fixed wire type).
PRIMITIVE_SPECS: Dict[str, Dict[str, Any]] = {
    "ReliableBroadcast": {
        "send": "broadcast", "deliver": (3,), "deliver_kwargs": ("deliver",),
        "channel_param": "channel", "channel_is_prefix": False,
    },
    "FifoBroadcast": {
        "send": "broadcast", "deliver": (3,), "deliver_kwargs": ("deliver",),
        "channel_param": "channel", "channel_is_prefix": False,
    },
    "CausalBroadcast": {
        "send": "broadcast", "deliver": (3,), "deliver_kwargs": ("deliver",),
        "channel_param": "channel", "channel_is_prefix": False,
    },
    "SequencerAtomicBroadcast": {
        "send": "abcast", "deliver": (3,), "deliver_kwargs": ("deliver",),
        "channel_param": "channel_prefix", "channel_is_prefix": True,
    },
    "ConsensusAtomicBroadcast": {
        "send": "abcast", "deliver": (4,), "deliver_kwargs": ("deliver",),
        "channel_param": "channel_prefix", "channel_is_prefix": True,
    },
    "OptimisticAtomicBroadcast": {
        "send": "abcast", "deliver": (4, 5),
        "deliver_kwargs": ("opt_deliver", "final_deliver"),
        "channel_param": "channel_prefix", "channel_is_prefix": True,
    },
    "ViewSyncGroup": {
        "send": "vscast", "deliver": (4,), "deliver_kwargs": ("deliver",),
        "channel_param": None, "channel_is_prefix": False,
    },
}

BROADCAST_METHODS = frozenset(
    spec["send"] for spec in PRIMITIVE_SPECS.values()
)

# ---------------------------------------------------------------------------
# Wait graph (rules W501-W504)
# ---------------------------------------------------------------------------
# Receiver names (last dotted segment) that denote a 2PL lock manager, so
# ``self.tm.locks.acquire(txn, item, mode, ...)`` is recognised wherever
# the manager is reached from.
LOCK_RECEIVER_NAMES = frozenset({"locks", "lock_manager"})
LOCK_ACQUIRE_METHOD = "acquire"

# ``txn.read/write`` route through ``Transaction.read/write``, which
# always forward the manager-level ``lock_timeout`` to the lock manager,
# so these sites count as *timed* lock acquisitions of the given mode.
TXN_RECEIVER_NAMES = frozenset({"txn"})
TXN_LOCK_METHODS = {"read": "r", "write": "w"}

# Classes whose ``.run(...)`` drives an internally-timed blocking
# sub-protocol (2PC votes carry the constructor's ``vote_timeout``); a
# ``yield self.<attr>.run(...)`` where ``self.<attr>`` is constructed
# from one of these counts as a timed wait and links the caller's
# closure into the class's ``run`` method.
COORDINATOR_CLASSES = frozenset({"TwoPhaseCoordinator"})
COORDINATOR_RUN_METHOD = "run"

# ``sim.all_of``/``any_of`` join futures produced by the call/lock sites
# inside their arguments; the join itself is recorded for the artifact
# but carries no timeout of its own.
JOIN_METHODS = frozenset({"all_of", "any_of"})

# Widening caps for the path-sensitive lock-order expansion: a function
# whose branch product exceeds MAX_WAIT_PATHS collapses to one
# linearised path; closure inlining stops at MAX_WAIT_DEPTH.
MAX_WAIT_PATHS = 32
MAX_WAIT_DEPTH = 12

# ---------------------------------------------------------------------------
# Interference (rules R601-R604)
# ---------------------------------------------------------------------------
# Replica-state accesses are dotted ``self.…`` attribute chains truncated
# to this many segments (``self.replica.node.name`` records as
# ``replica.node``): deeper chains describe a neighbour object's internals,
# not this instance's interleaving surface.
ACCESS_DEPTH = 2

# Container methods whose call mutates the receiver in place.  A call of
# one of these on a ``self.…`` chain counts as a write to that attribute
# in the read/write-set catalog (but not as a *rebinding* write, which is
# what the R603 lost-update check keys on).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
})

# Attribute-name fragments that mark a *guard predicate*: replica-role /
# configuration state whose validity a blocking wait can invalidate
# (deposed primary, changed view, advanced epoch).  An ``if`` test
# reading a ``self.…`` chain whose final segment contains one of these
# is a guard check for R602.
GUARD_ATTR_MARKERS = ("primary", "view", "epoch", "leader")

# Irreversible actions for R602: once one of these runs on a stale
# guard, the damage is externally visible.  ``respond``/``reply`` answer
# the client or a peer; ``commit`` publishes transaction effects.  The
# 2PC voting round (a TWO_PC wait site) is both an effect — starting an
# agreement round asserts the guard — and a fence: its participant-side
# PREPARE fencing revalidates, so windows do not extend across it.
EFFECT_METHODS = frozenset({"respond", "reply", "commit"})

# Dict-style methods whose call mutates a received message/payload in
# place (R604: handlers share payload dicts with the network layer and
# other recipients under copy-on-write broadcast, so in-place mutation
# aliases back into them).
MESSAGE_MUTATORS = frozenset({"clear", "pop", "popitem", "setdefault", "update"})

# ---------------------------------------------------------------------------
# Rule metadata (SARIF helpUri)
# ---------------------------------------------------------------------------
# Per-family anchors into docs/linting.md; every registered rule derives
# its SARIF ``helpUri`` from its id prefix so CI annotations link to the
# rule's documentation section.
FAMILY_HELP_URIS = {
    "D": "docs/linting.md#determinism-d1xx",
    "L": "docs/linting.md#layering-l2xx",
    "P": "docs/linting.md#protocol-contract-p3xx",
    "M": "docs/linting.md#message-flow-m4xx",
    "W": "docs/linting.md#wait-graph-w5xx",
    "R": "docs/linting.md#interference-r6xx",
}
DEFAULT_HELP_URI = "docs/linting.md"

# Lint-family codes accepted by the CLI ``--only-family`` filter, mapped
# to the rule-id prefixes they select.
FAMILY_PREFIXES = {
    "D1": "D1", "L2": "L2", "P3": "P3", "M4": "M4", "W5": "W5", "R6": "R6",
}

# ---------------------------------------------------------------------------
# Suppression
# ---------------------------------------------------------------------------
NOQA_MARKER = "repro: noqa"
DEFAULT_BASELINE = "lint-baseline.txt"
