"""Rule registry.

Every rule is a function decorated with :func:`rule`; the decorator
records its id, one-line summary, severity and scope.  ``file`` rules run
once per parsed file; ``project`` rules run once per lint invocation with
every file in hand (the protocol-contract family resolves class
hierarchies across modules, so it needs the whole picture).

``python -m repro.lint --list-rules`` prints this registry, which makes
the decorated docstring the rule's user-facing documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .config import DEFAULT_HELP_URI, FAMILY_HELP_URIS

__all__ = ["Rule", "rule", "all_rules", "get_rule", "selected_rules"]


@dataclass(frozen=True)
class Rule:
    id: str
    name: str
    summary: str
    severity: str
    scope: str  # "file" | "project"
    check: Callable
    doc: str
    help_uri: str = DEFAULT_HELP_URI


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, severity: str = "error", scope: str = "file"):
    """Register a check function under ``rule_id``.

    The function's docstring becomes the rule documentation; its first
    line is the summary shown by ``--list-rules``.
    """

    def decorate(func: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        if scope not in ("file", "project"):
            raise ValueError(f"bad scope {scope!r} for rule {rule_id}")
        doc = (func.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else name
        _REGISTRY[rule_id] = Rule(
            id=rule_id, name=name, summary=summary, severity=severity,
            scope=scope, check=func, doc=doc,
            help_uri=FAMILY_HELP_URIS.get(rule_id[:1], DEFAULT_HELP_URI),
        )
        return func

    return decorate


def all_rules() -> List[Rule]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def selected_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rules enabled by ``--select``/``--ignore``.

    ``select`` limits the run to the named ids (or id prefixes, so
    ``--select D`` enables the whole determinism family); ``ignore``
    removes ids from whatever is selected.
    """
    chosen = all_rules()
    if select:
        wanted = list(select)
        unknown = [w for w in wanted
                   if not any(r.id == w or r.id.startswith(w) for r in chosen)]
        if unknown:
            raise KeyError(f"unknown rule id(s) in --select: {', '.join(unknown)}")
        chosen = [r for r in chosen
                  if any(r.id == w or r.id.startswith(w) for w in wanted)]
    if ignore:
        dropped = list(ignore)
        chosen = [r for r in chosen
                  if not any(r.id == d or r.id.startswith(d) for d in dropped)]
    return chosen
