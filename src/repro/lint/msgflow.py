"""Whole-program message-flow analysis (M4xx) and the protocol catalog.

Every protocol in the tree is nodes exchanging string-typed ``Message``
envelopes: ``Node.send(dst, msg_type, **payload)`` dispatched to
``.on(msg_type, handler)`` callbacks that read ``msg["key"]``, with the
reliable-transport and group-communication layers stacking further
string-typed namespaces on top.  Nothing checks that surface at runtime
until a message is actually dropped or a handler raises ``KeyError``
deep inside a trace, so this pass checks it statically:

* every send site (``send``, ``send_many``, ``send_to_group``, ``call``,
  ``reply``) and handler registration (``.on`` / ``.on_default``) is
  resolved — through module/class constants, instance attributes and
  constructor parameters, via :mod:`.symeval` — into one send/handler
  graph;
* the group-communication primitives (``ReliableBroadcast`` and
  friends) are modelled as *bindings*: a constructor call couples a
  broadcast method to a deliver callback, giving each binding its own
  little type namespace of ``mtype`` strings;
* four rules read the graph: undeliverable message types (M401), dead
  handlers (M402), payload keys read but never sent (M403), and
  ``reply`` outside a ``call`` exchange (M404);
* :func:`build_catalog` emits the whole graph as the generated protocol
  message catalog (``docs/messages.md`` + JSON).

Everything resolves by over-approximation: an expression that cannot be
pinned down widens to a wildcard pattern, which silences — never
fabricates — findings.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .config import (
    BROADCAST_METHODS,
    CALL_CONTROL_KWARGS,
    NETWORK_RECEIVER_NAMES,
    NETWORK_SEND_KWARGS,
    PRIMITIVE_SPECS,
    REPLY_TYPE_NAME,
    SEND_METHODS,
    TRANSPORT_RECEIVER_HINT,
)
from .diagnostics import Diagnostic
from .registry import rule
from .symeval import (
    WILDCARD,
    ClassInfo,
    ProgramIndex,
    Scope,
    evaluate,
    pattern_matches,
    patterns_unify,
    program_index,
    render_pattern,
)

__all__ = [
    "MessageGraph",
    "build_graph",
    "build_catalog",
    "render_catalog_markdown",
    "render_catalog_json",
    "pattern_matches",
    "render_pattern",
]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


# ---------------------------------------------------------------------------
# Graph records
# ---------------------------------------------------------------------------

@dataclass
class SendSite:
    """One point-to-point send: ``recv.send/send_many/call(dst, TYPE, **kw)``."""

    file: str
    node: ast.Call
    kind: str                  # "send" | "call"
    patterns: FrozenSet[str]   # resolved message-type patterns
    keys: Tuple[str, ...]      # payload kwarg names
    open: bool                 # a **splat makes the schema open
    layer: str                 # "node" | "transport" (catalog display)


@dataclass
class ReplySite:
    """One ``recv.reply(request, **kw)`` — the reserved reply envelope."""

    file: str
    node: ast.Call
    keys: Tuple[str, ...]
    open: bool
    func: Optional[FuncNode]   # enclosing function (for M404 correlation)


@dataclass
class CallbackInfo:
    """A resolved handler/deliver callback and what its body reads."""

    label: str
    node: Optional[FuncNode]          # None: factory call / unresolved name
    required: Dict[str, ast.AST] = field(default_factory=dict)
    optional: Set[str] = field(default_factory=set)
    accepted: Optional[FrozenSet[str]] = None   # guarded mtypes; None = all
    guard_node: Optional[ast.AST] = None


@dataclass
class HandlerReg:
    """One ``recv.on(TYPE, handler)`` / ``recv.on_default(handler)``."""

    file: str
    node: ast.Call
    patterns: FrozenSet[str]
    callback: CallbackInfo
    wildcard: bool             # on_default: catches every type
    layer: str


@dataclass
class BroadcastSend:
    """One ``self.attr.broadcast/abcast/vscast(MTYPE, **kw)`` call."""

    file: str
    node: ast.Call
    method: str
    owner: Optional[str]       # simple name of the enclosing class
    attr: Optional[str]        # binding attribute; None = class-level self-send
    patterns: FrozenSet[str]   # mtype patterns
    keys: Tuple[str, ...]
    open: bool


@dataclass
class Binding:
    """One construction of a group-communication primitive.

    ``self.attr = Primitive(..., deliver, ...)`` couples every broadcast
    through ``self.attr`` to ``deliver``; conditional constructions of
    the same attribute yield several Binding variants under one key.
    """

    file: str
    node: ast.Call
    primitive: str             # class name in PRIMITIVE_SPECS
    owner: str                 # simple name of the owning class
    attr: str
    scopes: FrozenSet[str]     # wire channel / prefix patterns (display)
    callbacks: List[CallbackInfo]


@dataclass
class MessageGraph:
    """The unified send/handler graph for one lint invocation."""

    sends: List[SendSite] = field(default_factory=list)
    replies: List[ReplySite] = field(default_factory=list)
    handlers: List[HandlerReg] = field(default_factory=list)
    broadcast_sends: List[BroadcastSend] = field(default_factory=list)
    bindings: Dict[Tuple[str, str], List[Binding]] = field(default_factory=dict)
    index: Optional[ProgramIndex] = None

    def sends_for_binding(self, owner: str, attr: str) -> List[BroadcastSend]:
        """Broadcasts through ``self.attr`` of ``owner`` (or a subclass),
        plus class-level self-sends of the bound primitive class."""
        assert self.index is not None
        out: List[BroadcastSend] = []
        for send in self.broadcast_sends:
            if send.attr == attr and send.owner is not None:
                sender = self.index.classes.get(send.owner)
                if sender is not None and any(
                    info.name == owner for info in self.index.mro(sender)
                ):
                    out.append(send)
        primitives = {v.primitive for v in self.bindings.get((owner, attr), [])}
        for send in self.broadcast_sends:
            if send.attr is None and send.owner in primitives and send not in out:
                out.append(send)
        return out


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Last dotted segment of the receiver (``self.node.send`` -> ``node``)."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _layer_of(receiver: Optional[str]) -> str:
    if receiver and TRANSPORT_RECEIVER_HINT in receiver:
        return "transport"
    return "node"


def _payload_kwargs(call: ast.Call, drop: FrozenSet[str]) -> Tuple[Tuple[str, ...], bool]:
    keys: List[str] = []
    is_open = False
    for keyword in call.keywords:
        if keyword.arg is None:
            is_open = True
        elif keyword.arg not in drop:
            keys.append(keyword.arg)
    return tuple(keys), is_open


def _callback_params(func: FuncNode, is_method: bool) -> List[str]:
    params = [a.arg for a in func.args.args]
    if is_method and params and params[0] == "self":
        params = params[1:]
    return params


def _collect_reads(func: FuncNode, param: str,
                   required: Dict[str, ast.AST], optional: Set[str]) -> None:
    """Record ``param["k"]`` / ``param.pop("k")`` (required) and
    ``param.get("k")`` / ``"k" in param`` (optional) in ``func``'s body."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            required.setdefault(node.slice.value, node)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value
            if not (isinstance(target, ast.Name) and target.id == param):
                continue
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            key = node.args[0].value
            if node.func.attr == "pop" and len(node.args) == 1:
                required.setdefault(key, node)
            elif node.func.attr in ("get", "pop"):
                optional.add(key)
        elif isinstance(node, ast.Compare) and len(node.ops) == 1:
            if (
                isinstance(node.ops[0], (ast.In, ast.NotIn))
                and isinstance(node.comparators[0], ast.Name)
                and node.comparators[0].id == param
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
            ):
                optional.add(node.left.value)


def _mtype_guard(func: FuncNode, param: str) -> Tuple[Optional[FrozenSet[str]], Optional[ast.AST]]:
    """Accepted mtypes of a deliver callback, from its early-return guard.

    Recognises ``if mtype != "x": return`` and ``if mtype not in (...):
    return`` at any depth; anything else means the callback accepts all.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        if not (len(node.body) == 1 and isinstance(node.body[0], ast.Return)):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and test.left.id == param
        ):
            continue
        comparator = test.comparators[0]
        if isinstance(test.ops[0], ast.NotEq):
            if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
                return frozenset({comparator.value}), node
        elif isinstance(test.ops[0], ast.NotIn):
            if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                values = [
                    e.value for e in comparator.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                if values and len(values) == len(comparator.elts):
                    return frozenset(values), node
    return None, None


def _resolve_callback(
    expr: ast.expr,
    cls: Optional[ClassInfo],
    index: ProgramIndex,
    message_param: Union[str, int] = "last",
) -> CallbackInfo:
    """Resolve a handler expression to its function and read sets.

    ``message_param`` picks which callback parameter carries the payload:
    ``"last"`` for node/transport handlers (``(message)`` and
    ``(src, payload)`` both end in it), or an integer index for the
    group-layer deliver signature ``(origin, mtype, body)``.
    """
    func: Optional[FuncNode] = None
    owner: Optional[ClassInfo] = None
    label = "<unresolved>"
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and cls is not None
    ):
        for info in index.mro(cls):
            method = info.methods.get(expr.attr)
            if method is not None:
                func, owner = method, info
                label = f"{info.name}.{expr.attr}"
                break
        else:
            label = f"{cls.name}.{expr.attr}"
    elif isinstance(expr, ast.Lambda):
        func, label = expr, "<lambda>"
    elif isinstance(expr, ast.Name):
        label = expr.id
    elif isinstance(expr, ast.Call):
        label = "<factory>"

    info = CallbackInfo(label=label, node=func)
    if func is None:
        return info
    params = _callback_params(func, is_method=owner is not None)
    if message_param == "last":
        payload_param = params[-1] if params else None
        mtype_param = None
    else:
        # Group-layer deliver signature: (origin, mtype, body[, ...]).
        mtype_param = params[1] if len(params) > 1 else None
        payload_param = params[2] if len(params) > 2 else None
    if payload_param is not None:
        _collect_reads(func, payload_param, info.required, info.optional)
    if message_param != "last" and mtype_param is not None:
        info.accepted, info.guard_node = _mtype_guard(func, mtype_param)
    return info


class _Extractor:
    """One walk over a file, tracking the enclosing class and function."""

    def __init__(self, ctx, index: ProgramIndex, graph: MessageGraph) -> None:
        self.ctx = ctx
        self.module = ctx.module or ctx.path
        self.index = index
        self.graph = graph

    def run(self) -> None:
        self._visit(self.ctx.tree, None, None)

    def _visit(self, node: ast.AST, cls: Optional[ClassInfo],
               func: Optional[FuncNode]) -> None:
        if isinstance(node, ast.ClassDef):
            cls, func = self.index.classes.get(node.name), None
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            func = node
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            self._call(node, cls, func)
        for child in ast.iter_child_nodes(node):
            self._visit(child, cls, func)

    def _scope(self, cls: Optional[ClassInfo], func: Optional[FuncNode]) -> Scope:
        scoped = func if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
        return Scope(self.index, self.module, cls, scoped)

    def _call(self, call: ast.Call, cls: Optional[ClassInfo],
              func: Optional[FuncNode]) -> None:
        attr = call.func.attr
        receiver = _receiver_name(call.func)
        if attr in SEND_METHODS:
            self._send(call, cls, func, attr, receiver)
        elif attr == "reply" and call.args:
            keys, is_open = _payload_kwargs(call, frozenset())
            self.graph.replies.append(
                ReplySite(self.ctx.path, call, keys, is_open, func)
            )
        elif attr == "on" and len(call.args) == 2:
            patterns = evaluate(call.args[0], self._scope(cls, func))
            callback = _resolve_callback(call.args[1], cls, self.index)
            self.graph.handlers.append(HandlerReg(
                self.ctx.path, call, patterns, callback,
                wildcard=False, layer=_layer_of(receiver),
            ))
        elif attr == "on_default" and len(call.args) == 1:
            callback = _resolve_callback(call.args[0], cls, self.index)
            self.graph.handlers.append(HandlerReg(
                self.ctx.path, call, frozenset({WILDCARD}), callback,
                wildcard=True, layer=_layer_of(receiver),
            ))
        elif attr in BROADCAST_METHODS and call.args:
            self._broadcast(call, cls, func, attr)

    def _send(self, call: ast.Call, cls: Optional[ClassInfo],
              func: Optional[FuncNode], attr: str, receiver: Optional[str]) -> None:
        type_index = SEND_METHODS[attr]
        if len(call.args) <= type_index:
            return  # e.g. generator.send(value)
        if receiver in NETWORK_RECEIVER_NAMES:
            return  # raw Network.send: the routing layer under Node
        kwarg_names = {k.arg for k in call.keywords if k.arg}
        if attr == "send" and kwarg_names & NETWORK_SEND_KWARGS:
            return  # Node/Network boundary call, not a protocol send
        drop = CALL_CONTROL_KWARGS if attr == "call" else frozenset()
        keys, is_open = _payload_kwargs(call, drop)
        patterns = evaluate(call.args[type_index], self._scope(cls, func))
        self.graph.sends.append(SendSite(
            self.ctx.path, call,
            kind="call" if attr == "call" else "send",
            patterns=patterns, keys=keys, open=is_open,
            layer=_layer_of(receiver),
        ))

    def _broadcast(self, call: ast.Call, cls: Optional[ClassInfo],
                   func: Optional[FuncNode], method: str) -> None:
        target = call.func.value
        owner: Optional[str] = None
        attr: Optional[str] = None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and cls is not None
        ):
            owner, attr = cls.name, target.attr
        elif isinstance(target, ast.Name) and target.id == "self" and cls is not None:
            # A primitive's own re-send (e.g. ViewSyncGroup._install
            # re-issuing queued vscasts): attaches to every binding.
            spec = PRIMITIVE_SPECS.get(cls.name)
            if spec is None or spec["send"] != method:
                return
            owner, attr = cls.name, None
        else:
            return  # local-variable receiver: wire traffic still covered
        keys, is_open = _payload_kwargs(call, frozenset())
        patterns = evaluate(call.args[0], self._scope(cls, func))
        self.graph.broadcast_sends.append(BroadcastSend(
            self.ctx.path, call, method, owner, attr, patterns, keys, is_open,
        ))


def _collect_bindings(index: ProgramIndex, graph: MessageGraph) -> None:
    for info in index.classes.values():
        for attr, assignments in info.attr_exprs.items():
            for value, method in assignments:
                if not isinstance(value, ast.Call):
                    continue
                name = _simple_name(value.func)
                spec = PRIMITIVE_SPECS.get(name or "")
                if spec is None or name is None:
                    continue
                scope = Scope(index, info.module, info, method)
                binding = Binding(
                    file=info.path, node=value, primitive=name,
                    owner=info.name, attr=attr,
                    scopes=_binding_scopes(value, name, spec, scope, index),
                    callbacks=_binding_callbacks(value, spec, info, index),
                )
                graph.bindings.setdefault((info.name, attr), []).append(binding)


def _simple_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _binding_scopes(call: ast.Call, primitive: str, spec: dict,
                    scope: Scope, index: ProgramIndex) -> FrozenSet[str]:
    param = spec["channel_param"]
    if param is None:
        return frozenset({WILDCARD})
    values: Optional[FrozenSet[str]] = None
    for keyword in call.keywords:
        if keyword.arg == param:
            values = evaluate(keyword.value, scope)
            break
    if values is None:
        info = index.classes.get(primitive)
        if info is not None:
            values = index.param_values(info, param)
    if values is None:
        values = frozenset({WILDCARD})
    if spec["channel_is_prefix"]:
        values = frozenset(v + "." + WILDCARD for v in values)
    return values


def _binding_callbacks(call: ast.Call, spec: dict, owner: ClassInfo,
                       index: ProgramIndex) -> List[CallbackInfo]:
    callbacks: List[CallbackInfo] = []
    for position, kwarg in zip(spec["deliver"], spec["deliver_kwargs"]):
        expr: Optional[ast.expr] = None
        if len(call.args) > position:
            expr = call.args[position]
        else:
            for keyword in call.keywords:
                if keyword.arg == kwarg:
                    expr = keyword.value
                    break
        if expr is None:
            continue
        callbacks.append(_resolve_callback(expr, owner, index, message_param=2))
    return callbacks


# ---------------------------------------------------------------------------
# Graph construction (cached per lint invocation)
# ---------------------------------------------------------------------------

_CACHE: List[Tuple[Any, MessageGraph]] = []


def build_graph(contexts: Sequence) -> MessageGraph:
    """Build (or reuse) the message graph for this set of file contexts.

    The four M4xx rules run against one invocation's context list, so a
    single-slot identity cache makes the whole family one pass.
    """
    if _CACHE and _CACHE[0][0] is contexts:
        return _CACHE[0][1]
    index = program_index(contexts)
    graph = MessageGraph(index=index)
    for ctx in contexts:
        _Extractor(ctx, index, graph).run()
    _collect_bindings(index, graph)
    _CACHE[:] = [(contexts, graph)]
    return graph


def _finding(path: str, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        file=path, line=getattr(node, "lineno", 0), rule="",
        severity="", message=message, col=getattr(node, "col_offset", 0),
    )


def _all_wild(patterns: FrozenSet[str]) -> bool:
    return all(set(p) <= {WILDCARD} for p in patterns)


def _resolvable_sends(graph: MessageGraph) -> List[SendSite]:
    """Send sites whose type resolved at least partially.

    A send whose type is a bare unresolved parameter is a forwarding
    shim (``send_many`` fanning out through ``send``): its traffic
    originates at the outer call sites, which *do* resolve, so matching
    rules against the shim would only unify with everything and mute
    the family.
    """
    return [send for send in graph.sends if not _all_wild(send.patterns)]


def _display(patterns: FrozenSet[str]) -> str:
    return ", ".join(sorted(render_pattern(p) for p in patterns))


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------

@rule("M401", "undeliverable-message", scope="project")
def check_undeliverable(contexts) -> Iterator[Diagnostic]:
    """Message type is sent but no handler anywhere could receive it.

    A send whose resolved type unifies with no ``.on`` registration (and
    no ``on_default``) in the whole program is dispatched into
    ``Node._dispatch``'s missing-handler error — or silently dropped at
    the transport layer.  Group-communication bindings are checked the
    same way: a broadcast ``mtype`` the binding's deliver callback
    guards out is delivered to nobody.
    """
    graph = build_graph(contexts)
    handler_patterns = [
        pattern for reg in graph.handlers for pattern in reg.patterns
    ]
    for send in graph.sends:
        if _all_wild(send.patterns):
            continue
        if patterns_unify(send.patterns, handler_patterns):
            continue
        yield _finding(
            send.file, send.node,
            f"message type '{_display(send.patterns)}' is sent here but no "
            f"handler is registered for it anywhere in the program",
        )
    for (owner, attr), variants in sorted(graph.bindings.items()):
        sends = _binding_sends(graph, owner, attr)
        for send in sends:
            if send.attr is None or _all_wild(send.patterns):
                continue
            if _accepted_by_some_variant(send, variants):
                continue
            callback_names = ", ".join(
                cb.label for v in variants for cb in v.callbacks
            ) or "<none>"
            yield _finding(
                send.file, send.node,
                f"broadcast mtype '{_display(send.patterns)}' on "
                f"{owner}.{attr} is never accepted by its deliver "
                f"callback ({callback_names})",
            )


def _binding_sends(graph: MessageGraph, owner: str, attr: str) -> List[BroadcastSend]:
    return graph.sends_for_binding(owner, attr)


def _accepted_by_some_variant(send: BroadcastSend,
                              variants: List[Binding]) -> bool:
    for variant in variants:
        if not variant.callbacks:
            return True  # callback unresolved: assume it accepts
        for callback in variant.callbacks:
            if callback.node is None or callback.accepted is None:
                return True
            if patterns_unify(send.patterns, callback.accepted):
                return True
    return False


@rule("M402", "dead-handler", scope="project")
def check_dead_handlers(contexts) -> Iterator[Diagnostic]:
    """Handler is registered for a message type nothing ever sends.

    The registration is dead code — or, worse, the send site spells the
    type differently and the real traffic is undeliverable.  Group
    bindings get the mirrored check: a deliver callback guarding for an
    ``mtype`` that is never broadcast on that binding waits forever.
    """
    graph = build_graph(contexts)
    send_patterns = [
        pattern for send in _resolvable_sends(graph) for pattern in send.patterns
    ]
    for reg in graph.handlers:
        if reg.wildcard or _all_wild(reg.patterns):
            continue
        if patterns_unify(reg.patterns, send_patterns):
            continue
        yield _finding(
            reg.file, reg.node,
            f"handler registered for message type "
            f"'{_display(reg.patterns)}' but nothing in the program sends "
            f"it",
        )
    for (owner, attr), variants in sorted(graph.bindings.items()):
        sends = _binding_sends(graph, owner, attr)
        sent = [p for s in sends for p in s.patterns]
        has_wild_send = any(_all_wild(s.patterns) for s in sends)
        for variant in variants:
            for callback in variant.callbacks:
                if callback.accepted is None:
                    continue
                for mtype in sorted(callback.accepted):
                    if has_wild_send or patterns_unify([mtype], sent):
                        continue
                    where = callback.guard_node or variant.node
                    yield _finding(
                        variant.file, where,
                        f"deliver callback {callback.label} guards for "
                        f"mtype '{mtype}' but nothing broadcasts it on "
                        f"{owner}.{attr}",
                    )


@rule("M403", "payload-key-never-sent", scope="project")
def check_payload_schemas(contexts) -> Iterator[Diagnostic]:
    """Handler reads a payload key that no matching send site provides.

    A key read unconditionally (``msg["k"]`` or single-argument
    ``msg.pop("k")``) but present in no unifying send's kwargs is a
    guaranteed ``KeyError`` on every delivery.  Sends with a ``**splat``
    make the type's schema open and mute the check for it.
    """
    graph = build_graph(contexts)
    for reg in graph.handlers:
        callback = reg.callback
        if callback.node is None or not callback.required:
            continue
        matching = [
            send for send in _resolvable_sends(graph)
            if patterns_unify(send.patterns, reg.patterns)
        ]
        if not matching or any(send.open for send in matching):
            continue
        sent_keys = {key for send in matching for key in send.keys}
        for key, read in sorted(callback.required.items()):
            if key in sent_keys:
                continue
            yield _finding(
                reg.file, read,
                f"handler {callback.label} for "
                f"'{_display(reg.patterns)}' reads payload key '{key}' "
                f"which no send site of that type provides (guaranteed "
                f"KeyError on delivery)",
            )
    for (owner, attr), variants in sorted(graph.bindings.items()):
        sends = _binding_sends(graph, owner, attr)
        if not sends or any(s.open for s in sends):
            continue
        sent_keys = {key for s in sends for key in s.keys}
        for variant in variants:
            for callback in variant.callbacks:
                if callback.node is None:
                    continue
                for key, read in sorted(callback.required.items()):
                    if key in sent_keys:
                        continue
                    yield _finding(
                        variant.file, read,
                        f"deliver callback {callback.label} reads body "
                        f"key '{key}' which no broadcast on "
                        f"{owner}.{attr} provides",
                    )


@rule("M404", "reply-without-call", severity="warning", scope="project")
def check_reply_correlation(contexts) -> Iterator[Diagnostic]:
    """``reply`` in a handler whose message type is never sent via ``call``.

    ``Node.reply`` answers into the ``reply_to`` future that only
    ``Node.call`` creates; if every send site of the handled type is
    fire-and-forget ``send``, the reply is silently dropped by the
    dispatcher's unmatched-reply path.
    """
    graph = build_graph(contexts)
    by_func = {}
    for reg in graph.handlers:
        if reg.callback.node is not None:
            by_func.setdefault(id(reg.callback.node), []).append(reg)
    for reply in graph.replies:
        if reply.func is None:
            continue
        registrations = by_func.get(id(reply.func), [])
        for reg in registrations:
            matching = [
                send for send in _resolvable_sends(graph)
                if patterns_unify(send.patterns, reg.patterns)
            ]
            if not matching:
                continue
            if any(send.kind == "call" for send in matching):
                continue
            yield _finding(
                reply.file, reply.node,
                f"reply in handler {reg.callback.label} for "
                f"'{_display(reg.patterns)}', but every send of that type "
                f"is fire-and-forget (no .call creates the reply future); "
                f"the reply is silently dropped",
            )


# ---------------------------------------------------------------------------
# The generated catalog
# ---------------------------------------------------------------------------

CATALOG_HEADER = (
    "<!-- Generated by `python -m repro.lint --write-catalog docs/messages.md` "
    "(make catalog). Do not edit by hand. -->"
)


def _location(path: str, node: ast.AST) -> str:
    return f"{path}:{getattr(node, 'lineno', 0)}"


def build_catalog(contexts: Sequence) -> Dict[str, Any]:
    """The whole message graph as JSON-able data, deterministically sorted."""
    graph = build_graph(contexts)
    types: Dict[str, Dict[str, Any]] = {}

    def entry(pattern: str) -> Dict[str, Any]:
        name = render_pattern(pattern)
        return types.setdefault(name, {
            "type": name, "layer": "node", "senders": [], "handlers": [],
            "payload_keys": set(), "open_payload": False,
            "required_reads": set(), "optional_reads": set(),
        })

    for send in graph.sends:
        for pattern in send.patterns:
            record = entry(pattern)
            record["senders"].append({
                "at": _location(send.file, send.node), "kind": send.kind,
                "keys": sorted(send.keys), "open": send.open,
            })
            record["payload_keys"] |= set(send.keys)
            record["open_payload"] = record["open_payload"] or send.open
            if send.layer == "transport":
                record["layer"] = "transport"
    for reg in graph.handlers:
        for pattern in reg.patterns:
            record = entry(pattern)
            record["handlers"].append({
                "at": _location(reg.file, reg.node),
                "handler": reg.callback.label,
                "default": reg.wildcard,
            })
            record["required_reads"] |= set(reg.callback.required)
            record["optional_reads"] |= set(reg.callback.optional)
            if reg.layer == "transport":
                record["layer"] = "transport"

    if graph.replies:
        record = entry(REPLY_TYPE_NAME)
        record["layer"] = "node"
        for reply in graph.replies:
            record["senders"].append({
                "at": _location(reply.file, reply.node), "kind": "reply",
                "keys": sorted(reply.keys), "open": reply.open,
            })
            record["payload_keys"] |= set(reply.keys)
            record["open_payload"] = record["open_payload"] or reply.open
        record["handlers"].append({
            "at": "src/repro/net/node.py (call correlation)",
            "handler": "Node._dispatch", "default": False,
        })

    for record in types.values():
        record["senders"].sort(key=lambda s: (s["at"], s["kind"]))
        record["handlers"].sort(key=lambda h: h["at"])
        record["payload_keys"] = sorted(record["payload_keys"])
        record["required_reads"] = sorted(record["required_reads"])
        record["optional_reads"] = sorted(record["optional_reads"])

    broadcasts: List[Dict[str, Any]] = []
    for (owner, attr), variants in sorted(graph.bindings.items()):
        sends = graph.sends_for_binding(owner, attr)
        for variant in variants:
            broadcasts.append({
                "binding": f"{owner}.{attr}",
                "primitive": variant.primitive,
                "at": _location(variant.file, variant.node),
                "scopes": sorted(render_pattern(s) for s in variant.scopes),
                "callbacks": [
                    {
                        "handler": cb.label,
                        "accepted": (sorted(cb.accepted)
                                     if cb.accepted is not None else ["*"]),
                        "required_reads": sorted(cb.required),
                        "optional_reads": sorted(cb.optional),
                    }
                    for cb in variant.callbacks
                ],
                "mtypes": sorted({
                    render_pattern(p) for s in sends for p in s.patterns
                }),
                "sends": [
                    {
                        "at": _location(s.file, s.node),
                        "mtype": _display(s.patterns),
                        "keys": sorted(s.keys), "open": s.open,
                    }
                    for s in sorted(sends, key=lambda s: (s.file, s.node.lineno))
                ],
            })

    return {
        "types": [types[name] for name in sorted(types)],
        "broadcast_bindings": broadcasts,
    }


def render_catalog_json(catalog: Dict[str, Any]) -> str:
    return json.dumps(catalog, indent=2, sort_keys=True) + "\n"


def render_catalog_markdown(catalog: Dict[str, Any]) -> str:
    lines: List[str] = [
        "# Protocol message catalog",
        "",
        CATALOG_HEADER,
        "",
        "Every string-typed message the tree can put on the wire, with its",
        "senders, handlers and inferred payload schema, as resolved by the",
        "M4xx message-flow pass (`src/repro/lint/msgflow.py`).  `*` marks a",
        "fragment the static evaluator could not pin down.",
        "",
        "## Point-to-point and transport message types",
        "",
        "| type | layer | senders | handlers | payload keys | required reads |",
        "|------|-------|---------|----------|--------------|----------------|",
    ]
    for record in catalog["types"]:
        senders = "<br>".join(
            f"`{s['at']}` ({s['kind']})" for s in record["senders"]
        ) or "—"
        handlers = "<br>".join(
            f"`{h['at']}` {h['handler']}" + (" (default)" if h["default"] else "")
            for h in record["handlers"]
        ) or "—"
        keys = ", ".join(record["payload_keys"]) or "—"
        if record["open_payload"]:
            keys += " (+open)"
        reads = ", ".join(record["required_reads"]) or "—"
        if record["optional_reads"]:
            reads += " (opt: " + ", ".join(record["optional_reads"]) + ")"
        lines.append(
            f"| `{record['type']}` | {record['layer']} | {senders} | "
            f"{handlers} | {keys} | {reads} |"
        )
    lines += [
        "",
        "## Group-communication bindings",
        "",
        "Each binding couples one broadcast primitive instance to a deliver",
        "callback; `mtypes` is the binding's own little type namespace and",
        "`scopes` the wire channels its traffic travels on.",
        "",
        "| binding | primitive | scopes | mtypes | callbacks |",
        "|---------|-----------|--------|--------|-----------|",
    ]
    for binding in catalog["broadcast_bindings"]:
        callbacks = "<br>".join(
            f"{cb['handler']} (accepts: {', '.join(cb['accepted'])};"
            f" reads: {', '.join(cb['required_reads']) or '—'})"
            for cb in binding["callbacks"]
        ) or "—"
        lines.append(
            f"| `{binding['binding']}` (`{binding['at']}`) | "
            f"{binding['primitive']} | "
            f"{', '.join(f'`{s}`' for s in binding['scopes'])} | "
            f"{', '.join(f'`{m}`' for m in binding['mtypes']) or '—'} | "
            f"{callbacks} |"
        )
    lines.append("")
    return "\n".join(lines)
