"""Whole-program wait-graph analysis (W5xx) and the generated wait graph.

The paper's functional model distinguishes replication techniques by
*where they block*: which phase holds locks, waits on 2PC votes, or
awaits a group-communication round.  Nothing at runtime verifies that
those blocking structures are deadlock-free — a chaos run just hangs —
so this pass checks them statically.

Every blocking point in the tree is extracted into a per-handler **wait
graph**:

* ``yield node.call(dst, TYPE, ...)`` — a request/reply wait for the
  handler that serves ``TYPE`` (resolved through the M4xx send/handler
  graph);
* ``locks.acquire(txn, item, mode, ...)`` and ``txn.read/write`` — 2PL
  lock waits with symbolically-evaluated item patterns;
* ``coordinator.run(...)`` — the 2PC voting round (internally timed by
  ``vote_timeout``), whose closure links into the PREPARE exchange;
* ``sim.all_of/any_of(...)`` — joins over futures produced by the call
  and lock sites inside their arguments.

Graph nodes are functions (handlers, their spawned generators, shared
helpers); edges are "this function's closure blocks awaiting a message
another handler serves, or a lock another path releases".  Four rules
read the graph:

* **W501** — blocking call or lock acquisition with no ``timeout=``: a
  crash of the callee (or a distributed deadlock) leaves the caller
  blocked forever.
* **W502** — cross-node wait cycle: handler A awaits a reply whose
  serving handler transitively awaits a type A serves — a static
  distributed deadlock.
* **W503** — lock-order inversion: two code paths acquire the same two
  concrete items in conflicting orders.
* **W504** — blocking call made while holding locks, without a timeout:
  lock starvation under crash (the locks are held until the call that
  can never return returns).

:func:`build_waitgraph_artifact` emits the graph as the generated wait
graph (``docs/waitgraph.md`` + JSON + one DOT file per technique).

Everything resolves by over-approximation in the same spirit as
:mod:`.symeval`: unresolvable message types and lock items widen to
wildcards, which silence — never fabricate — findings; unresolvable
branch structure linearises, which is documented in docs/linting.md.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .config import (
    ACCESS_DEPTH,
    COORDINATOR_CLASSES,
    COORDINATOR_RUN_METHOD,
    EFFECT_METHODS,
    GUARD_ATTR_MARKERS,
    JOIN_METHODS,
    LOCK_ACQUIRE_METHOD,
    LOCK_RECEIVER_NAMES,
    MAX_WAIT_DEPTH,
    MAX_WAIT_PATHS,
    MUTATOR_METHODS,
    NETWORK_RECEIVER_NAMES,
    PROTOCOL_BASE,
    PROTOCOL_INFO_NAME,
    TXN_LOCK_METHODS,
    TXN_RECEIVER_NAMES,
)
from .diagnostics import Diagnostic
from .msgflow import FuncNode, HandlerReg, MessageGraph, build_graph
from .registry import rule
from .symeval import (
    WILDCARD,
    ClassInfo,
    ProgramIndex,
    Scope,
    evaluate,
    patterns_unify,
    render_pattern,
)

__all__ = [
    "WaitGraph",
    "WaitSite",
    "build_waitgraph",
    "build_waitgraph_artifact",
    "render_waitgraph_json",
    "render_waitgraph_markdown",
    "render_waitgraph_dot",
]

# Wait-site kinds.
CALL = "call"    # node.call request/reply wait
LOCK = "lock"    # 2PL lock acquisition
TWO_PC = "2pc"   # coordinator.run voting round (internally timed)
JOIN = "join"    # sim.all_of / sim.any_of barrier


# ---------------------------------------------------------------------------
# Graph records
# ---------------------------------------------------------------------------

@dataclass
class WaitSite:
    """One blocking point: where a simulated process can stop making
    progress until someone else acts."""

    file: str
    node: ast.Call
    kind: str                   # CALL | LOCK | TWO_PC | JOIN
    timed: bool                 # a timeout bounds the wait
    patterns: FrozenSet[str]    # message types (call) / item patterns (lock)
    detail: str                 # lock mode, join method or coordinator class
    func_key: str               # owning function's stable key


# An event is ("wait", WaitSite), ("callee", func_key),
# ("read", (attr, node)), ("write", (attr, node, via)),
# ("guard", (attr, node)) or ("effect", (label, node)).  The last four
# carry replica-state accesses, guard checks and externally-visible
# effects for the R6xx interference pass (see interference.py); the
# wait-graph rules below only consume "wait" and "callee".
Event = Tuple[str, Any]


@dataclass
class FuncInfo:
    """One function of the program with its blocking behaviour."""

    key: str                    # stable id: "module.Class.method"
    label: str                  # display: "Class.method" / "function"
    file: str
    module: str
    cls: Optional[ClassInfo]
    node: FuncNode
    waits: List[WaitSite] = field(default_factory=list)
    callees: List[str] = field(default_factory=list)   # func keys, ordered
    # Branch-sensitive event sequences (capped; see _stmt_sequences).
    templates: List[List[Event]] = field(default_factory=list)


@dataclass
class WaitGraph:
    """The whole-program wait graph for one lint invocation."""

    funcs: Dict[str, FuncInfo] = field(default_factory=dict)
    sites: List[WaitSite] = field(default_factory=list)
    message_graph: Optional[MessageGraph] = None
    index: Optional[ProgramIndex] = None

    def closure(self, key: str) -> List[FuncInfo]:
        """``key``'s function plus everything reachable via its calls."""
        out: List[FuncInfo] = []
        seen: Set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.funcs.get(current)
            if info is None:
                continue
            out.append(info)
            stack.extend(reversed(info.callees))
        return out

    def closure_waits(self, key: str) -> List[WaitSite]:
        return [site for info in self.closure(key) for site in info.waits]


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

def _simple_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _has_timeout(call: ast.Call) -> bool:
    """A ``timeout=`` kwarg (or an opaque ``**splat``) bounds the wait."""
    for keyword in call.keywords:
        if keyword.arg == "timeout" or keyword.arg is None:
            return True
    return False


def _arg_or_kwarg(call: ast.Call, position: int, name: str) -> Optional[ast.expr]:
    if len(call.args) > position:
        return call.args[position]
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _resolve_mode(expr: Optional[ast.expr], scope: Scope) -> str:
    """A lock mode as ``"r"``/``"w"``, or ``""`` when unresolvable."""
    if expr is None:
        return ""
    values = evaluate(expr, scope)
    if len(values) == 1:
        value = next(iter(values))
        if value in ("r", "w"):
            return value
    return ""


def _attr_classes(
    receiver: ast.expr, cls: Optional[ClassInfo], index: ProgramIndex
) -> List[ClassInfo]:
    """Classes a ``self.attr`` receiver may be an instance of, resolved
    through ``self.attr = SomeClass(...)`` assignments in the MRO."""
    if not (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
        and cls is not None
    ):
        return []
    out: List[ClassInfo] = []
    for info in index.mro(cls):
        for value, _method in info.attr_exprs.get(receiver.attr, ()):
            if isinstance(value, ast.Call):
                name = _simple_name(value.func)
                target = index.classes.get(name or "")
                if target is not None and target not in out:
                    out.append(target)
    return out


def _self_chain(node: ast.AST) -> Optional[List[str]]:
    """The dotted attribute chain of a ``self.a.b...`` expression, or
    ``None`` when the expression is not rooted at ``self``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and parts:
        parts.reverse()
        return parts
    return None


def _chain_str(parts: List[str]) -> str:
    """Canonical access name: the chain truncated to ACCESS_DEPTH."""
    return ".".join(parts[:ACCESS_DEPTH])


def _guard_events(test: ast.AST) -> List[Event]:
    """``("guard", (attr, node))`` for every self-rooted access in a
    branch condition whose final attribute looks like a view/epoch/
    primary predicate (``self.is_primary``, ``self.view`` ...)."""
    out: List[Event] = []
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute):
            chain = _self_chain(node)
            if chain and any(m in chain[-1] for m in GUARD_ATTR_MARKERS):
                out.append(("guard", (_chain_str(chain), node)))
    return out


class _WaitExtractor:
    """Second pass over one file: fill every FuncInfo's waits/events."""

    def __init__(self, graph: WaitGraph,
                 module_funcs: Dict[str, Dict[str, str]]) -> None:
        self.graph = graph
        self.module_funcs = module_funcs

    def extract(self, info: FuncInfo) -> None:
        nested = {
            stmt.name: _func_key(info.module, info.cls, stmt, parent=info)
            for stmt in info.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        scope = Scope(self.graph.index, info.module, info.cls,
                      info.node if isinstance(
                          info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                      ) else None)
        info.templates = self._stmt_sequences(
            list(info.node.body), info, scope, nested
        )
        seen_waits: Set[int] = set()
        seen_callees: Set[str] = set()
        for template in info.templates:
            for kind, payload in template:
                if kind == "wait" and id(payload) not in seen_waits:
                    seen_waits.add(id(payload))
                    info.waits.append(payload)
                    self.graph.sites.append(payload)
                elif kind == "callee" and payload not in seen_callees:
                    seen_callees.add(payload)
                    info.callees.append(payload)

    # -- branch-sensitive sequencing ------------------------------------

    def _stmt_sequences(self, stmts: List[ast.stmt], info: FuncInfo,
                        scope: Scope, nested: Dict[str, str]) -> List[List[Event]]:
        """Event sequences through ``stmts``: ``if``/``else`` fork paths,
        everything else linearises in source order.  The path count is
        capped at MAX_WAIT_PATHS; overflow collapses to one linearised
        path (a widening: extra order pairs can only be introduced by
        real code on both sides of the inversion, see docs)."""
        done: List[List[Event]] = []
        paths: List[List[Event]] = [[]]
        for stmt in stmts:
            if not paths:
                break  # every path already returned/raised
            if isinstance(stmt, ast.If):
                test = _guard_events(stmt.test) + self._events_in(
                    stmt.test, info, scope, nested
                )
                arms = (
                    self._stmt_sequences(stmt.body, info, scope, nested)
                    + self._stmt_sequences(stmt.orelse, info, scope, nested)
                )
                forks = [test + arm for arm in arms]
            elif isinstance(stmt, (ast.Return, ast.Raise,
                                   ast.Break, ast.Continue)):
                # Control leaves this statement list: later statements
                # are unreachable on this path.  The trailing "stop"
                # sentinel stays on the path so every enclosing
                # _stmt_sequences level also stops extending it; rules
                # and expansion skip the sentinel kind.
                forks = [
                    self._events_in(stmt, info, scope, nested)
                    + [("stop", None)]
                ]
            else:
                forks = [self._events_in(stmt, info, scope, nested)]
            next_paths: List[List[Event]] = []
            for p in paths:
                for fork in forks:
                    combined = p + fork
                    if combined and combined[-1][0] == "stop":
                        done.append(combined)
                    else:
                        next_paths.append(combined)
            paths = next_paths
            if len(done) + len(paths) > MAX_WAIT_PATHS:
                flat = [e for p in done + paths for e in p]
                merged: List[Event] = []
                seen: Set[Tuple[str, int]] = set()
                for event in flat:
                    marker = (event[0], id(event[1]))
                    if marker not in seen:
                        seen.add(marker)
                        merged.append(event)
                done, paths = [], [merged]
        return done + paths

    def _events_in(self, node: ast.AST, info: FuncInfo, scope: Scope,
                   nested: Dict[str, str]) -> List[Event]:
        """Events under ``node`` in source order, skipping nested defs."""
        out: List[Event] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return out
        if isinstance(node, (ast.If, ast.While)):
            # Branch conditions below statement level linearise through
            # here; the top-level ``if`` fork in _stmt_sequences prepends
            # its own guard events.
            out.extend(_guard_events(node.test))
        elif isinstance(node, ast.Attribute):
            chain = _self_chain(node)
            if chain is not None:
                name = _chain_str(chain)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    via = "=" if isinstance(node.ctx, ast.Store) else "del"
                    out.append(("write", (name, node, via)))
                elif not (len(chain) == 1
                          and self._is_plain_method(info, chain[0])):
                    out.append(("read", (name, node)))
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            chain = _self_chain(node.value)
            if chain is not None:
                out.append(("write", (_chain_str(chain), node, "[]")))
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Attribute):
            chain = _self_chain(node.target)
            if chain is not None:
                # ``self.x += 1`` reads then rebinds x within a single
                # statement: no suspension point fits between, so the
                # write is tagged "aug" — R603 ignores it (it cannot
                # lose an update under cooperative scheduling) while the
                # runtime write sets keep it (it calls __setattr__).
                name = _chain_str(chain)
                out.append(("read", (name, node)))
                out.append(("write", (name, node, "aug")))
                out.extend(self._events_in(node.value, info, scope, nested))
                return out
        if isinstance(node, ast.Call):
            out.extend(self._classify(node, info, scope, nested))
            # The method attribute of a call is an invocation, not a
            # state read: recurse into the receiver, skip the attribute.
            for child in ast.iter_child_nodes(node):
                if child is node.func and isinstance(child, ast.Attribute):
                    out.extend(
                        self._events_in(child.value, info, scope, nested)
                    )
                else:
                    out.extend(self._events_in(child, info, scope, nested))
            return out
        for child in ast.iter_child_nodes(node):
            out.extend(self._events_in(child, info, scope, nested))
        return out

    def _is_plain_method(self, info: FuncInfo, attr: str) -> bool:
        """True when ``self.attr`` names an undecorated method (a bound-
        method access, not replica state); property reads stay reads."""
        index = self.graph.index
        if info.cls is None or index is None:
            return False
        for owner in index.mro(info.cls):
            method = owner.methods.get(attr)
            if method is not None:
                for dec in method.decorator_list:
                    name = _simple_name(dec)
                    if name in ("property", "cached_property",
                                "setter", "getter", "deleter"):
                        return False
                return True
        return False

    # -- call classification --------------------------------------------

    def _classify(self, call: ast.Call, info: FuncInfo, scope: Scope,
                  nested: Dict[str, str]) -> List[Event]:
        events: List[Event] = []
        index = self.graph.index
        assert index is not None
        func = call.func
        if isinstance(func, ast.Name):
            target = self._resolve_plain(func.id, info, nested)
            if target is not None:
                events.append(("callee", target))
            return events
        if not isinstance(func, ast.Attribute):
            return events
        attr = func.attr
        receiver = _receiver_name(func)

        site: Optional[WaitSite] = None
        if attr == "call" and len(call.args) >= 2 \
                and receiver not in NETWORK_RECEIVER_NAMES:
            site = WaitSite(
                info.file, call, CALL, _has_timeout(call),
                evaluate(call.args[1], scope), "", info.key,
            )
        elif attr == LOCK_ACQUIRE_METHOD and receiver in LOCK_RECEIVER_NAMES:
            item = _arg_or_kwarg(call, 1, "item")
            mode = _arg_or_kwarg(call, 2, "mode")
            if item is not None:
                site = WaitSite(
                    info.file, call, LOCK, _has_timeout(call),
                    evaluate(item, scope), _resolve_mode(mode, scope),
                    info.key,
                )
        elif attr in TXN_LOCK_METHODS and receiver in TXN_RECEIVER_NAMES \
                and call.args:
            # Transaction.read/write always forward the manager-level
            # lock_timeout, so these count as timed acquisitions.
            site = WaitSite(
                info.file, call, LOCK, True,
                evaluate(call.args[0], scope), TXN_LOCK_METHODS[attr],
                info.key,
            )
        elif attr in JOIN_METHODS:
            site = WaitSite(
                info.file, call, JOIN, True, frozenset(), attr, info.key,
            )
        elif attr == COORDINATOR_RUN_METHOD:
            for target in _attr_classes(func.value, info.cls, index):
                if target.name in COORDINATOR_CLASSES:
                    site = WaitSite(
                        info.file, call, TWO_PC, True, frozenset(),
                        target.name, info.key,
                    )
                    break
        if site is not None:
            events.append(("wait", site))

        if attr in EFFECT_METHODS:
            # Externally visible effect: a reply leaves this replica, a
            # commit publishes writes.  R602 reports stale guards here.
            events.append(("effect", (attr, call)))
        if attr in MUTATOR_METHODS:
            chain = _self_chain(func.value)
            if chain is not None:
                events.append(("write", (_chain_str(chain), call, attr)))

        # Callee edges: self.m(...), self.attr.m(...) through resolved
        # attribute classes (this also links coordinator.run into the
        # 2PC implementation so its PREPARE exchange joins the closure).
        value = func.value
        if isinstance(value, ast.Name) and value.id == "self" and info.cls:
            for owner in index.mro(info.cls):
                method = owner.methods.get(attr)
                if method is not None:
                    events.append(
                        ("callee", _method_key(owner, method))
                    )
                    break
        else:
            for target in _attr_classes(value, info.cls, index):
                for owner in index.mro(target):
                    method = owner.methods.get(attr)
                    if method is not None:
                        events.append(("callee", _method_key(owner, method)))
                        break
        return events

    def _resolve_plain(self, name: str, info: FuncInfo,
                       nested: Dict[str, str]) -> Optional[str]:
        """A bare ``name(...)`` call: nested def, module function, or a
        ``from``-imported module function (re-export chains followed)."""
        if name in nested:
            return nested[name]
        module, original, hops = info.module, name, 0
        index = self.graph.index
        assert index is not None
        while hops <= 4:
            key = self.module_funcs.get(module, {}).get(original)
            if key is not None:
                return key
            target = index.from_imports.get(module, {}).get(original)
            if target is None:
                return None
            module, original = target
            hops += 1
        return None


# -- function registration ---------------------------------------------------

def _func_key(module: str, cls: Optional[ClassInfo], node: FuncNode,
              parent: Optional[FuncInfo] = None) -> str:
    name = getattr(node, "name", "<lambda>")
    if parent is not None:
        return f"{parent.key}.{name}"
    if cls is not None:
        return f"{module}.{cls.name}.{name}"
    return f"{module}.{name}"


def _method_key(owner: ClassInfo, method: ast.FunctionDef) -> str:
    return f"{owner.module}.{owner.name}.{method.name}"


def _register_functions(ctx, index: ProgramIndex, graph: WaitGraph,
                        module_funcs: Dict[str, Dict[str, str]]) -> None:
    module = ctx.module or ctx.path
    table = module_funcs.setdefault(module, {})

    def visit(node: ast.AST, cls: Optional[ClassInfo],
              parent: Optional[FuncInfo]) -> None:
        current = parent
        if isinstance(node, ast.ClassDef):
            cls, current = index.classes.get(node.name), None
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = _func_key(module, cls, node, parent=parent)
            label = f"{cls.name}.{node.name}" if cls and parent is None \
                else node.name
            info = FuncInfo(
                key=key, label=label, file=ctx.path, module=module,
                cls=cls, node=node,
            )
            # First definition wins (mirrors the symeval class policy).
            graph.funcs.setdefault(key, info)
            if parent is None and cls is None:
                table.setdefault(node.name, key)
            current = info
        for child in ast.iter_child_nodes(node):
            visit(child, cls, current)

    visit(ctx.tree, None, None)


# ---------------------------------------------------------------------------
# Graph construction (cached per lint invocation)
# ---------------------------------------------------------------------------

_CACHE: List[Tuple[Any, WaitGraph]] = []


def build_waitgraph(contexts: Sequence) -> WaitGraph:
    """Build (or reuse) the wait graph for this set of file contexts."""
    if _CACHE and _CACHE[0][0] is contexts:
        return _CACHE[0][1]
    _EXPANSION_CACHES.clear()
    message_graph = build_graph(contexts)
    graph = WaitGraph(message_graph=message_graph, index=message_graph.index)
    assert graph.index is not None
    module_funcs: Dict[str, Dict[str, str]] = {}
    for ctx in contexts:
        _register_functions(ctx, graph.index, graph, module_funcs)
    extractor = _WaitExtractor(graph, module_funcs)
    for key in sorted(graph.funcs):
        extractor.extract(graph.funcs[key])
    graph.sites.sort(key=lambda s: (s.file, s.node.lineno, s.node.col_offset))
    _CACHE[:] = [(contexts, graph)]
    return graph


def _finding(path: str, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        file=path, line=getattr(node, "lineno", 0), rule="",
        severity="", message=message, col=getattr(node, "col_offset", 0),
    )


def _all_wild(patterns: FrozenSet[str]) -> bool:
    return all(set(p) <= {WILDCARD} for p in patterns)


def _display(patterns: FrozenSet[str]) -> str:
    return ", ".join(sorted(render_pattern(p) for p in patterns))


# ---------------------------------------------------------------------------
# Path expansion (shared by W503/W504 and the artifact)
# ---------------------------------------------------------------------------

_EXPANSION_CACHES: Dict[int, Dict[str, Optional[List[List[WaitSite]]]]] = {}


def _expand_paths(graph: WaitGraph, key: str,
                  depth: int = 0) -> List[List[WaitSite]]:
    """Wait-site sequences through ``key`` with callees inlined.

    Memoised per graph (an in-progress marker breaks recursion cycles)
    and depth-capped; path products are capped at MAX_WAIT_PATHS,
    overflowing to a linearised merge.
    """
    cache = _EXPANSION_CACHES.setdefault(id(graph), {})
    if key in cache:
        cached = cache[key]
        return cached if cached is not None else [[]]
    if depth > MAX_WAIT_DEPTH:
        return [[]]
    info = graph.funcs.get(key)
    if info is None:
        return [[]]
    cache[key] = None  # in progress: a recursive cycle expands to nothing
    out: List[List[WaitSite]] = []
    for template in info.templates or [[]]:
        paths: List[List[WaitSite]] = [[]]
        for kind, payload in template:
            if kind == "wait":
                paths = [p + [payload] for p in paths]
                continue
            if kind != "callee":
                continue
            sub = _expand_paths(graph, payload, depth + 1)
            if len(paths) * len(sub) > MAX_WAIT_PATHS:
                flat = [site for sub_path in sub for site in sub_path]
                paths = [p + flat for p in paths]
            else:
                paths = [p + sp for p in paths for sp in sub]
        out.extend(paths)
        if len(out) > MAX_WAIT_PATHS:
            merged = [site for p in out for site in p]
            out = [merged]
    cache[key] = out
    return out


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------

@rule("W501", "untimed-blocking-call", scope="project")
def check_untimed_blocking(contexts) -> Iterator[Diagnostic]:
    """Blocking call or lock acquisition has no ``timeout=``.

    ``node.call`` waits for a reply under the crash-stop model: if the
    callee crashes first, no reply ever arrives and the calling process
    blocks forever (the future fails only if *this* node crashes).  A
    lock acquired without a timeout can likewise wait forever on a
    distributed deadlock, which no single site's wait-for graph can see
    (Section 4.4.1) — lock-wait timeouts are the classical resolution.
    An explicit ``timeout=None`` argument is a visible opt-out and
    passes; so do ``txn.read/write``, which inherit the transaction
    manager's ``lock_timeout``.
    """
    graph = build_waitgraph(contexts)
    for site in graph.sites:
        if site.timed:
            continue
        if site.kind == CALL:
            yield _finding(
                site.file, site.node,
                f"blocking call of '{_display(site.patterns)}' has no "
                f"timeout=; a crash of the callee leaves this process "
                f"blocked forever",
            )
        elif site.kind == LOCK:
            yield _finding(
                site.file, site.node,
                f"lock acquisition of '{_display(site.patterns)}' has no "
                f"timeout=; distributed deadlocks are invisible to the "
                f"local wait-for graph and only a lock-wait timeout "
                f"breaks them",
            )


def _handler_regs(graph: WaitGraph) -> List[Tuple[HandlerReg, str]]:
    """Handler registrations with resolved callbacks, as (reg, func key)."""
    assert graph.message_graph is not None
    by_id = {id(info.node): key for key, info in graph.funcs.items()}
    out: List[Tuple[HandlerReg, str]] = []
    for reg in graph.message_graph.handlers:
        if reg.wildcard or reg.callback.node is None:
            continue
        key = by_id.get(id(reg.callback.node))
        if key is not None:
            out.append((reg, key))
    out.sort(key=lambda pair: (pair[0].file, pair[0].node.lineno, pair[1]))
    return out


def _wait_edges(
    graph: WaitGraph,
) -> Tuple[List[Tuple[HandlerReg, str]], Dict[int, List[Tuple[int, WaitSite]]]]:
    """The handler-level wait graph: ``edges[i]`` holds ``(j, site)`` when
    handler ``i``'s closure blocks on a type handler ``j`` serves."""
    regs = _handler_regs(graph)
    edges: Dict[int, List[Tuple[int, WaitSite]]] = {}
    for i, (_reg, key) in enumerate(regs):
        for site in graph.closure_waits(key):
            if site.kind != CALL or _all_wild(site.patterns):
                continue
            for j, (other, _other_key) in enumerate(regs):
                if patterns_unify(site.patterns, other.patterns):
                    edges.setdefault(i, []).append((j, site))
    return regs, edges


def _strongly_connected(count: int,
                        edges: Dict[int, List[Tuple[int, WaitSite]]]
                        ) -> List[List[int]]:
    """Tarjan's SCCs over the handler wait graph (iterative, stable)."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    def strongconnect(root: int) -> None:
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            successors = [j for j, _ in edges.get(node, [])]
            for offset in range(child_index, len(successors)):
                succ = successors[offset]
                if succ not in index_of:
                    work.append((node, offset + 1))
                    work.append((succ, 0))
                    recursed = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if recursed:
                continue
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in range(count):
        if node not in index_of:
            strongconnect(node)
    return sccs


@rule("W502", "static-wait-cycle", scope="project")
def check_wait_cycles(contexts) -> Iterator[Diagnostic]:
    """Handlers form a cross-node wait cycle: a static distributed deadlock.

    Handler A's closure (the functions it calls or spawns, transitively)
    blocks on a ``node.call`` whose message type is served by handler B,
    and B's closure transitively blocks on a type served by A.  With one
    request in flight on each side, both nodes wait forever: the classic
    distributed deadlock that no local wait-for graph detects.  Cycles
    whose every wait carries a timeout still livelock under retry, so
    the rule flags them regardless of timeouts; break the cycle by
    replying before blocking (as the 2PC participant does) or justify it
    with a ``# repro: noqa W502``.
    """
    graph = build_waitgraph(contexts)
    regs, edges = _wait_edges(graph)
    reported: Set[FrozenSet[str]] = set()
    for component in _strongly_connected(len(regs), edges):
        members = set(component)
        inner = [
            (i, j, site)
            for i in component
            for j, site in edges.get(i, [])
            if j in members and (len(component) > 1 or j == i)
        ]
        if not inner:
            continue
        labels = frozenset(regs[i][0].callback.label for i in component)
        if labels in reported:
            continue
        reported.add(labels)
        inner.sort(key=lambda e: (e[2].file, e[2].node.lineno))
        description = "; ".join(
            f"{regs[i][0].callback.label} awaits "
            f"'{_display(site.patterns)}' served by "
            f"{regs[j][0].callback.label}"
            for i, j, site in inner
        )
        first = inner[0][2]
        yield _finding(
            first.file, first.node,
            f"static distributed deadlock: {description} — every handler "
            f"in the cycle blocks on a reply the others cannot produce "
            f"while blocked",
        )


def _concrete(pattern: str) -> bool:
    return WILDCARD not in pattern


def _lock_pairs(
    graph: WaitGraph,
) -> Dict[Tuple[str, str], List[Tuple[WaitSite, WaitSite, str, str, str]]]:
    """Ordered concrete lock pairs: ``(a, b)`` when some path acquires
    item ``a`` and then item ``b`` while still holding ``a`` (strict 2PL
    holds every lock until commit)."""
    pairs: Dict[Tuple[str, str],
                List[Tuple[WaitSite, WaitSite, str, str, str]]] = {}
    for key in sorted(graph.funcs):
        for path in _expand_paths(graph, key):
            locks = [site for site in path if site.kind == LOCK]
            for i, first in enumerate(locks):
                for second in locks[i + 1:]:
                    for a in first.patterns:
                        for b in second.patterns:
                            if not (_concrete(a) and _concrete(b)) or a == b:
                                continue
                            records = pairs.setdefault((a, b), [])
                            records.append(
                                (first, second, first.detail,
                                 second.detail, key)
                            )
    return pairs


@rule("W503", "lock-order-inversion", scope="project")
def check_lock_order(contexts) -> Iterator[Diagnostic]:
    """Two code paths acquire the same two locks in conflicting orders.

    Under strict 2PL both locks are held until commit, so one process
    running the first path and another running the second deadlock as
    soon as each holds its first item: a lock-order inversion.  Only
    *concrete* item names participate (dynamic items widen to wildcards
    and stay silent — the runtime deadlock detector and lock timeouts
    own that ground), and a pair is flagged only when the modes conflict
    on both items (two read locks coexist and cannot deadlock).
    """
    graph = build_waitgraph(contexts)
    pairs = _lock_pairs(graph)
    reported: Set[FrozenSet[str]] = set()
    for (a, b) in sorted(pairs):
        if (b, a) not in pairs:
            continue
        unordered = frozenset((a, b))
        if unordered in reported:
            continue
        conflict = None
        for fwd in pairs[(a, b)]:
            for rev in pairs[(b, a)]:
                first_fwd, second_fwd, mode_a_fwd, mode_b_fwd, owner_fwd = fwd
                _f, _s, mode_b_rev, mode_a_rev, owner_rev = rev
                if owner_fwd == owner_rev and first_fwd is rev[1]:
                    continue  # the same two sites seen from one path
                modes_a = {mode_a_fwd, mode_a_rev}
                modes_b = {mode_b_fwd, mode_b_rev}
                if "" in modes_a or "" in modes_b:
                    continue  # unresolved mode: stay silent
                if modes_a == {"r"} or modes_b == {"r"}:
                    continue  # shared locks coexist on that item
                conflict = (fwd, rev)
                break
            if conflict:
                break
        if conflict is None:
            continue
        reported.add(unordered)
        fwd, rev = conflict
        yield _finding(
            fwd[1].file, fwd[1].node,
            f"lock-order inversion: this path acquires '{a}' then '{b}' "
            f"(in {fwd[4]}), but {rev[4]} acquires '{b}' then '{a}'; two "
            f"concurrent transactions taking these paths deadlock under "
            f"strict 2PL",
        )


@rule("W504", "blocking-call-under-locks", scope="project")
def check_blocking_under_locks(contexts) -> Iterator[Diagnostic]:
    """Untimed blocking call made while holding locks.

    Strict 2PL holds every acquired lock until commit or abort.  A
    ``node.call`` without a timeout issued after a lock acquisition
    therefore pins those locks on the outcome of a remote node: if it
    crashed, the locks are held forever and every waiter queued behind
    them starves — the blocking behaviour the paper attributes to
    database protocols hardens into a permanent hang.  Internally-timed
    waits (2PC's vote round) and calls carrying ``timeout=`` pass.
    """
    graph = build_waitgraph(contexts)
    reported: Set[int] = set()
    for key in sorted(graph.funcs):
        for path in _expand_paths(graph, key):
            holding: Optional[WaitSite] = None
            for site in path:
                if site.kind == LOCK:
                    holding = holding or site
                elif (site.kind == CALL and not site.timed
                      and holding is not None
                      and id(site.node) not in reported):
                    reported.add(id(site.node))
                    yield _finding(
                        site.file, site.node,
                        f"blocking call of '{_display(site.patterns)}' "
                        f"while holding the lock acquired at "
                        f"{holding.file}:{holding.node.lineno} has no "
                        f"timeout=; a callee crash leaves the lock held "
                        f"forever (strict 2PL releases only at "
                        f"commit/abort)",
                    )


# ---------------------------------------------------------------------------
# The generated wait graph
# ---------------------------------------------------------------------------

WAITGRAPH_HEADER = (
    "<!-- Generated by `python -m repro.lint --write-waitgraph "
    "docs/waitgraph.md` (make waitgraph). Do not edit by hand. -->"
)


def _location(path: str, node: ast.AST) -> str:
    return f"{path}:{getattr(node, 'lineno', 0)}"


def _protocol_techniques(graph: WaitGraph) -> List[Tuple[str, ClassInfo]]:
    """(technique name, class) for every ReplicaProtocol subclass."""
    assert graph.index is not None
    out: List[Tuple[str, ClassInfo]] = []
    for name in sorted(graph.index.classes):
        info = graph.index.classes[name]
        if info.name == PROTOCOL_BASE:
            continue
        mro = graph.index.mro(info)
        if not any(a.name == PROTOCOL_BASE for a in mro[1:]):
            continue
        technique = info.name.lower()
        assign = info.consts.get(PROTOCOL_INFO_NAME)
        if isinstance(assign, ast.Call):
            for keyword in assign.keywords:
                if keyword.arg == "name":
                    values = evaluate(
                        keyword.value, Scope(graph.index, info.module, info, None)
                    )
                    if len(values) == 1 and _concrete(next(iter(values))):
                        technique = next(iter(values))
                    break
        out.append((technique, info))
    out.sort(key=lambda pair: pair[0])
    return out


def _serving_handlers(graph: WaitGraph, site: WaitSite) -> List[str]:
    if site.kind != CALL or _all_wild(site.patterns):
        return []
    assert graph.message_graph is not None
    return sorted({
        reg.callback.label
        for reg in graph.message_graph.handlers
        if not reg.wildcard and patterns_unify(site.patterns, reg.patterns)
    })


def _site_record(graph: WaitGraph, site: WaitSite) -> Dict[str, Any]:
    info = graph.funcs.get(site.func_key)
    return {
        "at": _location(site.file, site.node),
        "in": info.label if info else site.func_key,
        "kind": site.kind,
        "timed": site.timed,
        "awaits": sorted(render_pattern(p) for p in site.patterns),
        "detail": site.detail,
        "served_by": _serving_handlers(graph, site),
    }


def build_waitgraph_artifact(contexts: Sequence) -> Dict[str, Any]:
    """The wait graph as JSON-able data, deterministically sorted."""
    graph = build_waitgraph(contexts)
    assert graph.index is not None

    techniques: List[Dict[str, Any]] = []
    for technique, cls in _protocol_techniques(graph):
        mro_names = {info.name for info in graph.index.mro(cls)}
        own_keys = sorted(
            key for key, info in graph.funcs.items()
            if info.cls is not None and info.cls.name in mro_names
        )
        reach: List[FuncInfo] = []
        seen: Set[str] = set()
        for key in own_keys:
            for info in graph.closure(key):
                if info.key not in seen:
                    seen.add(info.key)
                    reach.append(info)
        reach.sort(key=lambda info: info.key)

        handlers = []
        for reg, key in _handler_regs(graph):
            if key in seen:
                handlers.append({
                    "type": ", ".join(
                        sorted(render_pattern(p) for p in reg.patterns)
                    ),
                    "handler": reg.callback.label,
                    "at": _location(reg.file, reg.node),
                })
        handlers.sort(key=lambda h: (h["type"], h["at"]))

        waits = [
            _site_record(graph, site)
            for info in reach for site in info.waits
        ]
        waits.sort(key=lambda w: (w["at"], w["kind"]))

        calls = sorted({
            (info.key, callee)
            for info in reach for callee in info.callees
            if callee in seen
        })
        techniques.append({
            "technique": technique,
            "class": cls.name,
            "file": cls.path,
            "handlers": handlers,
            "functions": [info.key for info in reach],
            "labels": {info.key: info.label for info in reach},
            "calls": [{"from": a, "to": b} for a, b in calls],
            "waits": waits,
        })

    regs, edges = _wait_edges(graph)
    handler_edges = sorted(
        {
            (
                regs[i][0].callback.label,
                _display(site.patterns),
                regs[j][0].callback.label,
                _location(site.file, site.node),
            )
            for i, targets in edges.items()
            for j, site in targets
        }
    )
    untimed = [s for s in graph.sites if not s.timed and s.kind in (CALL, LOCK)]
    return {
        "techniques": techniques,
        # Every non-wildcard handler registration in the tree, technique
        # or not: the universe the handler-level wait edges point into
        # (db-layer handlers like the 2PC termination protocol's status
        # answerer serve waits but sit outside every technique closure).
        "handlers": [
            {
                "type": ", ".join(
                    sorted(render_pattern(p) for p in reg.patterns)
                ),
                "handler": reg.callback.label,
                "at": _location(reg.file, reg.node),
            }
            for reg, _key in _handler_regs(graph)
        ],
        "handler_wait_edges": [
            {"from": a, "type": t, "to": b, "at": at}
            for a, t, b, at in handler_edges
        ],
        "summary": {
            "blocking_sites": len(graph.sites),
            "call_waits": sum(1 for s in graph.sites if s.kind == CALL),
            "lock_waits": sum(1 for s in graph.sites if s.kind == LOCK),
            "two_pc_waits": sum(1 for s in graph.sites if s.kind == TWO_PC),
            "joins": sum(1 for s in graph.sites if s.kind == JOIN),
            "untimed": len(untimed),
        },
    }


def render_waitgraph_json(artifact: Dict[str, Any]) -> str:
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def render_waitgraph_markdown(artifact: Dict[str, Any]) -> str:
    summary = artifact["summary"]
    lines: List[str] = [
        "# Protocol wait graph",
        "",
        WAITGRAPH_HEADER,
        "",
        "Every blocking point the W5xx wait-graph pass",
        "(`src/repro/lint/waitgraph.py`) resolves in the tree: request/reply",
        "calls with the handler that serves them, 2PL lock acquisitions, 2PC",
        "voting rounds and future joins.  `*` marks a fragment the static",
        "evaluator could not pin down; `timed` means a `timeout=` (or an",
        "internal vote timeout) bounds the wait.",
        "",
        f"Blocking sites: {summary['blocking_sites']} "
        f"({summary['call_waits']} calls, {summary['lock_waits']} lock",
        f"acquisitions, {summary['two_pc_waits']} 2PC rounds, "
        f"{summary['joins']} joins); untimed: {summary['untimed']}.",
        "",
    ]
    for technique in artifact["techniques"]:
        lines += [
            f"## {technique['technique']} (`{technique['class']}`)",
            "",
            f"Defined in `{technique['file']}`; wait graph exported as "
            f"`docs/waitgraph/{technique['technique']}.dot`.",
            "",
        ]
        if technique["handlers"]:
            lines += [
                "| handled type | handler | registered at |",
                "|--------------|---------|---------------|",
            ]
            for handler in technique["handlers"]:
                lines.append(
                    f"| `{handler['type']}` | {handler['handler']} | "
                    f"`{handler['at']}` |"
                )
            lines.append("")
        if technique["waits"]:
            lines += [
                "| blocking site | in | kind | awaits | timed | served by |",
                "|---------------|----|------|--------|-------|-----------|",
            ]
            for wait in technique["waits"]:
                awaits = ", ".join(
                    f"`{a}`" for a in wait["awaits"]
                ) or (f"({wait['detail']})" if wait["detail"] else "—")
                served = ", ".join(wait["served_by"]) or "—"
                lines.append(
                    f"| `{wait['at']}` | {wait['in']} | {wait['kind']} | "
                    f"{awaits} | {'yes' if wait['timed'] else 'no'} | "
                    f"{served} |"
                )
            lines.append("")
        else:
            lines += ["No blocking sites: this technique never waits.", ""]
    lines += [
        "## Cross-handler wait edges",
        "",
        "Handler A blocks awaiting a message type handler B serves.  The",
        "W502 rule fails the build if these edges ever form a cycle.",
        "",
    ]
    if artifact["handler_wait_edges"]:
        lines += [
            "| waiting handler | awaits | serving handler | at |",
            "|-----------------|--------|-----------------|----|",
        ]
        for edge in artifact["handler_wait_edges"]:
            lines.append(
                f"| {edge['from']} | `{edge['type']}` | {edge['to']} | "
                f"`{edge['at']}` |"
            )
    else:
        lines.append("(none)")
    lines.append("")
    return "\n".join(lines)


def render_waitgraph_dot(artifact: Dict[str, Any], technique: str) -> str:
    """One technique's wait graph in DOT: call edges solid, waits dashed
    (red when untimed), lock/join targets as ellipses."""
    record = next(
        t for t in artifact["techniques"] if t["technique"] == technique
    )
    lines = [
        f'digraph "{technique}" {{',
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10, fontname=monospace];",
    ]
    handler_funcs = {h["handler"] for h in record["handlers"]}
    labels = record["labels"]
    nodes: List[str] = []
    for key in record["functions"]:
        short = labels.get(key, key)
        style = ', style=bold' if short in handler_funcs else ""
        nodes.append(f'  "{short}" [label="{short}"{style}];')
    edges: List[str] = []
    for call in record["calls"]:
        src = labels.get(call["from"], call["from"])
        dst = labels.get(call["to"], call["to"])
        edges.append(f'  "{src}" -> "{dst}" [color=gray50];')
    for wait in record["waits"]:
        src = wait["in"]
        colour = "red" if not wait["timed"] else "black"
        if wait["kind"] == "call":
            label = ", ".join(wait["awaits"]).replace('"', "'")
            targets = wait["served_by"] or [f"type:{label}"]
            for target in targets:
                edges.append(
                    f'  "{src}" -> "{target}" [style=dashed, '
                    f'label="{label}", color={colour}];'
                )
                if target.startswith("type:"):
                    nodes.append(f'  "{target}" [shape=ellipse];')
        elif wait["kind"] == "lock":
            items = ", ".join(wait["awaits"]).replace('"', "'")
            mode = wait["detail"] or "?"
            target = f"lock:{items}:{mode}"
            nodes.append(f'  "{target}" [shape=ellipse];')
            edges.append(
                f'  "{src}" -> "{target}" [style=dashed, color={colour}];'
            )
        elif wait["kind"] == "2pc":
            target = f"2pc:{wait['detail']}"
            nodes.append(f'  "{target}" [shape=ellipse];')
            edges.append(
                f'  "{src}" -> "{target}" [style=dashed, color={colour}];'
            )
    for line in sorted(set(nodes)):
        lines.append(line)
    for line in sorted(set(edges)):
        lines.append(line)
    lines.append("}")
    return "\n".join(lines) + "\n"
