"""Command line for the linter: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 when clean, 1 when findings remain after suppression and
baseline, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .config import DEFAULT_BASELINE, FAMILY_PREFIXES
from .diagnostics import Baseline, render_json, render_sarif, render_text
from .engine import collect_files, parse_file, run_lint
from .registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism, layering and protocol-contract "
                    "linter for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="only run these rule ids / id prefixes (repeatable, "
             "comma-separated ok; e.g. --select D101 --select L)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULE",
        help="skip these rule ids / id prefixes (repeatable)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report findings even when the baseline covers them",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--write-catalog", metavar="FILE",
        help="generate the protocol message catalog (markdown at FILE, "
             "JSON next to it) from the message-flow graph and exit",
    )
    parser.add_argument(
        "--check-catalog", metavar="FILE",
        help="verify the generated catalog at FILE (and its JSON sibling) "
             "is up to date with the code; exit 1 when stale",
    )
    parser.add_argument(
        "--write-waitgraph", metavar="FILE",
        help="generate the wait graph (markdown at FILE, JSON next to it, "
             "per-technique DOT files in a 'waitgraph' sibling directory) "
             "and exit",
    )
    parser.add_argument(
        "--check-waitgraph", metavar="FILE",
        help="verify the generated wait graph at FILE (JSON sibling and "
             "DOT directory included) is up to date; exit 1 when stale",
    )
    parser.add_argument(
        "--write-interference", metavar="FILE",
        help="generate the interference catalog (markdown at FILE, JSON "
             "next to it) from the R6xx read/write-set analysis and exit",
    )
    parser.add_argument(
        "--check-interference", metavar="FILE",
        help="verify the generated interference catalog at FILE (and its "
             "JSON sibling) is up to date with the code; exit 1 when stale",
    )
    parser.add_argument(
        "--only-family", action="append", default=None, metavar="FAMILY",
        help="only run these rule families (repeatable, comma-separated "
             f"ok; one of {', '.join(sorted(FAMILY_PREFIXES))})",
    )
    return parser


def _json_sibling(markdown_path: str) -> str:
    stem, _ = os.path.splitext(markdown_path)
    return stem + ".json"


def _catalog_mode(args: argparse.Namespace) -> int:
    """Generate or verify the protocol message catalog."""
    from .msgflow import (
        build_catalog,
        render_catalog_json,
        render_catalog_markdown,
    )

    contexts = []
    for path in collect_files(args.paths):
        context, error = parse_file(path)
        if error is not None:
            print(error.render(), file=sys.stderr)
            return 2
        contexts.append(context)
    catalog = build_catalog(contexts)
    markdown = render_catalog_markdown(catalog)
    payload = render_catalog_json(catalog)

    if args.write_catalog:
        json_path = _json_sibling(args.write_catalog)
        with open(args.write_catalog, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {args.write_catalog} and {json_path} "
              f"({len(catalog['types'])} message types, "
              f"{len(catalog['broadcast_bindings'])} bindings)")
        return 0

    target = args.check_catalog
    json_path = _json_sibling(target)
    stale = []
    for path, expected in ((target, markdown), (json_path, payload)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                current = handle.read()
        except FileNotFoundError:
            stale.append(f"{path}: missing")
            continue
        if current != expected:
            stale.append(f"{path}: out of date")
    if stale:
        for entry in stale:
            print(entry, file=sys.stderr)
        print(f"regenerate with: python -m repro.lint "
              f"{' '.join(args.paths)} --write-catalog {target}",
              file=sys.stderr)
        return 1
    print(f"catalog up to date: {target}, {json_path}")
    return 0


def _waitgraph_mode(args: argparse.Namespace) -> int:
    """Generate or verify the wait graph (markdown + JSON + DOT files)."""
    from .waitgraph import (
        build_waitgraph_artifact,
        render_waitgraph_dot,
        render_waitgraph_json,
        render_waitgraph_markdown,
    )

    contexts = []
    for path in collect_files(args.paths):
        context, error = parse_file(path)
        if error is not None:
            print(error.render(), file=sys.stderr)
            return 2
        contexts.append(context)
    artifact = build_waitgraph_artifact(contexts)
    target = args.write_waitgraph or args.check_waitgraph
    json_path = _json_sibling(target)
    dot_dir = os.path.join(os.path.dirname(target) or ".", "waitgraph")
    expected = {
        target: render_waitgraph_markdown(artifact),
        json_path: render_waitgraph_json(artifact),
    }
    for technique in artifact["techniques"]:
        name = technique["technique"]
        expected[os.path.join(dot_dir, f"{name}.dot")] = render_waitgraph_dot(
            artifact, name
        )

    if args.write_waitgraph:
        os.makedirs(dot_dir, exist_ok=True)
        for path, content in expected.items():
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
        for name in os.listdir(dot_dir):
            stale_path = os.path.join(dot_dir, name)
            if name.endswith(".dot") and stale_path not in expected:
                os.remove(stale_path)
        print(f"wrote {target}, {json_path} and "
              f"{len(artifact['techniques'])} DOT file(s) in {dot_dir}/ "
              f"({artifact['summary']['blocking_sites']} blocking sites)")
        return 0

    stale = []
    for path, content in sorted(expected.items()):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                current = handle.read()
        except FileNotFoundError:
            stale.append(f"{path}: missing")
            continue
        if current != content:
            stale.append(f"{path}: out of date")
    if stale:
        for entry in stale:
            print(entry, file=sys.stderr)
        print(f"regenerate with: python -m repro.lint "
              f"{' '.join(args.paths)} --write-waitgraph {target}",
              file=sys.stderr)
        return 1
    print(f"wait graph up to date: {target}, {json_path}, {dot_dir}/")
    return 0


def _interference_mode(args: argparse.Namespace) -> int:
    """Generate or verify the interference catalog (markdown + JSON)."""
    from .interference import (
        build_interference_artifact,
        render_interference_json,
        render_interference_markdown,
    )

    contexts = []
    for path in collect_files(args.paths):
        context, error = parse_file(path)
        if error is not None:
            print(error.render(), file=sys.stderr)
            return 2
        contexts.append(context)
    artifact = build_interference_artifact(contexts)
    markdown = render_interference_markdown(artifact)
    payload = render_interference_json(artifact)

    if args.write_interference:
        json_path = _json_sibling(args.write_interference)
        with open(args.write_interference, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {args.write_interference} and {json_path} "
              f"({artifact['summary']['handlers']} handlers, "
              f"{artifact['summary']['windows']} windows)")
        return 0

    target = args.check_interference
    json_path = _json_sibling(target)
    stale = []
    for path, expected in ((target, markdown), (json_path, payload)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                current = handle.read()
        except FileNotFoundError:
            stale.append(f"{path}: missing")
            continue
        if current != expected:
            stale.append(f"{path}: out of date")
    if stale:
        for entry in stale:
            print(entry, file=sys.stderr)
        print(f"regenerate with: python -m repro.lint "
              f"{' '.join(args.paths)} --write-interference {target}",
              file=sys.stderr)
        return 1
    print(f"interference catalog up to date: {target}, {json_path}")
    return 0


def _split_rules(values: Optional[List[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in all_rules():
            print(f"{entry.id}  {entry.name:28s} [{entry.severity}] "
                  f"{entry.summary}")
        return 0

    if args.write_catalog or args.check_catalog:
        try:
            return _catalog_mode(args)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if args.write_waitgraph or args.check_waitgraph:
        try:
            return _waitgraph_mode(args)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if args.write_interference or args.check_interference:
        try:
            return _interference_mode(args)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    try:
        select = _split_rules(args.select)
        ignore = _split_rules(args.ignore)
        families = _split_rules(args.only_family)
        if families is not None:
            prefixes = []
            for family in families:
                prefix = FAMILY_PREFIXES.get(family.upper())
                if prefix is None:
                    print(f"unknown rule family: {family} (expected one "
                          f"of {', '.join(sorted(FAMILY_PREFIXES))})",
                          file=sys.stderr)
                    return 2
                prefixes.append(prefix)
            # A family is a select-prefix; explicit --select narrows
            # further within the chosen families.
            select = [
                s for s in select
                if any(s.startswith(p) or p.startswith(s) for p in prefixes)
            ] if select else prefixes
        if args.write_baseline:
            findings = run_lint(args.paths, select, ignore, baseline=None)
            Baseline.from_diagnostics(findings).save(args.baseline)
            print(f"wrote {len(findings)} finding(s) to {args.baseline}")
            return 0
        baseline = None if args.no_baseline else args.baseline
        findings = run_lint(args.paths, select, ignore, baseline=baseline)
    except KeyError as exc:
        print(str(exc).strip("'\""), file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    elif findings:
        print(render_text(findings))
    else:
        baseline_note = ""
        if baseline and os.path.exists(baseline):
            covered = len(Baseline.load(baseline))
            if covered:
                baseline_note = f" ({covered} baselined)"
        print(f"repro.lint: clean{baseline_note}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
