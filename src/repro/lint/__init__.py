"""repro.lint — AST-based static analysis for the repro codebase.

Six rule families guard the invariants every regenerated figure rests
on (see ``docs/linting.md`` for the full catalogue):

* **Determinism (D1xx)** — the simulation must be bit-for-bit
  reproducible given a seed, so the deterministic core may not touch the
  global ``random`` API, wall clocks, ``id()``/``hash()``-derived values,
  or unsorted set iteration.
* **Layering (L2xx)** — imports must follow the package DAG declared in
  :mod:`repro.lint.config`; lower layers never import upward.
* **Protocol contracts (P3xx)** — every ``ReplicaProtocol`` subclass
  declares a ``ProtocolInfo`` and statically emits exactly the RE/SC/EX/
  AC/END phases its declared row in the paper's classification matrices
  claims.
* **Message flow (M4xx)** — a whole-program send/handler graph
  (:mod:`repro.lint.msgflow`, on top of the symbolic string evaluator in
  :mod:`repro.lint.symeval`) proves every sent message type has a
  handler, every handler a sender, every unconditionally-read payload
  key a send site that provides it, and every ``reply`` a ``call`` to
  answer.  The same graph generates the protocol message catalog
  (``docs/messages.md`` + JSON).
* **Wait graph (W5xx)** — a whole-program wait graph
  (:mod:`repro.lint.waitgraph`, sharing the message-flow graph and
  symbolic evaluator) extracts every blocking point — request/reply
  calls, lock acquisitions, 2PC voting rounds, future joins — and
  proves every blocking site carries a timeout, no cross-node wait
  cycle (static distributed deadlock) exists, lock acquisition order is
  globally consistent, and no untimed call blocks while holding locks.
  The same graph generates the wait-graph artifact
  (``docs/waitgraph.md`` + JSON + per-technique Graphviz DOT).
* **Interference (R6xx)** — per-handler replica-state read/write sets
  and atomicity windows (:mod:`repro.lint.interference`, over the
  wait-graph extractor's event templates): every blocking wait is a
  window in which any other dispatchable handler may run, so the rules
  flag pre-wait snapshots used after resumption, role guards not
  re-validated before the next externally-visible effect, attributes
  rebound by concurrent handlers with no common lock, and handlers
  mutating the aliased payloads they received.  The same pass generates
  the interference catalog (``docs/interference.md`` + JSON), whose
  per-class write sets the dynamic tests hold observed ``__setattr__``
  traffic to (observed ⊆ static).

Programmatic use::

    from repro.lint import run_lint
    diagnostics = run_lint(["src/repro"])   # [] when clean

Command line::

    python -m repro.lint [paths] [--format text|json|sarif] [--select/--ignore RULE]
    python -m repro.lint [paths] --write-catalog docs/messages.md
    python -m repro.lint [paths] --write-waitgraph docs/waitgraph.md

The package is self-contained (stdlib ``ast`` only) and sits outside the
runtime layer DAG: nothing in ``repro``'s runtime imports it, and it
imports nothing from the runtime, so the tooling can never distort what
it measures.
"""

from .cli import main
from .diagnostics import Baseline, Diagnostic
from .engine import run_lint
from .registry import all_rules

__all__ = ["run_lint", "Diagnostic", "Baseline", "all_rules", "main"]
