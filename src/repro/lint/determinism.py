"""Determinism rules (D1xx).

Every figure this repository regenerates assumes that a seeded run is
bit-for-bit reproducible.  These rules forbid, inside the deterministic
core packages (:data:`~repro.lint.config.DETERMINISTIC_PACKAGES`), the
constructs that silently break that guarantee:

* the interpreter-global ``random`` API (D101/D102) — seeded
  ``random.Random`` instances threaded from the :class:`Simulator` are
  the sanctioned source of randomness;
* wall-clock and entropy reads (D103) — simulated time comes from
  ``sim.now``;
* ``id()`` (D104) and builtin ``hash()`` on non-dunder paths (D105) —
  both vary across interpreter invocations (CPython salts string
  hashing), so any name, seed or ordering derived from them differs
  between two runs of the same seed;
* iterating a ``set`` where order can escape (D106) — wrap the iterable
  in ``sorted(...)`` or use an order-insensitive consumer.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .config import (
    DETERMINISTIC_MODULES,
    DETERMINISTIC_PACKAGES,
    NONDETERMINISTIC_CALLS,
    ORDER_INSENSITIVE_CONSUMERS,
    RANDOM_ALLOWED_ATTRS,
    RANDOM_MODULE,
)
from .diagnostics import Diagnostic
from .registry import rule

ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _finding(ctx, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        file=ctx.path, line=getattr(node, "lineno", 0), rule="",
        severity="", message=message, col=getattr(node, "col_offset", 0),
    )


def _in_scope(ctx) -> bool:
    return (
        ctx.package in DETERMINISTIC_PACKAGES
        or ctx.module in DETERMINISTIC_MODULES
    )


def _dotted(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None if not a pure path."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _import_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``module`` by plain imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.startswith(module + "."):
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


@rule("D101", "global-random-call")
def check_global_random(ctx) -> Iterator[Diagnostic]:
    """Call into the module-level ``random`` API inside the deterministic core.

    ``random.random()``, ``random.shuffle()`` etc. share one global
    Mersenne state: a single call desynchronises every seeded component
    in the process.  Construct a seeded ``random.Random`` (allowed) and
    thread it from the Simulator instead.
    """
    if not _in_scope(ctx):
        return
    aliases = _import_aliases(ctx.tree, RANDOM_MODULE)
    if not aliases:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = _dotted(node.func)
        if (
            path
            and len(path) == 2
            and path[0] in aliases
            and path[1] not in RANDOM_ALLOWED_ATTRS
        ):
            yield _finding(
                ctx, node,
                f"call to module-level random.{path[1]}() shares global RNG "
                f"state; use a seeded random.Random threaded from Simulator",
            )


@rule("D102", "from-random-import")
def check_from_random_import(ctx) -> Iterator[Diagnostic]:
    """``from random import <function>`` inside the deterministic core.

    Importing ``randint``/``choice``/... by name hides the global-state
    dependency from D101's call check; only ``Random`` itself may be
    imported this way.
    """
    if not _in_scope(ctx):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == RANDOM_MODULE:
            for alias in node.names:
                if alias.name not in RANDOM_ALLOWED_ATTRS:
                    yield _finding(
                        ctx, node,
                        f"from random import {alias.name} pulls in global-RNG "
                        f"state; import random.Random and seed it",
                    )


@rule("D103", "wall-clock")
def check_wall_clock(ctx) -> Iterator[Diagnostic]:
    """Wall-clock or OS-entropy read inside the deterministic core.

    ``time.time()``, ``datetime.now()``, ``os.urandom()``, ``uuid.uuid4()``
    and the ``secrets`` module make a run depend on when/where it
    executes.  Simulated time is ``sim.now``; entropy comes from the
    seeded RNG.
    """
    if not _in_scope(ctx):
        return
    watched: Dict[str, Set[str]] = {}
    for module, attrs in NONDETERMINISTIC_CALLS.items():
        for alias in _import_aliases(ctx.tree, module):
            watched.setdefault(alias, set()).update(attrs)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module in NONDETERMINISTIC_CALLS:
            forbidden = NONDETERMINISTIC_CALLS[node.module]
            for alias in node.names:
                if alias.name in forbidden or "*" in forbidden:
                    yield _finding(
                        ctx, node,
                        f"from {node.module} import {alias.name} imports a "
                        f"nondeterministic source; use simulated time/seeded RNG",
                    )
        if not isinstance(node, ast.Call):
            continue
        path = _dotted(node.func)
        if not path or len(path) < 2:
            continue
        attrs = watched.get(path[0])
        if attrs is not None and (path[-1] in attrs or "*" in attrs):
            yield _finding(
                ctx, node,
                f"call to {'.'.join(path)}() reads wall-clock/entropy; "
                f"use sim.now or a seeded random.Random",
            )


@rule("D104", "id-based-identity")
def check_id_calls(ctx) -> Iterator[Diagnostic]:
    """Builtin ``id()`` used inside the deterministic core.

    CPython object addresses differ between interpreter invocations, so
    any name, key or ordering derived from ``id()`` breaks cross-run
    reproducibility the moment it reaches a trace or a tie-break.  Use a
    monotonic counter owned by the Simulator instead.
    """
    if not _in_scope(ctx):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            yield _finding(
                ctx, node,
                "id() yields run-dependent values; derive identity from a "
                "deterministic counter",
            )


@rule("D105", "salted-hash")
def check_hash_calls(ctx) -> Iterator[Diagnostic]:
    """Builtin ``hash()`` outside ``__hash__`` inside the deterministic core.

    CPython salts ``str``/``bytes`` hashing per process (PYTHONHASHSEED),
    so seeding or ordering anything with ``hash(...)`` gives two
    identically-seeded invocations different executions.  Implementing
    ``__hash__`` for container membership is fine; feeding ``hash()``
    into seeds or sort keys is not — use a stable digest such as
    ``zlib.crc32``.
    """
    if not _in_scope(ctx):
        return
    dunder_spans = [
        (n.lineno, max(getattr(n, "end_lineno", n.lineno) or n.lineno, n.lineno))
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n.name == "__hash__"
    ]
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            line = node.lineno
            if any(start <= line <= stop for start, stop in dunder_spans):
                continue
            yield _finding(
                ctx, node,
                "hash() is salted per process (PYTHONHASHSEED); use a stable "
                "digest (zlib.crc32) for seeds and orderings",
            )


@rule("D107", "module-level-counter")
def check_module_counters(ctx) -> Iterator[Diagnostic]:
    """Module- or class-level ``itertools.count()`` in the deterministic core.

    A counter bound at import time is shared by every simulation run in
    the interpreter, so the ids it hands out depend on how many runs came
    before — the same seed produces different request/uid streams on its
    second execution.  Own the counter per instance (assign it in
    ``__init__``) or thread it from the Simulator.
    """
    if not _in_scope(ctx):
        return
    aliases = _import_aliases(ctx.tree, "itertools")
    from_names = {
        alias.asname or alias.name
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ImportFrom) and node.module == "itertools"
        for alias in node.names
        if alias.name == "count"
    }

    def is_count_call(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        path = _dotted(value.func)
        if not path:
            return False
        if len(path) == 2 and path[0] in aliases and path[1] == "count":
            return True
        return len(path) == 1 and path[0] in from_names

    def shared_assigns(body) -> Iterator[ast.stmt]:
        for stmt in body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                yield stmt
            elif isinstance(stmt, ast.ClassDef):
                yield from shared_assigns(stmt.body)

    for stmt in shared_assigns(ctx.tree.body):
        value = stmt.value
        if value is not None and is_count_call(value):
            yield _finding(
                ctx, stmt,
                "itertools.count() bound at import time carries state across "
                "runs; make the counter per-instance or thread it from the "
                "Simulator",
            )


# ---------------------------------------------------------------------------
# D106 — unordered iteration
# ---------------------------------------------------------------------------

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _SetTracker(ast.NodeVisitor):
    """Conservatively tracks names/attributes that definitely hold sets.

    A symbol is tracked only if *every* assignment to it in the scanned
    scope is a set-valued expression; one non-set assignment untracks it.
    ``self.x`` attributes are tracked class-wide the same way.
    """

    def __init__(self) -> None:
        self.sets: Set[str] = set()
        self.poisoned: Set[str] = set()

    def note(self, target: ast.AST, value: ast.AST) -> None:
        key = self._key(target)
        if key is None:
            return
        if is_set_expr(value, self.sets - self.poisoned):
            self.sets.add(key)
        else:
            self.poisoned.add(key)

    @staticmethod
    def _key(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self.note(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.note(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        key = self._key(node.target)
        if key is not None and not isinstance(node.op, _SET_OPS):
            self.poisoned.add(key)
        self.generic_visit(node)

    def tracked(self) -> Set[str]:
        return self.sets - self.poisoned


def is_set_expr(node: ast.AST, tracked: Set[str]) -> bool:
    """Whether ``node`` syntactically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in tracked
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}" in tracked
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and is_set_expr(node.func.value, tracked)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return is_set_expr(node.left, tracked) or is_set_expr(node.right, tracked)
    return False


def _describe(node: ast.AST) -> str:
    path = _dotted(node)
    if path:
        return ".".join(path)
    if isinstance(node, ast.Call):
        inner = _dotted(node.func)
        return f"{'.'.join(inner)}(...)" if inner else "a set expression"
    return "a set expression"


@rule("D106", "unordered-iteration")
def check_unordered_iteration(ctx) -> Iterator[Diagnostic]:
    """Iteration over a ``set`` whose order can escape, without ``sorted``.

    Set iteration order depends on insertion history and hash salting, so
    a ``for`` loop (or ``list``/``tuple``/``enumerate``/``iter`` call, or
    a comprehension) over a set leaks nondeterministic order into
    whatever it builds.  Wrap the iterable in ``sorted(...)``.  Membership
    tests and order-insensitive reductions (``len``/``min``/``sum``/...)
    are fine.
    """
    if not _in_scope(ctx):
        return

    defs = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    def walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root`` without descending into nested def/class bodies."""
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, defs):
                    stack.append(child)

    def scan(scope: ast.AST, inherited: Set[str]) -> Iterator[Diagnostic]:
        tracker = _SetTracker()
        tracker.sets |= inherited
        body = scope.body if hasattr(scope, "body") else []
        nested: List[ast.AST] = []

        def walk_stmts(stmts) -> Iterator[Diagnostic]:
            for stmt in stmts:
                if isinstance(stmt, defs):
                    nested.append(stmt)
                    continue
                for node in walk_shallow(stmt):
                    if isinstance(node, defs) and node is not stmt:
                        nested.append(node)
                    if isinstance(node, (ast.Assign, ast.AnnAssign,
                                         ast.AugAssign)):
                        tracker.visit(node)
                yield from check_stmt(stmt)

        def check_stmt(stmt: ast.stmt) -> Iterator[Diagnostic]:
            tracked = tracker.tracked()
            # A comprehension that feeds an order-insensitive reduction
            # (all(x == y for x in some_set), sorted(...), sum(...)) never
            # leaks iteration order; exempt those argument nodes.
            exempt: Set[int] = set()
            for node in walk_shallow(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ORDER_INSENSITIVE_CONSUMERS
                ):
                    for arg in node.args:
                        exempt.add(id(arg))
            for node in walk_shallow(stmt):
                if id(node) in exempt:
                    continue
                if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expr(
                    node.iter, tracked
                ):
                    yield _finding(
                        ctx, node,
                        f"for-loop iterates {_describe(node.iter)} (a set) in "
                        f"nondeterministic order; wrap it in sorted(...)",
                    )
                if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    for gen in node.generators:
                        if is_set_expr(gen.iter, tracked):
                            yield _finding(
                                ctx, node,
                                f"comprehension iterates {_describe(gen.iter)} "
                                f"(a set) in nondeterministic order; wrap it "
                                f"in sorted(...)",
                            )
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    name = node.func.id
                    if name in ORDER_SENSITIVE_CONSUMERS and node.args and is_set_expr(
                        node.args[0], tracked
                    ):
                        yield _finding(
                            ctx, node,
                            f"{name}() materialises {_describe(node.args[0])} "
                            f"(a set) in nondeterministic order; wrap it in "
                            f"sorted(...)",
                        )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and is_set_expr(node.args[0], tracked)
                ):
                    yield _finding(
                        ctx, node,
                        f"str.join() over {_describe(node.args[0])} (a set) "
                        f"concatenates in nondeterministic order; wrap it in "
                        f"sorted(...)",
                    )

        yield from walk_stmts(body)
        # For classes, collect self.x set attributes across all methods
        # first, then scan each method with them in scope.
        if isinstance(scope, ast.ClassDef):
            attr_tracker = _SetTracker()
            for node in ast.walk(scope):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    attr_tracker.visit(node)
            attr_sets = {k for k in attr_tracker.tracked() if k.startswith("self.")}
            for method in nested:
                yield from scan(method, set(attr_sets))
        else:
            for inner in nested:
                yield from scan(inner, set())

    yield from scan(ctx.tree, set())
