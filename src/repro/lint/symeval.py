"""Symbolic string evaluation for the message-flow pass (M4xx).

Message types in the tree are rarely string literals at the use site:
they are module constants (``DATA = "rt.data"``), class constants
(``CHANNEL = "rb.msg"``), instance attributes assigned in ``__init__``
(``self._req_type = f"{channel_prefix}.req"``), entries of dict-literal
attributes (``self._types["estimate"]``), or f-strings over constructor
parameters whose values arrive from call sites two modules away
(``Consensus(..., channel_prefix=f"{prefix}.ct")``).

:func:`evaluate` resolves such an expression to a *set of patterns*: each
pattern is a concrete string in which :data:`WILDCARD` marks a fragment
that could not be resolved (``f"vs.v{view_id}.estimate"`` becomes
``"vs.v\\x00.estimate"``).  Constructor parameters are resolved to the
union of their default value and every argument passed at any
construction site of the class or a subclass, iterated to a fixpoint, so
nested prefixes (``"sa.ab"`` -> ``"sa.ab.ct.estimate"``) come out
concrete.  The evaluator only widens: when in doubt a pattern gains a
wildcard, never loses a possibility, which lets the rules skip rather
than mis-report the unresolvable cases.

The module is self-contained (stdlib ``ast`` only), like the rest of the
linter.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "WILDCARD",
    "ClassInfo",
    "ProgramIndex",
    "Scope",
    "evaluate",
    "pattern_matches",
    "patterns_unify",
    "program_index",
    "unify",
    "render_pattern",
]

# Placeholder for an unresolvable fragment inside a pattern.  NUL cannot
# occur in real message types, so it never collides with payload data.
WILDCARD = "\x00"

# Widening caps: a value set never exceeds MAX_PATTERNS and evaluation
# never recurses deeper than MAX_DEPTH; both overflow to a bare wildcard.
MAX_PATTERNS = 32
MAX_DEPTH = 24

_TOP: FrozenSet[str] = frozenset({WILDCARD})


# ---------------------------------------------------------------------------
# Pattern algebra
# ---------------------------------------------------------------------------

def _normalise(pattern: str) -> str:
    """Collapse runs of adjacent wildcards into one."""
    while WILDCARD + WILDCARD in pattern:
        pattern = pattern.replace(WILDCARD + WILDCARD, WILDCARD)
    return pattern


def pattern_matches(pattern: str, concrete: str) -> bool:
    """Whether ``pattern`` (may contain wildcards) covers ``concrete``."""
    if WILDCARD not in pattern:
        return pattern == concrete
    parts = [re.escape(part) for part in _normalise(pattern).split(WILDCARD)]
    return re.fullmatch(".*".join(parts), concrete) is not None


def unify(a: str, b: str) -> bool:
    """Whether two patterns could denote the same concrete string.

    Exact when at most one side carries a wildcard; when both do, the
    literal prefixes and suffixes are compared (an overapproximation —
    it may unify patterns that share no concrete instance, never the
    reverse — which is the safe direction for suppressing findings).
    """
    if WILDCARD not in a:
        return pattern_matches(b, a)
    if WILDCARD not in b:
        return pattern_matches(a, b)
    a, b = _normalise(a), _normalise(b)
    pre_a, suf_a = a.split(WILDCARD, 1)[0], a.rsplit(WILDCARD, 1)[1]
    pre_b, suf_b = b.split(WILDCARD, 1)[0], b.rsplit(WILDCARD, 1)[1]
    if not (pre_a.startswith(pre_b) or pre_b.startswith(pre_a)):
        return False
    return suf_a.endswith(suf_b) or suf_b.endswith(suf_a)


def patterns_unify(left: Iterable[str], right: Iterable[str]) -> bool:
    """Whether any pattern in ``left`` unifies with any in ``right``."""
    right = list(right)
    return any(unify(a, b) for a in left for b in right)


def render_pattern(pattern: str) -> str:
    """Human-readable form: wildcards shown as ``*``."""
    return _normalise(pattern).replace(WILDCARD, "*")


# ---------------------------------------------------------------------------
# Program index
# ---------------------------------------------------------------------------

@dataclass
class ClassInfo:
    """One class definition plus the lookup tables evaluation needs."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: List[str]
    consts: Dict[str, ast.expr] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    # attribute -> [(value expression, defining method)] for every
    # ``self.attr = ...`` in any method (branches contribute one each).
    attr_exprs: Dict[str, List[Tuple[ast.expr, Optional[ast.FunctionDef]]]] = (
        field(default_factory=dict)
    )


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _relative_base(module: str, is_package: bool, level: int) -> Optional[str]:
    """Resolve the package a relative import of ``level`` dots targets."""
    parts = module.split(".") if module else []
    if not is_package and parts:
        parts = parts[:-1]  # the module's own package
    drop = level - 1
    if drop > len(parts):
        return None
    return ".".join(parts[: len(parts) - drop]) if drop else ".".join(parts)


class ProgramIndex:
    """Cross-module symbol tables for every parsed file of one lint run."""

    def __init__(self, contexts: Sequence) -> None:
        self.module_consts: Dict[str, Dict[str, ast.expr]] = {}
        self.from_imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self.module_aliases: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.subclasses: Dict[str, List[str]] = {}
        # class name -> [(constructor Call, Scope of the call site)]
        self.ctor_calls: Dict[str, List[Tuple[ast.Call, "Scope"]]] = {}
        self._param_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._param_stack: Set[Tuple[str, str]] = set()
        for ctx in contexts:
            self._index_file(ctx)
        self._link_subclasses()
        for ctx in contexts:
            self._collect_ctor_calls(ctx)

    # -- build ------------------------------------------------------------

    def _index_file(self, ctx) -> None:
        module = ctx.module or ctx.path
        consts = self.module_consts.setdefault(module, {})
        froms = self.from_imports.setdefault(module, {})
        aliases = self.module_aliases.setdefault(module, {})
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    consts[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom):
                base = (
                    _relative_base(module, ctx.is_package, node.level)
                    if node.level else ""
                )
                if base is None:
                    continue
                source = ".".join(p for p in (base, node.module or "") if p)
                for alias in node.names:
                    froms[alias.asname or alias.name] = (source, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._index_class(node, module, ctx.path)

    def _index_class(self, node: ast.ClassDef, module: str, path: str) -> None:
        info = ClassInfo(
            name=node.name, module=module, path=path, node=node,
            bases=[b for b in map(_base_name, node.bases) if b],
        )
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        info.consts[target.id] = item.value
            elif isinstance(item, ast.AnnAssign):
                if isinstance(item.target, ast.Name) and item.value is not None:
                    info.consts[item.target.id] = item.value
            elif isinstance(item, ast.FunctionDef):
                info.methods.setdefault(item.name, item)
                for stmt in ast.walk(item):
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                info.attr_exprs.setdefault(target.attr, []).append(
                                    (stmt.value, item)
                                )
        # First definition wins, matching the contract family's policy.
        self.classes.setdefault(node.name, info)

    def _link_subclasses(self) -> None:
        for info in self.classes.values():
            for base in info.bases:
                self.subclasses.setdefault(base, []).append(info.name)

    def _collect_ctor_calls(self, ctx) -> None:
        module = ctx.module or ctx.path

        def visit(node: ast.AST, cls: Optional[ClassInfo],
                  func: Optional[ast.FunctionDef]) -> None:
            if isinstance(node, ast.ClassDef):
                cls = self.classes.get(node.name)
                func = None
            elif isinstance(node, ast.FunctionDef):
                func = node
            if isinstance(node, ast.Call):
                name = _base_name(node.func)
                if name in self.classes:
                    self.ctor_calls.setdefault(name, []).append(
                        (node, Scope(self, module, cls, func))
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, cls, func)

        visit(ctx.tree, None, None)

    # -- lookups ----------------------------------------------------------

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Ancestor chain by simple name (linear, cycle-guarded)."""
        out, queue, seen = [], [cls.name], set()
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out

    def descendants(self, name: str) -> List[str]:
        """``name`` plus every transitive subclass known to the index."""
        out, queue = [], [name]
        while queue:
            current = queue.pop(0)
            if current in out:
                continue
            out.append(current)
            queue.extend(self.subclasses.get(current, []))
        return out

    def find_init(self, cls: ClassInfo) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """The ``__init__`` whose signature names real parameters.

        Pass-through ``__init__(self, *args, **kwargs)`` wrappers (e.g.
        ``DeferredConsensus``) are skipped so call-site arguments bind to
        the ancestor signature they are forwarded to.
        """
        for info in self.mro(cls):
            init = info.methods.get("__init__")
            if init is None:
                continue
            if len(init.args.args) > 1 or init.args.kwonlyargs:
                return info, init
            if init.args.vararg is None and init.args.kwarg is None:
                return info, init
        return None

    # -- constructor-parameter fixpoint ------------------------------------

    def param_values(self, cls: ClassInfo, param: str) -> FrozenSet[str]:
        """Value set of an ``__init__`` parameter across all call sites."""
        key = (cls.name, param)
        cached = self._param_cache.get(key)
        if cached is not None:
            return cached
        if key in self._param_stack or len(self._param_stack) > MAX_DEPTH:
            return _TOP
        self._param_stack.add(key)
        try:
            values = self._compute_param(cls, param)
        finally:
            self._param_stack.discard(key)
        self._param_cache[key] = values
        return values

    def _compute_param(self, cls: ClassInfo, param: str) -> FrozenSet[str]:
        resolved = self.find_init(cls)
        if resolved is None:
            return _TOP
        owner, init = resolved
        params = [a.arg for a in init.args.args[1:]] + [
            a.arg for a in init.args.kwonlyargs
        ]
        if param not in params:
            return _TOP
        values: Set[str] = set()
        default = _find_default(init, param)
        if default is not None:
            values |= evaluate(default, Scope(self, owner.module, owner, None))
        # Arguments from every construction of the class or a subclass
        # (a subclass forwarding extra values only widens the set).
        for name in self.descendants(cls.name):
            for call, scope in self.ctor_calls.get(name, ()):
                values |= self._bind_call_arg(call, scope, init, param)
        values.discard("")
        if not values:
            return _TOP
        if len(values) > MAX_PATTERNS:
            return _TOP
        return frozenset(values)

    def _bind_call_arg(
        self, call: ast.Call, scope: "Scope", init: ast.FunctionDef, param: str
    ) -> FrozenSet[str]:
        positional = [a.arg for a in init.args.args[1:]]
        if any(isinstance(a, ast.Starred) for a in call.args):
            return _TOP
        for index, arg in enumerate(call.args):
            if index < len(positional) and positional[index] == param:
                return evaluate(arg, scope)
        for keyword in call.keywords:
            if keyword.arg == param:
                return evaluate(keyword.value, scope)
            if keyword.arg is None:  # **kwargs splat: anything may arrive
                return _TOP
        return frozenset()


# One ProgramIndex per lint invocation, shared by every whole-program
# pass (M4xx message flow, W5xx wait graph, R6xx interference).  The
# single-slot identity cache matches the pass-level caches: the engine
# hands every project rule the same context list, so the second and
# later passes reuse the index the first one built.
_INDEX_CACHE: List[Tuple[object, ProgramIndex]] = []


def program_index(contexts: Sequence) -> ProgramIndex:
    """Build (or reuse) the shared program index for ``contexts``."""
    if _INDEX_CACHE and _INDEX_CACHE[0][0] is contexts:
        return _INDEX_CACHE[0][1]
    index = ProgramIndex(contexts)
    _INDEX_CACHE[:] = [(contexts, index)]
    return index


def _find_default(init: ast.FunctionDef, param: str) -> Optional[ast.expr]:
    args = init.args
    positional = args.args[1:] if args.args and args.args[0].arg == "self" else args.args
    defaults = args.defaults
    offset = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg == param and index >= offset:
            return defaults[index - offset]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == param and default is not None:
            return default
    return None


# ---------------------------------------------------------------------------
# Scoped evaluation
# ---------------------------------------------------------------------------

@dataclass
class Scope:
    """Where an expression lives: module, enclosing class and function."""

    index: ProgramIndex
    module: str
    cls: Optional[ClassInfo] = None
    func: Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = None


def evaluate(expr: Optional[ast.expr], scope: Scope, _depth: int = 0) -> FrozenSet[str]:
    """Resolve ``expr`` to its set of string patterns (never empty)."""
    if expr is None or _depth > MAX_DEPTH:
        return _TOP
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, str):
            return frozenset({expr.value})
        return _TOP
    if isinstance(expr, ast.JoinedStr):
        return _eval_joined(expr, scope, _depth)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return _product(
            evaluate(expr.left, scope, _depth + 1),
            evaluate(expr.right, scope, _depth + 1),
        )
    if isinstance(expr, ast.Name):
        return _eval_name(expr.id, scope, _depth)
    if isinstance(expr, ast.Attribute):
        return _eval_attribute(expr, scope, _depth)
    if isinstance(expr, ast.Subscript):
        return _eval_subscript(expr, scope, _depth)
    if isinstance(expr, ast.IfExp):
        return _cap(
            evaluate(expr.body, scope, _depth + 1)
            | evaluate(expr.orelse, scope, _depth + 1)
        )
    return _TOP


def _cap(values: FrozenSet[str]) -> FrozenSet[str]:
    if not values:
        return _TOP
    if len(values) > MAX_PATTERNS:
        return _TOP
    return frozenset(_normalise(v) for v in values)


def _product(left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
    return _cap(frozenset(a + b for a in left for b in right))


def _eval_joined(expr: ast.JoinedStr, scope: Scope, depth: int) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset({""})
    for part in expr.values:
        if isinstance(part, ast.Constant):
            piece: FrozenSet[str] = frozenset({str(part.value)})
        elif isinstance(part, ast.FormattedValue):
            piece = evaluate(part.value, scope, depth + 1)
        else:
            piece = _TOP
        out = _product(out, piece)
    return out


def _local_assignments(func: ast.AST, name: str) -> List[Optional[ast.expr]]:
    """Right-hand sides of plain ``name = ...`` statements in ``func``.

    A ``None`` entry marks an unresolvable rebinding (a loop variable).
    """
    found: List[Optional[ast.expr]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    found.append(node.value)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name) and target.id == name:
                found.append(None)  # loop variable: unresolvable
    return found


def _eval_name(name: str, scope: Scope, depth: int) -> FrozenSet[str]:
    index = scope.index
    if scope.func is not None:
        assigned = _local_assignments(scope.func, name)
        if assigned:
            out: Set[str] = set()
            for value in assigned:
                out |= evaluate(value, scope, depth + 1)
            return _cap(frozenset(out))
        params = [a.arg for a in scope.func.args.args] + [
            a.arg for a in scope.func.args.kwonlyargs
        ]
        if name in params:
            if scope.cls is not None and scope.func.name == "__init__":
                return index.param_values(scope.cls, name)
            return _TOP
    if scope.cls is not None:
        for info in index.mro(scope.cls):
            if name in info.consts:
                return evaluate(
                    info.consts[name],
                    Scope(index, info.module, info, None),
                    depth + 1,
                )
    consts = index.module_consts.get(scope.module, {})
    if name in consts:
        return evaluate(
            consts[name], Scope(index, scope.module, None, None), depth + 1
        )
    return _resolve_import(scope.module, name, scope, depth)


def _resolve_import(module: str, name: str, scope: Scope, depth: int,
                    hops: int = 0) -> FrozenSet[str]:
    index = scope.index
    if hops > 4:
        return _TOP
    target = index.from_imports.get(module, {}).get(name)
    if target is None:
        return _TOP
    source, original = target
    consts = index.module_consts.get(source, {})
    if original in consts:
        return evaluate(
            consts[original], Scope(index, source, None, None), depth + 1
        )
    # Re-export chain (package __init__ pulling from a submodule).
    return _resolve_import(source, original, scope, depth, hops + 1)


def _eval_attribute(expr: ast.Attribute, scope: Scope, depth: int) -> FrozenSet[str]:
    index = scope.index
    base = expr.value
    if isinstance(base, ast.Name):
        if base.id == "self" and scope.cls is not None:
            return _eval_self_attr(scope.cls, expr.attr, scope, depth)
        # Imported module attribute: MOD.CONST
        dotted = index.module_aliases.get(scope.module, {}).get(base.id)
        if dotted is not None:
            consts = index.module_consts.get(dotted, {})
            if expr.attr in consts:
                return evaluate(
                    consts[expr.attr], Scope(index, dotted, None, None), depth + 1
                )
            return _TOP
        # Class attribute: Cls.CONST
        info = index.classes.get(base.id)
        if info is not None:
            for ancestor in index.mro(info):
                if expr.attr in ancestor.consts:
                    return evaluate(
                        ancestor.consts[expr.attr],
                        Scope(index, ancestor.module, ancestor, None),
                        depth + 1,
                    )
    return _TOP


def _eval_self_attr(cls: ClassInfo, attr: str, scope: Scope,
                    depth: int) -> FrozenSet[str]:
    index = scope.index
    out: Set[str] = set()
    for info in index.mro(cls):
        for value, method in info.attr_exprs.get(attr, ()):
            out |= evaluate(value, Scope(index, info.module, info, method), depth + 1)
        if out:
            return _cap(frozenset(out))
        if attr in info.consts:
            return evaluate(
                info.consts[attr], Scope(index, info.module, info, None), depth + 1
            )
    return _TOP


def _eval_subscript(expr: ast.Subscript, scope: Scope, depth: int) -> FrozenSet[str]:
    """Resolve ``self.table["key"]`` through dict-literal attributes."""
    key = expr.slice
    if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
        return _TOP
    base = expr.value
    if not (
        isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
        and scope.cls is not None
    ):
        return _TOP
    index = scope.index
    out: Set[str] = set()
    for info in index.mro(scope.cls):
        for value, method in info.attr_exprs.get(base.attr, ()):
            if isinstance(value, ast.Dict):
                for dict_key, dict_value in zip(value.keys, value.values):
                    if (
                        isinstance(dict_key, ast.Constant)
                        and dict_key.value == key.value
                    ):
                        out |= evaluate(
                            dict_value,
                            Scope(index, info.module, info, method),
                            depth + 1,
                        )
            else:
                return _TOP
        if out:
            break
    return _cap(frozenset(out)) if out else _TOP
