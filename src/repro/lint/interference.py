"""Whole-program interference analysis (R6xx) and the generated catalog.

The paper's replication techniques interleave at *blocking points*: a
handler that yields on a ``node.call``, a lock acquisition, a 2PC vote
or a future join suspends mid-flight, and every other dispatchable
handler on the same replica may run before it resumes.  The W5xx pass
(:mod:`.waitgraph`) proves those suspensions deadlock-free; this pass
asks the complementary question — **what state can change while a
handler is suspended, and does the code notice?**

For every dispatchable entry point (a registered message handler, a
broadcast deliver callback, or a technique's ``handle_request``) the
pass computes replica-state **read and write sets** — ``self.*``
attribute chains truncated to ``ACCESS_DEPTH`` and attributed to the
owning class family — over the entry's whole call closure, reusing the
event templates the wait-graph extractor already records.  Each wait
site then opens an **atomicity window**; four rules read the windows:

* **R601** — stale-read window: a local variable snapshots a ``self``
  attribute before a blocking wait and is still used after resumption,
  while a concurrently-dispatchable handler writes that attribute.
* **R602** — missing guard revalidation: a view/epoch/primary predicate
  is checked before a blocking wait but not re-checked before the next
  externally-visible effect (a reply, a commit, a 2PC round).  The
  primary-fencing pattern — re-checking ``is_primary`` after lock
  acquisition, before the voting round — is the positive shape.
* **R603** — conflicting unsynchronized writes: two dispatchable
  handlers rebind the same attribute with no common lock, and at least
  one write lands after a blocking wait (a lost-update window).
* **R604** — payload mutation: a handler mutates the message or body it
  received.  Payload dicts are aliased across recipients by the
  copy-on-write broadcast path, so the mutation leaks into every other
  recipient's view.

:func:`build_interference_artifact` emits the read/write-set catalog
(``docs/interference.md`` + JSON); the per-class write sets double as
the static reference the dynamic cross-validation test checks recorded
traffic against (observed writes must be a subset of the static sets).

Everything widens in the same spirit as :mod:`.symeval`: accesses the
extractor cannot root at ``self`` are dropped from the sets (they can
only silence the window rules, never fabricate findings), and branch
structure linearises beyond the W5xx path caps.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .config import (
    MAX_WAIT_DEPTH,
    MAX_WAIT_PATHS,
    MESSAGE_MUTATORS,
    PROTOCOL_BASE,
)
from .diagnostics import Diagnostic
from .registry import rule
from .symeval import ClassInfo, render_pattern
from .waitgraph import (
    LOCK,
    TWO_PC,
    FuncInfo,
    WaitGraph,
    WaitSite,
    _chain_str,
    _concrete,
    _finding,
    _handler_regs,
    _location,
    _method_key,
    _protocol_techniques,
    _self_chain,
    build_waitgraph,
)

__all__ = [
    "build_interference_artifact",
    "render_interference_json",
    "render_interference_markdown",
]

# The virtual entry every technique serves: ``_on_client_request`` is
# registered on the base class, so subclass ``handle_request`` bodies
# must join the dispatchable set explicitly.
REQUEST_ENTRY = "handle_request"


# ---------------------------------------------------------------------------
# Dispatchable entries
# ---------------------------------------------------------------------------

@dataclass
class Entry:
    """One entry point the runtime can dispatch concurrently with any
    other entry on the same replica."""

    label: str
    key: str                 # func key in the wait graph
    trigger: str             # message type(s) / deliver primitive / request
    file: str
    node: ast.AST            # registration (or def) node, for locations
    payload: Optional[str]   # received-payload parameter name (R604)


def _params(node: Optional[ast.AST]) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.args]
    if names and names[0] == "self":
        names = names[1:]
    return names


def _entries(graph: WaitGraph) -> List[Entry]:
    """Every dispatchable entry point, deduplicated and sorted."""
    assert graph.message_graph is not None and graph.index is not None
    by_id = {id(info.node): key for key, info in graph.funcs.items()}
    out: List[Entry] = []
    seen: Set[Tuple[str, str]] = set()

    def add(label: str, key: str, trigger: str, file: str,
            node: ast.AST, payload: Optional[str]) -> None:
        marker = (key, trigger)
        if marker not in seen:
            seen.add(marker)
            out.append(Entry(label, key, trigger, file, node, payload))

    for reg, key in _handler_regs(graph):
        params = _params(reg.callback.node)
        trigger = ", ".join(sorted(render_pattern(p) for p in reg.patterns))
        add(reg.callback.label, key, trigger, reg.file, reg.node,
            params[-1] if params else None)

    for owner_attr in sorted(graph.message_graph.bindings):
        for binding in graph.message_graph.bindings[owner_attr]:
            for callback in binding.callbacks:
                key = by_id.get(id(callback.node))
                if key is None:
                    continue
                params = _params(callback.node)
                # Group deliver signature: (origin, mtype, body).
                add(callback.label, key, f"deliver:{binding.primitive}",
                    binding.file, binding.node,
                    params[2] if len(params) > 2 else None)

    for _technique, cls in _protocol_techniques(graph):
        for owner in graph.index.mro(cls):
            if owner.name == PROTOCOL_BASE:
                continue
            method = owner.methods.get(REQUEST_ENTRY)
            if method is None:
                continue
            key = _method_key(owner, method)
            info = graph.funcs.get(key)
            if info is not None:
                params = _params(method)
                add(f"{owner.name}.{method.name}", key, "client.request",
                    info.file, method, params[-1] if params else None)
            break

    out.sort(key=lambda e: (e.label, e.key, e.trigger))
    return out


def _technique_entries(
    graph: WaitGraph,
) -> List[Tuple[str, ClassInfo, List[Entry], Set[str]]]:
    """Per technique: its dispatchable entries and closure key set."""
    assert graph.index is not None
    all_entries = _entries(graph)
    out: List[Tuple[str, ClassInfo, List[Entry], Set[str]]] = []
    for technique, cls in _protocol_techniques(graph):
        mro_names = {info.name for info in graph.index.mro(cls)}
        own = sorted(
            key for key, info in graph.funcs.items()
            if info.cls is not None and info.cls.name in mro_names
        )
        seen: Set[str] = set()
        for key in own:
            for info in graph.closure(key):
                seen.add(info.key)
        entries = [e for e in all_entries if e.key in seen]
        out.append((technique, cls, entries, seen))
    return out


def _family(graph: WaitGraph, cls: Optional[ClassInfo]) -> str:
    """The root of a class's known MRO: two methods touch the same
    instance state only when their classes share this root."""
    if cls is None or graph.index is None:
        return ""
    mro = graph.index.mro(cls)
    return mro[-1].name if mro else cls.name


def _qualified(family: str, name: str) -> str:
    return f"{family}.{name}" if family else name


# ---------------------------------------------------------------------------
# Event-path expansion (reads/writes/guards/effects, callees inlined)
# ---------------------------------------------------------------------------

# (kind, payload, func_key) — the extractor's template events stamped
# with the function they occurred in, so accesses can be attributed to
# the right class family after inlining.
XEvent = Tuple[str, Any, str]

_EVENT_CACHE: List[Tuple[WaitGraph, Dict[str, Optional[List[List[XEvent]]]]]] = []


def _expand_events(graph: WaitGraph, key: str,
                   depth: int = 0) -> List[List[XEvent]]:
    """Full event sequences through ``key`` with callees inlined.

    The wait-graph expansion keeps only wait sites; this one keeps every
    event kind, under the same memoisation, depth and path caps.
    """
    if not _EVENT_CACHE or _EVENT_CACHE[0][0] is not graph:
        _EVENT_CACHE[:] = [(graph, {})]
    cache = _EVENT_CACHE[0][1]
    if key in cache:
        cached = cache[key]
        return cached if cached is not None else [[]]
    if depth > MAX_WAIT_DEPTH:
        return [[]]
    info = graph.funcs.get(key)
    if info is None:
        return [[]]
    cache[key] = None  # in progress: recursion expands to nothing
    out: List[List[XEvent]] = []
    for template in info.templates or [[]]:
        paths: List[List[XEvent]] = [[]]
        for event in template:
            kind = event[0]
            if kind == "callee":
                sub = _expand_events(graph, event[1], depth + 1)
                if len(paths) * len(sub) > MAX_WAIT_PATHS:
                    flat = [e for sub_path in sub for e in sub_path]
                    paths = [p + flat for p in paths]
                else:
                    paths = [p + sp for p in paths for sp in sub]
            elif kind == "stop":
                continue
            else:
                stamped: XEvent = (kind, event[1], key)
                paths = [p + [stamped] for p in paths]
        out.extend(paths)
        if len(out) > MAX_WAIT_PATHS:
            merged: List[XEvent] = []
            marked: Set[Tuple[str, int]] = set()
            for path in out:
                for stamped in path:
                    marker = (stamped[0], id(stamped[1]))
                    if marker not in marked:
                        marked.add(marker)
                        merged.append(stamped)
            out = [merged]
    cache[key] = out
    return out


# ---------------------------------------------------------------------------
# Read/write sets
# ---------------------------------------------------------------------------

def _func_accesses(
    graph: WaitGraph, info: FuncInfo
) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str, str]]]:
    """One function's (reads, writes), attributed to its class family."""
    family = _family(graph, info.cls)
    reads: Set[Tuple[str, str]] = set()
    writes: Set[Tuple[str, str, str]] = set()
    for template in info.templates:
        for event in template:
            if event[0] == "read":
                reads.add((family, event[1][0]))
            elif event[0] == "write":
                name, _node, via = event[1]
                writes.add((family, name, via))
    return reads, writes


def _closure_sets(
    graph: WaitGraph, key: str
) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str, str]]]:
    """An entry's read/write sets over its whole call closure."""
    reads: Set[Tuple[str, str]] = set()
    writes: Set[Tuple[str, str, str]] = set()
    for info in graph.closure(key):
        func_reads, func_writes = _func_accesses(graph, info)
        reads |= func_reads
        writes |= func_writes
    return reads, writes


def _write_map(graph: WaitGraph,
               entries: Sequence[Entry]) -> Dict[Tuple[str, str], Set[str]]:
    """(family, attr) -> labels of the entries whose closures write it."""
    out: Dict[Tuple[str, str], Set[str]] = {}
    for entry in entries:
        _reads, writes = _closure_sets(graph, entry.key)
        for family, name, _via in writes:
            out.setdefault((family, name), set()).add(entry.label)
    return out


# ---------------------------------------------------------------------------
# R601 — stale-read window
# ---------------------------------------------------------------------------

@rule("R601", "stale-read-window", scope="project")
def check_stale_reads(contexts) -> Iterator[Diagnostic]:
    """A pre-wait snapshot of replica state is used after resumption.

    ``value = self.attr`` before a blocking wait captures state that a
    concurrently-dispatchable handler may overwrite while this handler
    is suspended; using the captured value after the wait acts on stale
    state.  The rule fires only when some dispatchable entry of the same
    technique actually writes the attribute (immutable configuration
    never triggers it) and the local is not rebound between the snapshot
    and the stale use.  Re-read the attribute after the wait, or justify
    the capture with a ``# repro: noqa R601``.
    """
    graph = build_waitgraph(contexts)
    reported: Set[Tuple[str, str, int]] = set()
    for _technique, _cls, entries, _seen in _technique_entries(graph):
        wmap = _write_map(graph, entries)
        keys = sorted({
            info.key for entry in entries
            for info in graph.closure(entry.key)
        })
        for key in keys:
            info = graph.funcs[key]
            if not info.waits:
                continue
            family = _family(graph, info.cls)
            yield from _stale_in_func(info, family, wmap, reported)


def _stale_in_func(info: FuncInfo, family: str,
                   wmap: Dict[Tuple[str, str], Set[str]],
                   reported: Set[Tuple[str, str, int]],
                   ) -> Iterator[Diagnostic]:
    wait_nodes = {id(site.node) for site in info.waits}
    # Everything inside a wait expression is evaluated before the
    # suspension: argument uses on a continuation line of the call are
    # not post-wait uses, whatever their line number says.
    in_wait = {
        id(sub) for site in info.waits for sub in ast.walk(site.node)
    }
    wait_lines = sorted(site.node.lineno for site in info.waits)
    assigns: Dict[str, List[int]] = {}
    snapshots: List[Tuple[str, int, Set[str]]] = []
    uses: Dict[str, List[Tuple[int, ast.AST]]] = {}

    def visit(node: ast.AST) -> None:
        if node is not info.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            var = node.targets[0].id
            assigns.setdefault(var, []).append(node.lineno)
            attrs = {
                _chain_str(chain)
                for sub in ast.walk(node.value)
                if isinstance(sub, ast.Attribute)
                for chain in (_self_chain(sub),)
                if chain
            }
            # A wait inside the value means the target holds the wait's
            # result, not a state snapshot; a ``self.x.pop(...)`` value
            # *removes* the entry from the shared container, so no
            # concurrent dispatch can see or rewrite it afterwards
            # (ownership transfer, not a stale-prone copy).
            captures_wait = any(
                id(sub) in wait_nodes for sub in ast.walk(node.value)
            )
            takes_ownership = (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in ("pop", "popleft", "popitem")
                and _self_chain(node.value.func.value) is not None
            )
            if attrs and not captures_wait and not takes_ownership:
                snapshots.append((var, node.lineno, attrs))
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                if id(node) not in in_wait:
                    uses.setdefault(node.id, []).append((node.lineno, node))
            else:
                assigns.setdefault(node.id, []).append(node.lineno)
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(info.node)
    for var, snap_line, attrs in snapshots:
        writable = sorted(a for a in attrs if wmap.get((family, a)))
        if not writable:
            continue
        wait_after = next((w for w in wait_lines if w > snap_line), None)
        if wait_after is None:
            continue
        stale = [
            (line, node) for line, node in uses.get(var, ())
            if line > wait_after and not any(
                snap_line < a <= line
                for a in assigns.get(var, ()) if a != snap_line
            )
        ]
        if not stale:
            continue
        marker = (info.key, var, snap_line)
        if marker in reported:
            continue
        reported.add(marker)
        line, node = min(stale, key=lambda pair: pair[0])
        writers = sorted(set().union(
            *(wmap[(family, a)] for a in writable)
        ))
        attr_list = ", ".join(f"self.{a}" for a in writable)
        yield _finding(
            info.file, node,
            f"'{var}' snapshots {attr_list} at line {snap_line} and is "
            f"still used here, after the blocking wait at line "
            f"{wait_after}; {', '.join(writers)} may write it while this "
            f"handler is suspended — re-read the attribute after "
            f"resumption",
        )


# ---------------------------------------------------------------------------
# R602 — missing guard revalidation
# ---------------------------------------------------------------------------

@rule("R602", "missing-guard-revalidation", scope="project")
def check_guard_revalidation(contexts) -> Iterator[Diagnostic]:
    """A role guard checked before a wait is stale at the next effect.

    Checking ``self.is_primary`` (or a view/epoch/leader predicate)
    proves a role *at that instant*; every blocking wait that follows
    suspends the handler, and a failover or view change may run before
    it resumes.  If the next externally-visible effect — a reply, a
    commit, a 2PC voting round — happens without re-checking the guard,
    a deposed primary keeps acting on its old role: exactly the split-
    brain window primary-copy fencing exists to close.  Re-validate the
    predicate after the last wait before the effect (the fenced
    ``_execute`` shape), or justify with a ``# repro: noqa R602``.
    """
    graph = build_waitgraph(contexts)
    reported: Set[Tuple[str, str, int, str, int]] = set()
    for _technique, _cls, entries, _seen in _technique_entries(graph):
        for entry in entries:
            for path in _expand_events(graph, entry.key):
                yield from _scan_guard_path(graph, path, reported)


def _scan_guard_path(
    graph: WaitGraph,
    path: List[XEvent],
    reported: Set[Tuple[str, str, int, str, int]],
) -> Iterator[Diagnostic]:
    # name -> (guard node, guard file); the diagnostic lands on the
    # guard check — that is the caller's frame, so a suppression there
    # never silences other callers of a shared blocking helper.
    checked: Dict[str, Tuple[ast.AST, str]] = {}
    pending: Dict[str, Tuple[WaitSite, ast.AST, str]] = {}

    def report(name: str, what: str, effect_file: str,
               effect_line: int) -> Iterator[Diagnostic]:
        site, guard, guard_file = pending[name]
        marker = (name, guard_file, guard.lineno, effect_file, effect_line)
        if marker in reported:
            return
        reported.add(marker)
        yield _finding(
            guard_file, guard,
            f"guard 'self.{name}' checked here is not re-validated after "
            f"the blocking wait at {site.file}:{site.node.lineno} before "
            f"{what} at {effect_file}:{effect_line}; the predicate may "
            f"change while the handler is suspended — re-check it after "
            f"resumption",
        )

    for kind, payload, owner_key in path:
        owner = graph.funcs.get(owner_key)
        owner_file = owner.file if owner is not None else ""
        if kind == "guard":
            name, node = payload
            checked[name] = (node, owner_file)
            pending.pop(name, None)
        elif kind == "wait":
            site = payload
            if site.kind == TWO_PC:
                # The voting round both *is* an effect (PREPARE leaves
                # the replica) and a barrier: report stale guards, then
                # start a fresh epoch of checks.
                for name in sorted(pending):
                    yield from report(
                        name, f"the {site.detail} voting round",
                        site.file, site.node.lineno,
                    )
                pending.clear()
                checked.clear()
            else:
                for name in sorted(checked):
                    pending.setdefault(name, (site,) + checked[name])
        elif kind == "effect":
            label, node = payload
            for name in sorted(pending):
                yield from report(name, f"{label}()", owner_file,
                                  node.lineno)
            pending.clear()


# ---------------------------------------------------------------------------
# R603 — conflicting unsynchronized writes
# ---------------------------------------------------------------------------

@rule("R603", "conflicting-unsynchronized-writes", scope="project")
def check_conflicting_writes(contexts) -> Iterator[Diagnostic]:
    """Two handlers rebind the same attribute across an open window.

    An attribute rebound by two or more concurrently-dispatchable
    handlers with no common lock item is a race the cooperative
    scheduler only hides until a write lands *after* a blocking wait:
    then read-modify-write interleaves with a concurrent dispatch and
    one update is lost.  Container mutations stay out of scope (they
    merge rather than overwrite); writes protected by a shared concrete
    lock item on every path stay silent.
    """
    graph = build_waitgraph(contexts)
    reported: Set[Tuple[str, str, Tuple[str, ...]]] = set()
    for _technique, _cls, entries, _seen in _technique_entries(graph):
        writers = _rebind_map(graph, entries)
        for family, name in sorted(writers):
            records = writers[(family, name)]
            if len(records) < 2:
                continue
            windowed = [
                site for record in records.values()
                for site in record["windowed"]
            ]
            if not windowed:
                continue
            common: Optional[Set[str]] = None
            for record in records.values():
                locks = record["locks"] or set()
                common = set(locks) if common is None else common & locks
            if common:
                continue
            labels = tuple(sorted(records))
            marker = (family, name, labels)
            if marker in reported:
                continue
            reported.add(marker)
            windowed.sort(key=lambda pair: (pair[0], pair[1].lineno))
            file, node = windowed[0]
            yield _finding(
                file, node,
                f"'{name}' is rebound by {len(labels)} concurrently-"
                f"dispatchable handlers ({', '.join(labels)}) with no "
                f"common lock; this write follows a blocking wait, so a "
                f"concurrent dispatch during the window is overwritten "
                f"on resumption",
            )


def _rebind_map(
    graph: WaitGraph, entries: Sequence[Entry]
) -> Dict[Tuple[str, str], Dict[str, Dict[str, Any]]]:
    """(family, attr) -> entry label -> rebinding-write evidence."""
    writers: Dict[Tuple[str, str], Dict[str, Dict[str, Any]]] = {}
    for entry in entries:
        for path in _expand_events(graph, entry.key):
            held: Set[str] = set()
            waited = False
            for kind, payload, owner_key in path:
                if kind == "wait":
                    waited = True
                    if payload.kind == LOCK:
                        held |= {
                            p for p in payload.patterns if _concrete(p)
                        }
                elif kind == "write":
                    name, node, via = payload
                    if via != "=":
                        continue
                    owner = graph.funcs[owner_key]
                    family = _family(graph, owner.cls)
                    record = writers.setdefault((family, name), {}).setdefault(
                        entry.label,
                        {"windowed": [], "locks": None},
                    )
                    if waited:
                        record["windowed"].append((owner.file, node))
                    record["locks"] = (
                        set(held) if record["locks"] is None
                        else record["locks"] & held
                    )
    return writers


# ---------------------------------------------------------------------------
# R604 — payload mutation
# ---------------------------------------------------------------------------

@rule("R604", "payload-mutation", scope="project")
def check_payload_mutation(contexts) -> Iterator[Diagnostic]:
    """A handler mutates the message or body it received.

    Delivery does not copy: the broadcast path hands every recipient an
    alias of the same payload dict (copied on *send* only when the
    sender still holds a reference), and a reply echoes the envelope the
    handler was given.  Writing into the received message or body
    therefore leaks the mutation into other recipients' views and into
    any retransmission.  Copy first (``dict(body)``) — mutations after
    such a rebinding pass — or justify with a ``# repro: noqa R604``.
    """
    graph = build_waitgraph(contexts)
    seen: Set[Tuple[str, str]] = set()
    for entry in _entries(graph):
        if not entry.payload:
            continue
        marker = (entry.key, entry.payload)
        if marker in seen:
            continue
        seen.add(marker)
        info = graph.funcs.get(entry.key)
        if info is not None:
            yield from _payload_mutations(info, entry)


def _param_root(expr: ast.AST, param: str) -> bool:
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return isinstance(current, ast.Name) and current.id == param


def _payload_mutations(info: FuncInfo, entry: Entry) -> Iterator[Diagnostic]:
    param = entry.payload
    assert param is not None
    rebinds = [
        node.lineno for node in ast.walk(info.node)
        if isinstance(node, ast.Name) and node.id == param
        and isinstance(node.ctx, ast.Store)
    ]
    horizon = min(rebinds) if rebinds else None
    for node in ast.walk(info.node):
        if horizon is not None and getattr(node, "lineno", 0) >= horizon:
            continue  # the handler copied (rebound) the payload first
        how: Optional[str] = None
        if isinstance(node, (ast.Subscript, ast.Attribute)) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and _param_root(node.value, param):
            how = "item assignment" if isinstance(node, ast.Subscript) \
                else "attribute assignment"
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MESSAGE_MUTATORS \
                and _param_root(node.func.value, param):
            how = f"{node.func.attr}()"
        if how is not None:
            yield _finding(
                info.file, node,
                f"handler {entry.label} mutates its received payload "
                f"'{param}' via {how}; delivery aliases payloads across "
                f"recipients (copy-on-write broadcast), so the mutation "
                f"leaks into other replicas' views — copy before "
                f"mutating",
            )


# ---------------------------------------------------------------------------
# The generated interference catalog
# ---------------------------------------------------------------------------

INTERFERENCE_HEADER = (
    "<!-- Generated by `python -m repro.lint --write-interference "
    "docs/interference.md` (make interference). Do not edit by hand. -->"
)


def build_interference_artifact(contexts: Sequence) -> Dict[str, Any]:
    """The read/write-set catalog as JSON-able data, fully sorted."""
    graph = build_waitgraph(contexts)
    assert graph.index is not None

    techniques: List[Dict[str, Any]] = []
    for technique, cls, entries, _seen in _technique_entries(graph):
        wmap = _write_map(graph, entries)
        handlers: List[Dict[str, Any]] = []
        for entry in entries:
            reads, writes = _closure_sets(graph, entry.key)
            windows: Dict[str, Dict[str, Any]] = {}
            for path in _expand_events(graph, entry.key):
                for position, (kind, payload, _key) in enumerate(path):
                    if kind != "wait":
                        continue
                    location = _location(payload.file, payload.node)
                    window = windows.setdefault(location, {
                        "at": location,
                        "kind": payload.kind,
                        "timed": payload.timed,
                        "exposed_reads": set(),
                        "writes_after": set(),
                    })
                    for before_kind, before_payload, before_key in \
                            path[:position]:
                        if before_kind != "read":
                            continue
                        family = _family(graph, graph.funcs[before_key].cls)
                        if wmap.get((family, before_payload[0])):
                            window["exposed_reads"].add(
                                _qualified(family, before_payload[0])
                            )
                    for after_kind, after_payload, after_key in \
                            path[position + 1:]:
                        if after_kind != "write":
                            continue
                        family = _family(graph, graph.funcs[after_key].cls)
                        window["writes_after"].add(
                            _qualified(family, after_payload[0])
                        )
            handlers.append({
                "handler": entry.label,
                "trigger": entry.trigger,
                "at": _location(entry.file, entry.node),
                "reads": sorted(
                    _qualified(f, n) for f, n in reads
                ),
                "writes": sorted({
                    _qualified(f, n) for f, n, _via in writes
                }),
                "windows": [
                    {
                        "at": window["at"],
                        "kind": window["kind"],
                        "timed": window["timed"],
                        "exposed_reads": sorted(window["exposed_reads"]),
                        "writes_after": sorted(window["writes_after"]),
                    }
                    for _loc, window in sorted(windows.items())
                ],
            })
        techniques.append({
            "technique": technique,
            "class": cls.name,
            "file": cls.path,
            "handlers": handlers,
        })

    # Per-class *direct* write sets (depth-1 ``self.attr = ...`` over the
    # whole MRO): the reference the dynamic cross-validation compares
    # observed ``__setattr__`` traffic against.
    classes: Dict[str, List[str]] = {}
    for _technique, cls in _protocol_techniques(graph):
        mro_names = {info.name for info in graph.index.mro(cls)}
        attrs: Set[str] = set()
        for key in sorted(graph.funcs):
            info = graph.funcs[key]
            if info.cls is None or info.cls.name not in mro_names:
                continue
            for template in info.templates:
                for event in template:
                    if event[0] == "write" and event[1][2] in ("=", "aug") \
                            and "." not in event[1][0]:
                        attrs.add(event[1][0])
        classes[cls.name] = sorted(attrs)

    handler_count = sum(len(t["handlers"]) for t in techniques)
    window_count = sum(
        len(h["windows"]) for t in techniques for h in t["handlers"]
    )
    return {
        "techniques": techniques,
        "classes": classes,
        "summary": {
            "handlers": handler_count,
            "windows": window_count,
            "write_attributes": len({
                attr for attrs in classes.values() for attr in attrs
            }),
        },
    }


def render_interference_json(artifact: Dict[str, Any]) -> str:
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def _set_cell(values: List[str]) -> str:
    return f"`{', '.join(values)}`" if values else "—"


def render_interference_markdown(artifact: Dict[str, Any]) -> str:
    summary = artifact["summary"]
    lines: List[str] = [
        "# Interference catalog",
        "",
        INTERFERENCE_HEADER,
        "",
        "Replica-state read/write sets and atomicity windows for every",
        "dispatchable handler, as resolved by the R6xx interference pass",
        "(`src/repro/lint/interference.py`).  Access names are `Family.attr`",
        "attribute chains truncated to two segments; a *window* is a",
        "blocking wait inside the handler's call closure, with the pre-wait",
        "reads that a concurrent dispatch can invalidate and the post-wait",
        "writes that land on possibly-changed state.",
        "",
        f"Handlers: {summary['handlers']}; windows: {summary['windows']}; "
        f"distinct written attributes: {summary['write_attributes']}.",
        "",
    ]
    for technique in artifact["techniques"]:
        lines += [
            f"## {technique['technique']} (`{technique['class']}`)",
            "",
            f"Defined in `{technique['file']}`.",
            "",
        ]
        if technique["handlers"]:
            lines += [
                "| handler | trigger | reads | writes |",
                "|---------|---------|-------|--------|",
            ]
            for handler in technique["handlers"]:
                lines.append(
                    f"| {handler['handler']} | `{handler['trigger']}` | "
                    f"{_set_cell(handler['reads'])} | "
                    f"{_set_cell(handler['writes'])} |"
                )
            lines.append("")
        window_rows = [
            (handler["handler"], window)
            for handler in technique["handlers"]
            for window in handler["windows"]
        ]
        if window_rows:
            lines += [
                "| handler | window at | kind | timed "
                "| exposed reads | writes after |",
                "|---------|-----------|------|-------"
                "|---------------|--------------|",
            ]
            for handler_label, window in window_rows:
                lines.append(
                    f"| {handler_label} | `{window['at']}` | "
                    f"{window['kind']} | "
                    f"{'yes' if window['timed'] else 'no'} | "
                    f"{_set_cell(window['exposed_reads'])} | "
                    f"{_set_cell(window['writes_after'])} |"
                )
            lines.append("")
        else:
            lines += ["No atomicity windows: these handlers never block.",
                      ""]
    lines += [
        "## Per-class write sets",
        "",
        "Direct `self.attr = ...` rebindings over each technique's whole",
        "MRO — the static reference observed `__setattr__` traffic must be",
        "a subset of (see `tests/test_interference.py`).",
        "",
        "| class | written attributes |",
        "|-------|--------------------|",
    ]
    for name in sorted(artifact["classes"]):
        lines.append(
            f"| `{name}` | {_set_cell(artifact['classes'][name])} |"
        )
    lines.append("")
    return "\n".join(lines)
