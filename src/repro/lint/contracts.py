"""Protocol-contract rules (P3xx).

Every replication technique is a ``ReplicaProtocol`` subclass whose
``info = ProtocolInfo(...)`` declares the phase row the paper's
classification matrices (Figures 5/6/15/16) assign to it.  The runtime
verifies executions against that row; these rules verify the *code*
against it, statically:

* the subclass declares (or inherits) a ``ProtocolInfo`` (P301);
* ``handle_request`` is a plain callback, not a generator — the base
  dispatcher invokes it synchronously, so a generator body would never
  run (simulated activities must go through ``node.spawn``) (P302);
* the phase markers the class emits (``self.phase(..., PHASE)`` calls
  plus the implicit RE from the dispatcher and END from ``respond``)
  exactly cover the phases its descriptor declares (P303);
* every phase literal passed to ``self.phase`` is one of RE/SC/EX/AC/END
  (P304).

The family is project-scoped: subclass chains may span modules, so the
rule builds one class table for the whole run before checking.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .config import (
    BASE_EMITS,
    PHASES,
    PROTOCOL_BASE,
    PROTOCOL_INFO_NAME,
    PROTOCOL_INFO_TYPE,
    RESPOND_EMITS,
)
from .diagnostics import Diagnostic
from .registry import rule


def _finding(ctx_path: str, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        file=ctx_path, line=getattr(node, "lineno", 0), rule="",
        severity="", message=message, col=getattr(node, "col_offset", 0),
    )


def _base_name(node: ast.AST) -> Optional[str]:
    """Simple name of a base-class expression (last dotted segment)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class _ClassRecord:
    name: str
    path: str
    node: ast.ClassDef
    bases: List[str]
    ancestors: List["_ClassRecord"] = field(default_factory=list)


def _collect_classes(contexts: Sequence) -> Dict[str, _ClassRecord]:
    table: Dict[str, _ClassRecord] = {}
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                bases = [b for b in map(_base_name, node.bases) if b]
                # First definition wins; duplicate simple names across the
                # tree are rare and a later one shadowing the first would
                # only weaken, never wrongly add, findings.
                table.setdefault(
                    node.name,
                    _ClassRecord(node.name, ctx.path, node, bases),
                )
    return table


def _protocol_classes(table: Dict[str, _ClassRecord]) -> List[_ClassRecord]:
    """Transitive subclasses of the protocol base, with ancestor chains."""
    protocols: List[_ClassRecord] = []
    for record in table.values():
        chain: List[_ClassRecord] = []
        seen: Set[str] = {record.name}
        frontier = list(record.bases)
        is_protocol = False
        while frontier:
            base = frontier.pop(0)
            if base == PROTOCOL_BASE:
                is_protocol = True
                continue
            if base in seen:
                continue
            seen.add(base)
            parent = table.get(base)
            if parent is not None:
                chain.append(parent)
                frontier.extend(parent.bases)
        if is_protocol or any(
            PROTOCOL_BASE in ancestor.bases for ancestor in chain
        ):
            record.ancestors = chain
            protocols.append(record)
    return [p for p in protocols if p.name != PROTOCOL_BASE]


# -- info/descriptor extraction ---------------------------------------------

def _find_info_assign(node: ast.ClassDef) -> Optional[ast.expr]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == PROTOCOL_INFO_NAME:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == PROTOCOL_INFO_NAME
                and stmt.value is not None
            ):
                return stmt.value
    return None


def _phase_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id in PHASES:
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in PHASES else None
    return None


def _call_named(node: ast.AST, name: str) -> Optional[ast.Call]:
    if isinstance(node, ast.Call):
        func = _base_name(node.func)
        if func == name:
            return node
    return None


def _kwarg(call: ast.Call, name: str, position: Optional[int] = None) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    if position is not None and len(call.args) > position:
        return call.args[position]
    return None


def _declared_phases(info_value: ast.expr) -> Optional[Set[str]]:
    """Phases named by the ProtocolInfo's descriptor(s); None if opaque."""
    call = _call_named(info_value, PROTOCOL_INFO_TYPE)
    if call is None:
        return None
    declared: Set[str] = set()
    resolved_any = False
    for key, position in (("descriptor", 4), ("txn_descriptor", None)):
        descriptor = _kwarg(call, key, position)
        if descriptor is None:
            continue
        descriptor_call = _call_named(descriptor, "PhaseDescriptor")
        if descriptor_call is None:
            continue
        steps = _kwarg(descriptor_call, "steps", 1)
        if steps is None or not isinstance(steps, (ast.Tuple, ast.List)):
            continue
        resolved_any = True
        for step in steps.elts:
            step_call = _call_named(step, "PhaseStep")
            if step_call is None:
                continue
            phase = _kwarg(step_call, "phase", 0)
            name = _phase_of(phase) if phase is not None else None
            if name:
                declared.add(name)
            merged = _kwarg(step_call, "merged_with")
            merged_name = _phase_of(merged) if merged is not None else None
            if merged_name:
                declared.add(merged_name)
    return declared if resolved_any else None


# -- emission extraction -----------------------------------------------------

def _emitted_phases(records: Sequence[_ClassRecord]) -> Tuple[Dict[str, ast.AST], bool, List[Tuple[ast.AST, str, ast.AST]]]:
    """Scan class bodies for ``self.phase``/``self.respond`` emissions.

    Returns ``(phases -> first emitting node, calls_respond, opaque)``
    where ``opaque`` lists phase() calls whose phase argument could not be
    resolved statically (with owning file for diagnostics).
    """
    emitted: Dict[str, ast.AST] = {}
    opaque: List[Tuple[ast.AST, str, ast.AST]] = []
    calls_respond = False
    for record in records:
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                continue
            if func.attr == "respond":
                calls_respond = True
            elif func.attr == "phase":
                arg = _kwarg(node, "phase", 1)
                if arg is None:
                    continue
                name = _phase_of(arg)
                if name is not None:
                    emitted.setdefault(name, node)
                else:
                    opaque.append((node, record.path, arg))
    return emitted, calls_respond, opaque


# -- the rules ---------------------------------------------------------------

def _protocols_in(contexts: Sequence) -> List[_ClassRecord]:
    return _protocol_classes(_collect_classes(contexts))


@rule("P301", "missing-protocol-info", scope="project")
def check_protocol_info(contexts) -> Iterator[Diagnostic]:
    """ReplicaProtocol subclass without a ``ProtocolInfo`` declaration.

    The ``info`` class attribute is the technique's row in the paper's
    classification matrices; without it the class cannot be registered,
    routed, or verified.  A subclass may inherit ``info`` from a concrete
    parent, but somewhere in its chain the declaration must exist.
    """
    for record in _protocols_in(contexts):
        if _find_info_assign(record.node) is not None:
            continue
        if any(_find_info_assign(a.node) is not None for a in record.ancestors):
            continue
        yield _finding(
            record.path, record.node,
            f"protocol class {record.name} declares no "
            f"'{PROTOCOL_INFO_NAME} = {PROTOCOL_INFO_TYPE}(...)' (and "
            f"inherits none)",
        )


@rule("P302", "generator-handle-request", scope="project")
def check_handle_request_shape(contexts) -> Iterator[Diagnostic]:
    """``handle_request`` written as a generator.

    The base dispatcher calls ``handle_request`` synchronously from the
    client-request handler; a ``yield`` in its body would turn the call
    into an unconsumed generator object and the request would be silently
    dropped.  Long-running work must be wrapped in a process function and
    handed to ``node.spawn``.
    """
    for record in _protocols_in(contexts):
        for stmt in record.node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "handle_request"
            ):
                for inner in ast.walk(stmt):
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not stmt:
                        continue
                    if isinstance(inner, (ast.Yield, ast.YieldFrom)) and _owning_function(stmt, inner) is stmt:
                        yield _finding(
                            record.path, inner,
                            f"{record.name}.handle_request contains "
                            f"'yield': the dispatcher calls it "
                            f"synchronously, so a generator body never "
                            f"executes; spawn a process instead",
                        )
                        break


def _owning_function(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """Innermost function of ``root``'s tree containing ``target``."""
    owner = None

    def descend(node: ast.AST, current: Optional[ast.AST]) -> None:
        nonlocal owner
        if node is target:
            owner = current
            return
        for child in ast.iter_child_nodes(node):
            descend(
                child,
                node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) else current,
            )

    descend(root, None)
    return owner


@rule("P303", "phase-row-mismatch", scope="project")
def check_phase_rows(contexts) -> Iterator[Diagnostic]:
    """Emitted phase markers inconsistent with the declared phase row.

    Collects every ``self.phase(..., PHASE)`` the class (or an inherited
    protocol parent) can emit, adds the dispatcher's implicit RE and
    ``respond``'s END, and compares the set against the phases named by
    the ``ProtocolInfo`` descriptors.  Emitting an undeclared phase, or
    declaring a phase no code path can emit, both mean the class no
    longer matches its row in the classification matrices.
    """
    for record in _protocols_in(contexts):
        info_value = _find_info_assign(record.node)
        if info_value is None:
            continue  # P301's problem, or inherited: checked on the parent
        declared = _declared_phases(info_value)
        if declared is None:
            continue  # dynamically built info; nothing to verify statically
        lineage = [record] + record.ancestors
        emitted, calls_respond, _ = _emitted_phases(lineage)
        effective = set(emitted) | set(BASE_EMITS)
        if calls_respond:
            effective.add(RESPOND_EMITS)
        for phase in sorted(effective - declared, key=PHASES.index):
            node = emitted.get(phase, record.node)
            yield _finding(
                record.path, node,
                f"{record.name} emits phase {phase} but its ProtocolInfo "
                f"phase row declares only "
                f"{', '.join(p for p in PHASES if p in declared)}",
            )
        for phase in sorted(declared - effective, key=PHASES.index):
            yield _finding(
                record.path, record.node,
                f"{record.name} declares phase {phase} in its ProtocolInfo "
                f"but no code path emits it (self.phase/respond)",
            )


@rule("P304", "unknown-phase", scope="project")
def check_phase_literals(contexts) -> Iterator[Diagnostic]:
    """``self.phase(...)`` with an unrecognisable phase argument.

    The phase argument must be one of the RE/SC/EX/AC/END constants (or
    their string values) so the contract checker — and the reader — can
    see which row of the functional model the call implements.
    """
    for record in _protocols_in(contexts):
        _, _, opaque = _emitted_phases([record])
        for node, path, arg in opaque:
            if isinstance(arg, ast.Constant):
                detail = f"string {arg.value!r}"
            elif isinstance(arg, ast.Name):
                detail = f"name {arg.id!r}"
            else:
                detail = "a dynamic expression"
            yield _finding(
                path, node,
                f"{record.name} calls self.phase with {detail}; expected "
                f"one of {', '.join(PHASES)}",
            )
