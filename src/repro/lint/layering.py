"""Layering rules (L2xx).

The architecture is a DAG of first-level packages::

    errors -> sim -> net -> failures -> {groupcomm, db} -> core
           -> {analysis, workload, viz}

declared once in :data:`repro.lint.config.ALLOWED_DEPS`.  Lower layers
must never import upward — an upward import couples a substrate to one
consumer, invites cycles, and has historically been how replication
middleware drifts from its specification.  These rules resolve every
``import``/``from ... import`` (absolute and relative) to its owning
package and check it against the DAG.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .config import ALLOWED_DEPS, TOP_LEVEL_MAY_IMPORT_ANYTHING
from .diagnostics import Diagnostic
from .registry import rule


def _finding(ctx, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        file=ctx.path, line=getattr(node, "lineno", 0), rule="",
        severity="", message=message, col=getattr(node, "col_offset", 0),
    )


def _imported_repro_modules(ctx) -> List[Tuple[ast.AST, str]]:
    """Every repro-module target imported by ``ctx``, with its AST node."""
    assert ctx.module is not None
    out: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_import_from(ctx.module, ctx.is_package, node)
            if target is not None:
                out.append((node, target))
    return out


def _resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute repro module named by a ``from ... import`` statement."""
    if node.level == 0:
        if node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            return node.module
        return None
    # Relative import: strip (level - 1) trailing components from the
    # importing module's package path, then append the named module.  For
    # an ``__init__.py`` the module name *is* the package.
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    if node.level - 1 > len(package_parts):
        return None  # would escape the repro tree; let Python error on it
    base = package_parts[: len(package_parts) - (node.level - 1)]
    target = base + (node.module.split(".") if node.module else [])
    resolved = ".".join(target)
    if resolved == "repro" or resolved.startswith("repro."):
        return resolved
    return None


def _package_of_target(target: str) -> str:
    parts = target.split(".")
    if len(parts) == 1 or parts[1].startswith("__"):
        return ""
    return parts[1]


@rule("L201", "upward-import")
def check_upward_imports(ctx) -> Iterator[Diagnostic]:
    """Import that violates the declared package DAG.

    A module in package P may import only from P itself or from the
    packages ``ALLOWED_DEPS[P]`` lists below it.  Anything else is an
    upward (or sideways) dependency that the architecture forbids.
    """
    if ctx.module is None or ctx.package is None:
        return
    if ctx.package == "" and TOP_LEVEL_MAY_IMPORT_ANYTHING:
        return  # repro/__init__.py and __main__.py re-export the world
    allowed = ALLOWED_DEPS.get(ctx.package)
    if allowed is None:
        return  # L202 reports the undeclared package
    for node, target in _imported_repro_modules(ctx):
        target_package = _package_of_target(target)
        if target_package == ctx.package:
            continue
        if target_package == "":
            # Importing bare ``repro`` (or its dunder modules) from inside
            # a layer re-enters the top-level re-exports: upward by
            # definition.
            yield _finding(
                ctx, node,
                f"module {ctx.module} (layer '{ctx.package}') imports the "
                f"top-level repro package; import the owning layer directly",
            )
            continue
        if target_package not in allowed:
            yield _finding(
                ctx, node,
                f"module {ctx.module} (layer '{ctx.package}') imports "
                f"{target} (layer '{target_package}'), which the import DAG "
                f"forbids; allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'}",
            )


@rule("L202", "undeclared-package")
def check_undeclared_package(ctx) -> Iterator[Diagnostic]:
    """Package missing from the DAG declaration.

    Every first-level package under ``repro`` (and every package it
    imports) must have an entry in ``ALLOWED_DEPS`` so its layer is an
    explicit, reviewed decision rather than an accident.
    """
    if ctx.module is None or ctx.package is None:
        return
    if ctx.package != "" and ctx.package not in ALLOWED_DEPS:
        yield _finding(
            ctx, ctx.tree,
            f"package '{ctx.package}' is not declared in "
            f"repro.lint.config.ALLOWED_DEPS; add it to the import DAG",
        )
        return
    if ctx.package == "":
        return
    for node, target in _imported_repro_modules(ctx):
        target_package = _package_of_target(target)
        if target_package and target_package not in ALLOWED_DEPS:
            yield _finding(
                ctx, node,
                f"import of {target}: package '{target_package}' is not "
                f"declared in repro.lint.config.ALLOWED_DEPS",
            )
