"""Diagnostic records, suppression comments, and the baseline file.

A :class:`Diagnostic` is one finding: file, line, rule id, severity and a
human message.  Two mechanisms silence a finding without fixing it:

* an inline ``# repro: noqa RULE`` (or bare ``# repro: noqa``) comment on
  the flagged line, for deliberate one-off exceptions, and
* the checked-in baseline file, which grandfathers existing findings so
  the linter can gate new code while old debt is paid down incrementally.

Baseline entries are fingerprints (``path::rule::message``) rather than
line numbers, so unrelated edits that shift code do not invalidate them.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .config import NOQA_MARKER

__all__ = [
    "Diagnostic",
    "Baseline",
    "find_noqa",
    "render_text",
    "render_json",
    "render_sarif",
]

_NOQA_RE = re.compile(
    r"#\s*" + re.escape(NOQA_MARKER) + r"(?:\s+(?P<rules>[A-Z]\d+(?:[,\s]+[A-Z]\d+)*))?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pointing at ``file:line``."""

    file: str
    line: int
    rule: str
    severity: str  # "error" | "warning"
    message: str
    col: int = 0

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.file}::{self.rule}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"


def find_noqa(line: str) -> Optional[frozenset]:
    """Parse a suppression comment on ``line``.

    Returns ``None`` when there is no marker, an empty frozenset for a bare
    ``# repro: noqa`` (suppress every rule), or the set of rule ids named.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if not rules:
        return frozenset()
    return frozenset(re.split(r"[,\s]+", rules.strip()))


def suppressed(diagnostic: Diagnostic, lines: Sequence[str]) -> bool:
    """Whether an inline noqa on the diagnostic's line covers its rule."""
    if not 1 <= diagnostic.line <= len(lines):
        return False
    rules = find_noqa(lines[diagnostic.line - 1])
    if rules is None:
        return False
    return not rules or diagnostic.rule in rules


class Baseline:
    """Multiset of grandfathered fingerprints backed by a text file.

    The file holds one fingerprint per line (sorted; duplicates are
    meaningful — three identical findings need three entries).  Lines that
    are blank or start with ``#`` are ignored.
    """

    def __init__(self, entries: Optional[Iterable[str]] = None) -> None:
        self._counts: Dict[str, int] = {}
        for entry in entries or ():
            self._counts[entry] = self._counts.get(entry, 0) + 1

    @classmethod
    def load(cls, path: str) -> "Baseline":
        entries: List[str] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for raw in handle:
                    line = raw.rstrip("\n")
                    if line and not line.startswith("#"):
                        entries.append(line)
        except FileNotFoundError:
            pass
        return cls(entries)

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        return cls(d.fingerprint() for d in diagnostics)

    def save(self, path: str) -> None:
        lines = ["# repro.lint baseline — regenerate with: "
                 "python -m repro.lint --write-baseline"]
        for entry, count in sorted(self._counts.items()):
            lines.extend([entry] * count)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    def filter(self, diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
        """Diagnostics not covered by the baseline (multiset semantics)."""
        remaining = dict(self._counts)
        kept: List[Diagnostic] = []
        for diagnostic in diagnostics:
            key = diagnostic.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                kept.append(diagnostic)
        return kept

    def __len__(self) -> int:
        return sum(self._counts.values())


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    lines = [d.render() for d in diagnostics]
    if diagnostics:
        lines.append(f"{len(diagnostics)} finding(s)")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps([d.as_dict() for d in diagnostics], indent=2)


# SARIF severity levels for our two severities.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a SARIF 2.1.0 log (for CI inline annotations).

    Every finding maps to one ``result`` with its rule id, level, message
    and physical location; the driver's rule table documents the whole
    registry (id, name, descriptions, helpUri into docs/linting.md), so
    CI annotations stay informative even for rules that did not fire.
    """
    from .registry import all_rules  # local import: registry imports us

    rules = [
        {
            "id": entry.id,
            "name": entry.name,
            "shortDescription": {"text": entry.summary},
            "fullDescription": {"text": entry.doc or entry.summary},
            "helpUri": entry.help_uri,
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(entry.severity, "warning"),
            },
        }
        for entry in all_rules()
    ]
    results = [
        {
            "ruleId": d.rule,
            "level": _SARIF_LEVELS.get(d.severity, "warning"),
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.file},
                        "region": {
                            "startLine": max(d.line, 1),
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/linting.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
