"""Group membership and View Synchronous Broadcast (VSCAST).

Section 3.1 of the paper defines VSCAST over a sequence of *views*
``v0(g), v1(g), ...`` of a group ``g``: whenever a member is suspected to
have crashed, or a process joins, a new view is installed, and

    if one process p in view ``vi(g)`` delivers message m before
    installing view ``vi+1(g)``, then no process installs ``vi+1(g)``
    before having first delivered m.

This module implements the primary-partition flavour used by passive and
semi-active replication:

* **Normal operation** — :meth:`ViewSyncGroup.vscast` reliably sends to
  the current view; receivers deliver immediately and record the message
  in the per-view log.
* **View change** — triggered by failure-detector suspicion of a member or
  by a join request.  All members exchange *flush* messages carrying their
  per-view logs, then run a consensus instance (Chandra–Toueg, among the
  old view's members) on the pair ``(new membership, union log)``.  Before
  installing the decided view every member delivers every message in the
  decided union log it has not delivered yet — which is exactly the view
  synchrony property above.
* **Joins** — a joiner contacts the group; the next view includes it, and
  the lowest-ranked surviving member transfers application state to it
  (``get_state``/``set_state`` hooks).

A correct process wrongly excluded from the view (aggressive failure
detection) observes ``excluded`` and must re-join; this is the cost of
primary-partition membership that Section 3.5's semi-passive discussion
alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import ReplicationError
from ..failures import FailureDetector
from ..net import Node
from ..sim import TraceLog
from .channels import ReliableTransport
from .consensus import Consensus

__all__ = ["View", "ViewSyncGroup"]

MSG = "vs.msg"
FLUSH = "vs.flush"
JOIN = "vs.join"
INSTALL = "vs.install"


@dataclass(frozen=True)
class View:
    """One installed group view: an id and its member list."""

    view_id: int
    members: Tuple[str, ...]

    def __contains__(self, name: str) -> bool:
        return name in self.members

    def __repr__(self) -> str:
        return f"View({self.view_id}, {list(self.members)})"


class ViewSyncGroup:
    """Per-node endpoint of a view-synchronous process group.

    Parameters
    ----------
    node, transport, detector:
        Hosting node, reliable transport, failure detector.
    initial_members:
        Members of view 0.  Must be identical at every founding member.
    deliver:
        Upcall ``deliver(origin, mtype, body)`` for VSCAST messages.
    on_view_change:
        Optional listener ``on_view_change(view)`` called at each install.
    get_state / set_state:
        Application state-transfer hooks used when a joiner is admitted.
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        detector: FailureDetector,
        initial_members: List[str],
        deliver: Callable[[str, str, dict], None],
        on_view_change: Optional[Callable[[View], None]] = None,
        get_state: Optional[Callable[[], Any]] = None,
        set_state: Optional[Callable[[Any], None]] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.node = node
        self.transport = transport
        self.detector = detector
        self.deliver = deliver
        self.on_view_change = on_view_change
        self.get_state = get_state
        self.set_state = set_state
        self.trace = trace

        self.member = node.name in initial_members
        self.excluded = False
        self.view = View(0, tuple(sorted(initial_members)))
        self._delivered_uids: Set[str] = set()
        self._view_log: Dict[str, Tuple[str, str, dict]] = {}
        self._changing = False
        self._flushes: Dict[str, Dict[str, tuple]] = {}
        self._pending_joins: Set[str] = set()
        self._queued_out: List[Tuple[str, dict]] = []
        self._future_msgs: Dict[int, List[dict]] = {}
        self._consensus_cache: Dict[int, Consensus] = {}

        transport.on(MSG, self._on_msg)
        transport.on(FLUSH, self._on_flush)
        transport.on(JOIN, self._on_join)
        transport.on(INSTALL, self._on_install)
        detector.on_suspect(self._on_suspicion)

    # -- sending ----------------------------------------------------------

    def vscast(self, mtype: str, **body: Any) -> None:
        """View-synchronously broadcast ``body`` to the current view."""
        if self.excluded or not self.member:
            raise ReplicationError(f"{self.node.name} is not a member of the group")
        if self._changing:
            self._queued_out.append((mtype, body))
            return
        uid = f"{self.node.name}#{self.node.fresh_uid()}"
        record = (self.node.name, mtype, body)
        # Deliver locally first so every vscast is in its sender's log and
        # therefore salvageable by the flush protocol.
        self._record_delivery(uid, record)
        for member in self.view.members:
            if member != self.node.name:
                self.transport.send(
                    member, MSG,
                    view=self.view.view_id, uid=uid,
                    origin=self.node.name, mtype=mtype, body=body,
                )

    def join(self, contacts: List[str]) -> None:
        """Ask the group (via ``contacts``) to admit this node."""
        self.excluded = False
        for contact in contacts:
            self.transport.send(contact, JOIN, name=self.node.name)

    # -- delivery -----------------------------------------------------------

    def _record_delivery(self, uid: str, record: Tuple[str, str, dict]) -> None:
        origin, mtype, body = record
        self._delivered_uids.add(uid)
        self._view_log[uid] = record
        if self.trace is not None:
            self.trace.record(
                "vscast", self.node.name,
                view=self.view.view_id, uid=uid, origin=origin, mtype=mtype,
            )
        self.deliver(origin, mtype, body)

    def _on_msg(self, src: str, payload: dict) -> None:
        if not self.member or self.excluded:
            return
        view_id = payload["view"]
        if view_id > self.view.view_id:
            self._future_msgs.setdefault(view_id, []).append(payload)
            return
        if view_id < self.view.view_id or self._changing:
            # Stale or mid-flush traffic: the flush/union-log machinery is
            # the only sanctioned path for these to reach the application.
            return
        uid = payload["uid"]
        if uid in self._delivered_uids:
            return
        self._record_delivery(uid, (payload["origin"], payload["mtype"], payload["body"]))

    # -- view-change triggers ---------------------------------------------------

    def _on_suspicion(self, peer: str) -> None:
        if not self.member or self.excluded:
            return
        if peer in self.view.members:
            if self._changing:
                self._check_flush_complete()
            else:
                self._start_flush()

    def _on_join(self, src: str, payload: dict) -> None:
        if not self.member or self.excluded:
            return
        name = payload["name"]
        if name in self.view.members or name in self._pending_joins:
            return
        self._pending_joins.add(name)
        # Gossip the join so every member's proposal includes the joiner;
        # otherwise consensus may pick a proposal that omits it and the
        # group would reconfigure forever.
        for member in self.view.members:
            if member != self.node.name:
                self.transport.send(member, JOIN, name=name)
        if not self._changing:
            self._start_flush()

    # -- flush + consensus -----------------------------------------------------------

    def _start_flush(self) -> None:
        self._changing = True
        log_wire = {
            uid: [origin, mtype, body]
            for uid, (origin, mtype, body) in self._view_log.items()
        }
        self._flushes.setdefault(self.node.name, {}).update(self._view_log)
        for member in self.view.members:
            if member != self.node.name:
                self.transport.send(
                    member, FLUSH, view=self.view.view_id, log=log_wire
                )
        self._check_flush_complete()

    def _on_flush(self, src: str, payload: dict) -> None:
        if not self.member or self.excluded:
            return
        if payload["view"] != self.view.view_id:
            return
        if not self._changing:
            # A peer started the view change before our own detector
            # noticed anything; join the flush.
            self._start_flush()
        self._flushes[src] = {
            uid: (entry[0], entry[1], entry[2]) for uid, entry in payload["log"].items()
        }
        self._check_flush_complete()

    def _unsuspected_members(self) -> List[str]:
        return [
            member for member in self.view.members
            if member == self.node.name or not self.detector.is_suspected(member)
        ]

    def _check_flush_complete(self) -> None:
        if not self._changing:
            return
        survivors = self._unsuspected_members()
        if any(member not in self._flushes for member in survivors):
            return
        union_log: Dict[str, tuple] = {}
        for member in survivors:
            union_log.update(self._flushes[member])
        joiners = sorted(self._pending_joins)
        proposal = {
            "members": sorted(set(survivors) | set(joiners)),
            "log": {
                uid: [origin, mtype, body]
                for uid, (origin, mtype, body) in union_log.items()
            },
        }
        self._view_consensus(self.view.view_id).propose(self.view.view_id, proposal)

    def _view_consensus(self, view_id: int) -> Consensus:
        consensus = self._consensus_cache.get(view_id)
        if consensus is None:
            consensus = Consensus(
                self.node,
                self.transport,
                list(self.view.members),
                self.detector,
                self._on_decide,
                trace=self.trace,
                channel_prefix=f"vs.v{view_id}",
            )
            self._consensus_cache[view_id] = consensus
        return consensus

    def _on_decide(self, view_id: Any, proposal: dict) -> None:
        if view_id != self.view.view_id:
            return
        members = proposal["members"]
        # View synchrony: deliver the decided union log before installing.
        for uid in sorted(proposal["log"]):
            if uid in self._delivered_uids:
                continue
            origin, mtype, body = proposal["log"][uid]
            self._record_delivery(uid, (origin, mtype, body))
        old_members = set(self.view.members)
        joiners = [m for m in members if m not in old_members]
        if self.node.name not in members:
            self.excluded = True
            self.member = False
            if self.trace is not None:
                self.trace.record("view", self.node.name, action="excluded", view=view_id + 1)
            return
        self._install(View(view_id + 1, tuple(members)))
        survivors_in_new = [m for m in members if m in old_members]
        if joiners and survivors_in_new and survivors_in_new[0] == self.node.name:
            state = self.get_state() if self.get_state is not None else None
            for joiner in joiners:
                self.transport.send(
                    joiner, INSTALL,
                    view=view_id + 1, members=list(members), state=state,
                )

    def _on_install(self, src: str, payload: dict) -> None:
        if self.member and payload["view"] <= self.view.view_id:
            return
        if self.set_state is not None:
            self.set_state(payload["state"])
        self.member = True
        self.excluded = False
        self._install(View(payload["view"], tuple(payload["members"])))

    def _install(self, view: View) -> None:
        self.view = view
        self._view_log = {}
        self._flushes = {}
        self._changing = False
        self._pending_joins -= set(view.members)
        # A member of the new view may already be suspected (the deciding
        # proposal came from a peer with a more optimistic detector); keep
        # reconfiguring until the view matches our own failure picture.
        if self._pending_joins or any(
            self.detector.is_suspected(m) for m in view.members if m != self.node.name
        ):
            self.node.sim.call_soon(self._restart_if_needed)
        if self.trace is not None:
            self.trace.record(
                "view", self.node.name, action="install",
                view=view.view_id, members=",".join(view.members),
            )
        if self.on_view_change is not None:
            self.on_view_change(view)
        # Drain traffic that arrived for this view before we installed it.
        for payload in self._future_msgs.pop(view.view_id, []):
            self._on_msg(payload["origin"], payload)
        # Resend multicasts queued during the change.
        queued, self._queued_out = self._queued_out, []
        for mtype, body in queued:
            if self._pending_joins or self.detector.suspected & set(view.members):
                self._queued_out.append((mtype, body))
            else:
                self.vscast(mtype, **body)

    def _restart_if_needed(self) -> None:
        if self.member and not self.excluded and not self._changing:
            needs_change = self._pending_joins or any(
                self.detector.is_suspected(m)
                for m in self.view.members
                if m != self.node.name
            )
            if needs_change:
                self._start_flush()

    def __repr__(self) -> str:
        flags = "changing" if self._changing else "stable"
        return f"<ViewSyncGroup@{self.node.name} {self.view!r} {flags}>"
