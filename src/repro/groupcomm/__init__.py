"""Group communication primitives (Section 3.1 of the paper).

The stack, bottom-up:

* :class:`ReliableTransport` — quasi-reliable FIFO point-to-point channels.
* :class:`ReliableBroadcast` — all-or-nothing diffusion to a static group.
* :class:`FifoBroadcast` / :class:`CausalBroadcast` — ordered variants.
* :class:`Consensus` — Chandra–Toueg rotating-coordinator consensus.
* :class:`SequencerAtomicBroadcast` / :class:`ConsensusAtomicBroadcast` —
  the paper's ABCAST primitive (total order).
* :class:`ViewSyncGroup` — group membership + the paper's VSCAST primitive.
* :class:`DeferredConsensus` — consensus with deferred initial values
  (the semi-passive replication engine).
"""

from .abcast import ConsensusAtomicBroadcast, SequencerAtomicBroadcast
from .optimistic import OptimisticAtomicBroadcast
from .causal import CausalBroadcast
from .channels import ReliableTransport
from .consensus import Consensus
from .deferred import DeferredConsensus
from .fifo import FifoBroadcast
from .rbcast import ReliableBroadcast
from .vclock import VectorClock
from .views import View, ViewSyncGroup

__all__ = [
    "ReliableTransport",
    "ReliableBroadcast",
    "FifoBroadcast",
    "CausalBroadcast",
    "VectorClock",
    "Consensus",
    "DeferredConsensus",
    "SequencerAtomicBroadcast",
    "ConsensusAtomicBroadcast",
    "OptimisticAtomicBroadcast",
    "View",
    "ViewSyncGroup",
]
