"""Vector clocks for causal ordering.

Used by :mod:`repro.groupcomm.causal` to track the happened-before relation
(Section 2's "causality ... based on potential dependencies") and by tests
as a stand-alone data structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["VectorClock"]


class VectorClock:
    """A mapping from process name to event count.

    Immutable-style API: operations return new clocks, so clocks can be
    attached to messages without defensive copying at every layer.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self._counts = dict(counts or {})

    @classmethod
    def zero(cls, members: Iterable[str]) -> "VectorClock":
        """An all-zero clock over ``members``."""
        return cls({member: 0 for member in members})

    def get(self, member: str) -> int:
        return self._counts.get(member, 0)

    def increment(self, member: str) -> "VectorClock":
        """A new clock with ``member``'s entry advanced by one."""
        counts = dict(self._counts)
        counts[member] = counts.get(member, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum of the two clocks."""
        counts = dict(self._counts)
        for member, count in other._counts.items():
            counts[member] = max(counts.get(member, 0), count)
        return VectorClock(counts)

    # -- comparison (partial order) -----------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return all(count <= other.get(m) for m, count in self._counts.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        members = set(self._counts) | set(other._counts)
        return all(self.get(m) == other.get(m) for m in members)

    def __hash__(self) -> int:
        return hash(frozenset((m, c) for m, c in self._counts.items() if c))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock dominates the other."""
        return not (self <= other) and not (other <= self)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{m}:{c}" for m, c in sorted(self._counts.items()))
        return f"VC({inner})"
