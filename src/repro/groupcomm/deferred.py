"""Consensus with Deferred Initial Values (semi-passive replication).

Section 3.5 of the paper describes semi-passive replication as a variant
of passive replication in which "the Server Coordination (phase 2) and the
Agreement Coordination (phase 4) are part of one single coordination
protocol called Consensus with Deferred Initial Values".

The twist relative to ordinary consensus: a process's initial value is not
fixed at ``propose`` time.  Instead each process supplies a *thunk*; only
the coordinator of a round evaluates it — for semi-passive replication the
thunk *executes the client request* and yields the resulting update.  If
the first coordinator crashes (or is wrongly suspected), the rotating-
coordinator mechanism makes the next coordinator execute the request and
propose its own update.  Thus exactly the processes that act as
coordinators pay the execution cost, and no view-synchronous membership is
needed — the property the paper highlights: aggressive suspicion timeouts
without paying a reconfiguration cost for wrong suspicions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..sim import Future
from .consensus import Consensus

__all__ = ["DeferredConsensus"]

_UNSET = object()


class DeferredConsensus(Consensus):
    """Chandra–Toueg consensus whose initial values are computed lazily.

    Use :meth:`propose_deferred` instead of :meth:`propose`.  The supplied
    ``compute`` callback is invoked at most once per process, and only when
    this process coordinates a round whose estimates are all still unset.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._compute: Dict[Any, Callable[[], Any]] = {}
        self._computed: Dict[Any, Any] = {}

    def propose_deferred(self, instance: Any, compute: Callable[[], Any]) -> Future:
        """Participate in ``instance``, computing a value only if needed."""
        self._compute[instance] = compute
        return self.propose(instance, _UNSET)

    def _choose_estimate(self, instance: Any, estimates: List[Tuple[int, str, Any]]) -> Any:
        concrete = [e for e in estimates if e[2] is not _UNSET and e[2] != "__unset__"]
        if concrete:
            return super()._choose_estimate(instance, concrete)
        compute = self._compute.get(instance)
        if compute is None:
            # No thunk registered (plain propose with _UNSET is not public
            # API); fall back to the raw estimates.
            return super()._choose_estimate(instance, estimates)
        if instance not in self._computed:
            self._computed[instance] = compute()
        return self._computed[instance]

    def executed_locally(self, instance: Any) -> bool:
        """Whether this process evaluated its thunk (acted as coordinator)."""
        return instance in self._computed
