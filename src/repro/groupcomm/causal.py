"""Causally ordered broadcast.

Implements the ordering the paper contrasts with database data-dependency
ordering (Section 2.2): "causality, which is based on potential
dependencies without looking at the operation semantics".  Each message
carries the sender's vector clock; delivery is held back until all causal
predecessors have been delivered locally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net import Node
from ..sim import TraceLog
from .channels import ReliableTransport
from .rbcast import ReliableBroadcast
from .vclock import VectorClock

__all__ = ["CausalBroadcast"]


class CausalBroadcast:
    """Per-node causal broadcast endpoint over a static group.

    The delivery condition for a message from origin *j* carrying clock
    *vc* is the classic one: ``vc[j] == local[j] + 1`` and
    ``vc[k] <= local[k]`` for every other member *k*.
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        deliver: Callable[[str, str, dict], None],
        relay: bool = True,
        trace: Optional[TraceLog] = None,
        channel: str = "causal.msg",
    ) -> None:
        self.node = node
        self.deliver = deliver
        self.trace = trace
        self.clock = VectorClock.zero(group)
        self._pending: List[Tuple[str, VectorClock, str, dict]] = []
        self._rb = ReliableBroadcast(
            node, transport, group, self._on_rb_deliver, relay=relay, channel=channel
        )

    @property
    def group(self) -> List[str]:
        return self._rb.group

    def broadcast(self, mtype: str, **body: Any) -> None:
        """Causally broadcast ``body``; the local copy delivers immediately."""
        self.clock = self.clock.increment(self.node.name)
        self._rb.broadcast(mtype, _vc=self.clock.as_dict(), **body)

    def _on_rb_deliver(self, origin: str, mtype: str, body: dict) -> None:
        body = dict(body)
        clock = VectorClock(body.pop("_vc"))
        self._pending.append((origin, clock, mtype, body))
        self._drain()

    def _deliverable(self, origin: str, clock: VectorClock) -> bool:
        if origin == self.node.name:
            # Own broadcasts already advanced the local clock at send time.
            return clock.get(origin) <= self.clock.get(origin)
        for member in self.group:
            local = self.clock.get(member)
            if member == origin:
                if clock.get(member) != local + 1:
                    return False
            elif clock.get(member) > local:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for entry in list(self._pending):
                origin, clock, mtype, body = entry
                if not self._deliverable(origin, clock):
                    continue
                self._pending.remove(entry)
                if origin != self.node.name:
                    self.clock = self.clock.merge(clock)
                if self.trace is not None:
                    self.trace.record(
                        "causal", self.node.name, origin=origin, mtype=mtype
                    )
                self.deliver(origin, mtype, body)
                progressed = True

    def __repr__(self) -> str:
        return f"<CausalBroadcast@{self.node.name} clock={self.clock!r}>"
