"""Reliable broadcast.

Guarantees (for a static group, crash-stop faults):

* **Validity** — a correct member that broadcasts eventually delivers.
* **Agreement** — if any correct member delivers *m*, every correct member
  eventually delivers *m* (even if the sender crashed mid-broadcast).
* **Integrity** — *m* is delivered at most once, and only if broadcast.

Agreement is obtained by relaying: the first time a member receives a
broadcast it forwards it to the whole group before delivering.  This costs
O(n²) messages per broadcast, the textbook price for crash-tolerant
diffusion without failure detection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from ..net import Node
from ..sim import TraceLog
from .channels import ReliableTransport

__all__ = ["ReliableBroadcast"]

class ReliableBroadcast:
    """Per-node reliable-broadcast endpoint over a static group.

    Parameters
    ----------
    node:
        Hosting node.
    transport:
        The node's reliable point-to-point transport.
    group:
        Names of all group members (including this node).
    deliver:
        Upcall ``deliver(origin, mtype, body)`` invoked on delivery.
    relay:
        Forward first receipts to the group (needed for the agreement
        property when senders may crash).  Disable to halve traffic in
        crash-free experiments.
    """

    CHANNEL = "rb.msg"

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        deliver: Callable[[str, str, dict], None],
        relay: bool = True,
        trace: Optional[TraceLog] = None,
        channel: str = CHANNEL,
    ) -> None:
        self.node = node
        self.transport = transport
        self.group = list(group)
        self.deliver = deliver
        self.relay = relay
        self.trace = trace
        self.channel = channel
        self._seen: Set[str] = set()
        transport.on(channel, self._on_receive)

    def broadcast(self, mtype: str, **body: Any) -> str:
        """Reliably broadcast to the whole group; returns the message uid."""
        uid = f"{self.node.name}#{self.node.fresh_uid()}"
        self._diffuse(uid, self.node.name, mtype, body)
        return uid

    # -- internals ------------------------------------------------------------

    def _diffuse(self, uid: str, origin: str, mtype: str, body: dict) -> None:
        self.transport.send_to_group(
            self.group, self.channel, uid=uid, origin=origin, mtype=mtype, body=body
        )

    def _on_receive(self, src: str, payload: Dict[str, Any]) -> None:
        uid = payload["uid"]
        if uid in self._seen:
            return
        self._seen.add(uid)
        origin, mtype, body = payload["origin"], payload["mtype"], payload["body"]
        if self.relay and src != self.node.name and origin != self.node.name:
            # First receipt from elsewhere: relay before delivering so the
            # broadcast survives the origin crashing mid-send.
            for member in self.group:
                if member not in (self.node.name, origin, src):
                    self.transport.send(
                        member, self.channel,
                        uid=uid, origin=origin, mtype=mtype, body=dict(body),
                    )
        if self.trace is not None:
            self.trace.record("rbcast", self.node.name, uid=uid, origin=origin, mtype=mtype)
        self.deliver(origin, mtype, body)

    def __repr__(self) -> str:
        return f"<ReliableBroadcast@{self.node.name} group={self.group}>"
