"""Optimistic atomic broadcast (OPT-ABCAST).

The paper's introduction cites the authors' own DRAGON-project result
[KPAS99a]: "we have also shown how some of the overheads associated with
group communication can be hidden behind the cost of executing
transactions".  The mechanism is *optimistic delivery*: a message is
handed to the application twice —

* **tentatively**, as soon as it arrives (one network hop): the
  application may start processing speculatively;
* **finally**, when the total order is established: the application
  confirms the speculation if the tentative order agreed with the final
  order, or redoes the work if it did not.

On a LAN, messages usually arrive everywhere in the order they will be
sequenced ("spontaneous total order"), so speculation almost always pays
and the ordering latency is overlapped with processing.

:class:`OptimisticAtomicBroadcast` layers tentative dissemination
(reliable broadcast) next to a conventional ABCAST and reports, per final
delivery, whether the site's tentative order matched — the signal a
speculative consumer needs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from ..failures import FailureDetector
from ..net import Node
from ..sim import TraceLog
from .abcast import ConsensusAtomicBroadcast, SequencerAtomicBroadcast
from .channels import ReliableTransport
from .rbcast import ReliableBroadcast

__all__ = ["OptimisticAtomicBroadcast"]

class OptimisticAtomicBroadcast:
    """ABCAST with early tentative deliveries.

    Parameters
    ----------
    node, transport, group, detector:
        The usual stack handles (``detector`` is only needed for the
        consensus flavour).
    opt_deliver:
        Upcall ``opt_deliver(origin, mtype, body)`` at tentative delivery
        (receive order — may differ between sites and from the final
        order).
    final_deliver:
        Upcall ``final_deliver(origin, mtype, body, matched)`` in the
        definitive total order.  ``matched`` is True iff this message
        arrived tentatively exactly at its final position, i.e. the
        speculation performed at tentative time is valid.
    flavour:
        Underlying ordering protocol: ``"sequencer"`` or ``"consensus"``.
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        detector: Optional[FailureDetector],
        opt_deliver: Callable[[str, str, dict], None],
        final_deliver: Callable[[str, str, dict, bool], None],
        flavour: str = "sequencer",
        trace: Optional[TraceLog] = None,
        channel_prefix: str = "optab",
    ) -> None:
        self.node = node
        self.opt_deliver = opt_deliver
        self.final_deliver = final_deliver
        self.trace = trace
        self._tentative_order: List[str] = []
        self._tentative_set: Set[str] = set()
        self._final_count = 0
        self.matches = 0
        self.mismatches = 0
        self._tentative_rb = ReliableBroadcast(
            node, transport, group, self._on_tentative,
            channel=f"{channel_prefix}.tent",
        )
        if flavour == "sequencer":
            self._ordered = SequencerAtomicBroadcast(
                node, transport, group, self._on_final,
                channel_prefix=f"{channel_prefix}.ord",
            )
        else:
            if detector is None:
                raise ValueError("consensus flavour needs a failure detector")
            self._ordered = ConsensusAtomicBroadcast(
                node, transport, group, detector, self._on_final,
                channel_prefix=f"{channel_prefix}.ord",
            )

    # -- sending ------------------------------------------------------------

    def abcast(self, mtype: str, **body: Any) -> str:
        """Broadcast: tentative copies race ahead of the ordering protocol."""
        uid = f"{self.node.name}~{self.node.fresh_uid()}"
        self._tentative_rb.broadcast(
            "tent", uid=uid, origin=self.node.name, m=mtype, body=dict(body)
        )
        self._ordered.abcast(
            "wrap", uid=uid, origin=self.node.name, m=mtype, body=dict(body)
        )
        return uid

    # -- deliveries -----------------------------------------------------------

    def _on_tentative(self, _origin: str, _mtype: str, payload: dict) -> None:
        uid = payload["uid"]
        if uid in self._tentative_set:
            return
        self._tentative_set.add(uid)
        self._tentative_order.append(uid)
        if self.trace is not None:
            self.trace.record("optab", self.node.name, uid=uid, kind="tentative")
        self.opt_deliver(payload["origin"], payload["m"], payload["body"])

    def _on_final(self, _origin: str, _mtype: str, payload: dict) -> None:
        uid = payload["uid"]
        position = self._final_count
        self._final_count += 1
        matched = (
            len(self._tentative_order) > position
            and self._tentative_order[position] == uid
        )
        if matched:
            self.matches += 1
        else:
            self.mismatches += 1
            # Re-anchor the speculation stream: future comparisons are
            # against the final history, which from here on is authoritative.
            if uid in self._tentative_set:
                self._tentative_order.remove(uid)
            self._tentative_order.insert(position, uid)
            self._tentative_set.add(uid)
        if self.trace is not None:
            self.trace.record(
                "optab", self.node.name, uid=uid, kind="final", matched=matched
            )
        self.final_deliver(payload["origin"], payload["m"], payload["body"], matched)

    @property
    def match_rate(self) -> float:
        """Fraction of final deliveries whose speculation was valid."""
        total = self.matches + self.mismatches
        return self.matches / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<OptimisticAtomicBroadcast@{self.node.name} "
            f"matches={self.matches} mismatches={self.mismatches}>"
        )
