"""Reliable point-to-point channels (retransmission + deduplication).

The raw :class:`~repro.net.Network` may lose messages.  Quasi-reliable
channels — "if neither endpoint crashes, every message sent is eventually
delivered, exactly once, in FIFO order" — are the lowest abstraction the
paper's group-communication primitives assume.  :class:`ReliableTransport`
builds them with positive acknowledgements, periodic retransmission and
receiver-side sequence tracking.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..net import Message, Node

__all__ = ["ReliableTransport"]

DATA = "rt.data"
ACK = "rt.ack"


class ReliableTransport:
    """Per-node reliable-channel endpoint.

    Upper layers register an *upcall* per inner message type with
    :meth:`on`, and send with :meth:`send`.  Lost messages are retransmitted
    every ``retry_interval`` until acknowledged; duplicates created by
    retransmission are suppressed with per-sender sequence numbers, and
    delivery to the upcall is in per-sender FIFO order.

    One transport instance per node; all reliable upper layers share it.
    """

    def __init__(self, node: Node, retry_interval: float = 5.0) -> None:
        self.node = node
        self.retry_interval = retry_interval
        self._upcalls: Dict[str, Callable[[str, dict], None]] = {}
        self._undelivered: Dict[str, list] = {}
        self._next_seq: Dict[str, int] = {}          # per destination
        self._unacked: Dict[Tuple[str, int], dict] = {}
        # Pending retransmit timer per unacked frame, cancelled on ack so
        # acked frames stop producing no-op wakeups (one per retry
        # interval per frame — a measurable share of all kernel events in
        # message-heavy runs).
        self._retry_timers: Dict[Tuple[str, int], Any] = {}
        self._next_expected: Dict[str, int] = {}     # per source
        self._out_of_order: Dict[str, Dict[int, Message]] = {}
        node.on(DATA, self._on_data)
        node.on(ACK, self._on_ack)

    def on(self, inner_type: str, upcall: Callable[[str, dict], None]) -> None:
        """Register ``upcall(src, payload)`` for reliable messages of a type.

        Messages of a type that arrived before registration are buffered
        and drained (in arrival order) as soon as the upcall appears; this
        lets components be created lazily (e.g. one consensus endpoint per
        group view) without losing early traffic.
        """
        if inner_type in self._upcalls:
            raise ValueError(f"{self.node.name}: duplicate reliable upcall {inner_type!r}")
        self._upcalls[inner_type] = upcall
        for src, payload in self._undelivered.pop(inner_type, []):
            self.node.sim.call_soon(self._upcall, inner_type, src, payload)

    def send(self, dst: str, inner_type: str, **payload: Any) -> None:
        """Reliably send ``payload`` to ``dst`` (exactly-once, FIFO)."""
        if dst == self.node.name:
            # Local delivery short-circuits the network entirely.
            self.node.sim.call_soon(self._deliver_local, inner_type, payload)
            return
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        frame = {"seq": seq, "inner_type": inner_type, "body": payload}
        self._unacked[(dst, seq)] = frame
        self._transmit(dst, seq)

    def send_to_group(self, members: list, inner_type: str, **payload: Any) -> None:
        """Reliable point-to-point send to every member (incl. self)."""
        for member in members:
            self.send(member, inner_type, **dict(payload))

    # -- internals ---------------------------------------------------------

    def _deliver_local(self, inner_type: str, payload: dict) -> None:
        if self.node.crashed:
            return
        self._upcall(inner_type, self.node.name, payload)

    def _transmit(self, dst: str, seq: int) -> None:
        key = (dst, seq)
        frame = self._unacked.get(key)
        if frame is None or self.node.crashed:
            self._retry_timers.pop(key, None)
            return
        self.node.send(dst, DATA, **frame)
        self._retry_timers[key] = self.node.after(
            self.retry_interval, self._transmit, dst, seq
        )

    def _on_data(self, message: Message) -> None:
        src = message.src
        seq = message["seq"]
        self.node.send(src, ACK, seq=seq)
        expected = self._next_expected.get(src, 0)
        if seq < expected:
            return  # duplicate of an already-delivered frame
        pending = self._out_of_order.setdefault(src, {})
        pending[seq] = message
        while expected in pending:
            frame = pending.pop(expected)
            expected += 1
            self._next_expected[src] = expected
            self._upcall(frame["inner_type"], src, frame["body"])

    def _on_ack(self, message: Message) -> None:
        key = (message.src, message["seq"])
        self._unacked.pop(key, None)
        timer = self._retry_timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    def _upcall(self, inner_type: str, src: str, payload: dict) -> None:
        upcall = self._upcalls.get(inner_type)
        if upcall is None:
            self._undelivered.setdefault(inner_type, []).append((src, payload))
            return
        upcall(src, payload)

    def __repr__(self) -> str:
        return f"<ReliableTransport@{self.node.name} unacked={len(self._unacked)}>"
