"""Atomic broadcast (ABCAST): totally ordered, reliable delivery.

The paper's Section 3.1 definition: if one member of the group delivers
*m*, all non-crashed members eventually deliver *m* (atomicity), and any
two members delivering *m* and *m'* deliver them in the same order (total
order).

Two classic implementations are provided:

* :class:`SequencerAtomicBroadcast` — a fixed member assigns a global
  sequence number to every message; everyone delivers in sequence order.
  Two message hops, minimal cost, but the total order is only maintained
  while the sequencer stays up.  Used for failure-free experiments.
* :class:`ConsensusAtomicBroadcast` — the Chandra–Toueg reduction of
  atomic broadcast to a series of consensus instances on message batches.
  Tolerates a minority of crashes and unreliable failure detection; this is
  the primitive behind active replication's failure transparency.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..failures import FailureDetector
from ..net import Node
from ..sim import TraceLog
from .channels import ReliableTransport
from .consensus import Consensus
from .rbcast import ReliableBroadcast

__all__ = ["SequencerAtomicBroadcast", "ConsensusAtomicBroadcast"]

class SequencerAtomicBroadcast:
    """Fixed-sequencer ABCAST endpoint.

    ``abcast`` forwards the message to the sequencer (the first group
    member); the sequencer stamps it with the next global sequence number
    and reliably broadcasts the stamped message; members deliver stamped
    messages in sequence order via a hold-back queue.

    The sequencer is a single point of order: this implementation is the
    lightweight option for experiments without sequencer crashes (the
    paper's failure-free comparisons).  Use
    :class:`ConsensusAtomicBroadcast` when crashes must be masked.
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        deliver: Callable[[str, str, dict], None],
        trace: Optional[TraceLog] = None,
        channel_prefix: str = "seqab",
    ) -> None:
        self.node = node
        self.transport = transport
        self.group = list(group)
        self.deliver = deliver
        self.trace = trace
        self.sequencer = self.group[0]
        self._req_type = f"{channel_prefix}.req"
        self._next_seq = 0        # sequencer-side counter
        self._next_deliver = 0    # member-side hold-back cursor
        self._held: Dict[int, Tuple[str, str, dict]] = {}
        transport.on(self._req_type, self._on_request)
        self._order_rb = ReliableBroadcast(
            node, transport, group, self._on_order, channel=f"{channel_prefix}.order"
        )

    def abcast(self, mtype: str, **body: Any) -> str:
        """Atomically broadcast ``body`` to the group; returns the uid."""
        uid = f"{self.node.name}#{self.node.fresh_uid()}"
        self.transport.send(
            self.sequencer, self._req_type,
            uid=uid, origin=self.node.name, m=mtype, body=body,
        )
        return uid

    def _on_request(self, src: str, payload: dict) -> None:
        if self.node.name != self.sequencer:
            return  # stale request to a non-sequencer; ignore
        seq = self._next_seq
        self._next_seq += 1
        self._order_rb.broadcast(
            "order", seq=seq,
            uid=payload["uid"], origin=payload["origin"],
            m=payload["m"], body=payload["body"],
        )

    def _on_order(self, _origin: str, _mtype: str, body: dict) -> None:
        self._held[body["seq"]] = (body["origin"], body["m"], body["body"])
        while self._next_deliver in self._held:
            origin, mtype, inner = self._held.pop(self._next_deliver)
            if self.trace is not None:
                self.trace.record(
                    "abcast", self.node.name,
                    seq=self._next_deliver, origin=origin, mtype=mtype,
                )
            self._next_deliver += 1
            self.deliver(origin, mtype, inner)

    def __repr__(self) -> str:
        return f"<SequencerAtomicBroadcast@{self.node.name} seq={self.sequencer}>"


class ConsensusAtomicBroadcast:
    """Fault-tolerant ABCAST via reduction to consensus.

    Messages are first disseminated with reliable broadcast; members then
    agree, one consensus instance per batch, on the set of messages forming
    the next slice of the total order.  Within a decided batch, messages
    are delivered in deterministic uid order.  Decisions are applied in
    instance order, so the delivery sequence is identical everywhere.

    Tolerates crashes of any minority of the group, including mid-broadcast
    sender crashes, and works with the unreliable failure detector (wrong
    suspicions cost extra rounds, never safety).
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        detector: FailureDetector,
        deliver: Callable[[str, str, dict], None],
        trace: Optional[TraceLog] = None,
        channel_prefix: str = "ctab",
    ) -> None:
        self.node = node
        self.transport = transport
        self.group = list(group)
        self.deliver = deliver
        self.trace = trace
        self._unordered: Dict[str, Tuple[str, str, dict]] = {}
        self._delivered: Set[str] = set()
        self._next_instance = 0       # next instance this node may propose
        self._apply_cursor = 0        # next decision to apply
        self._decisions: Dict[int, list] = {}
        self._rb = ReliableBroadcast(
            node, transport, group, self._on_disseminate, channel=f"{channel_prefix}.msg"
        )
        self._consensus = Consensus(
            node, transport, group, detector, self._on_decide,
            trace=trace, channel_prefix=f"{channel_prefix}.ct",
        )

    def abcast(self, mtype: str, **body: Any) -> str:
        """Atomically broadcast ``body`` to the group; returns the uid."""
        uid = f"{self.node.name}#{self.node.fresh_uid()}"
        self._rb.broadcast("msg", uid=uid, origin=self.node.name, m=mtype, body=body)
        return uid

    # -- stage 1: dissemination ------------------------------------------------

    def _on_disseminate(self, _origin: str, _mtype: str, body: dict) -> None:
        uid = body["uid"]
        if uid in self._delivered or uid in self._unordered:
            return
        self._unordered[uid] = (body["origin"], body["m"], body["body"])
        self._maybe_propose()

    # -- stage 2: ordering -------------------------------------------------------

    def _maybe_propose(self) -> None:
        if not self._unordered:
            return
        if self._next_instance in self._decisions:
            return  # decision already known; will advance in _apply
        batch = [
            [uid, origin, mtype, body]
            for uid, (origin, mtype, body) in sorted(self._unordered.items())
        ]
        self._consensus.propose(self._next_instance, batch)

    def _on_decide(self, instance: int, batch: list) -> None:
        if instance in self._decisions or instance < self._apply_cursor:
            return
        self._decisions[instance] = batch
        self._apply_ready()

    def _apply_ready(self) -> None:
        while self._apply_cursor in self._decisions:
            batch = self._decisions.pop(self._apply_cursor)
            self._apply_cursor += 1
            self._next_instance = max(self._next_instance, self._apply_cursor)
            for uid, origin, mtype, body in batch:
                self._unordered.pop(uid, None)
                if uid in self._delivered:
                    continue
                self._delivered.add(uid)
                if self.trace is not None:
                    self.trace.record(
                        "abcast", self.node.name,
                        instance=self._apply_cursor - 1, uid=uid, mtype=mtype,
                    )
                self.deliver(origin, mtype, body)
        self._maybe_propose()

    def __repr__(self) -> str:
        return (
            f"<ConsensusAtomicBroadcast@{self.node.name} "
            f"delivered={len(self._delivered)} unordered={len(self._unordered)}>"
        )
