"""FIFO-ordered broadcast.

Adds to reliable broadcast the FIFO property the paper states in
Section 3.1: "if a process broadcasts a message m before a message m', then
no process delivers m' before m".  Implemented with per-origin sequence
numbers and a hold-back queue.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..net import Node
from ..sim import TraceLog
from .channels import ReliableTransport
from .rbcast import ReliableBroadcast

__all__ = ["FifoBroadcast"]


class FifoBroadcast:
    """Per-node FIFO broadcast endpoint over a static group."""

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        deliver: Callable[[str, str, dict], None],
        relay: bool = True,
        trace: Optional[TraceLog] = None,
        channel: str = "fifo.msg",
    ) -> None:
        self.node = node
        self.deliver = deliver
        self.trace = trace
        self._next_send = 0
        self._next_deliver: Dict[str, int] = {}
        self._held: Dict[str, Dict[int, tuple]] = {}
        self._rb = ReliableBroadcast(
            node, transport, group, self._on_rb_deliver, relay=relay, channel=channel
        )

    @property
    def group(self) -> List[str]:
        return self._rb.group

    def broadcast(self, mtype: str, **body: Any) -> None:
        """FIFO-broadcast ``body`` to the group."""
        seq = self._next_send
        self._next_send += 1
        self._rb.broadcast(mtype, _fifo_seq=seq, **body)

    def _on_rb_deliver(self, origin: str, mtype: str, body: dict) -> None:
        body = dict(body)
        seq = body.pop("_fifo_seq")
        held = self._held.setdefault(origin, {})
        held[seq] = (mtype, body)
        expected = self._next_deliver.get(origin, 0)
        while expected in held:
            mtype, body = held.pop(expected)
            expected += 1
            self._next_deliver[origin] = expected
            if self.trace is not None:
                self.trace.record(
                    "fifo", self.node.name, origin=origin, seq=expected - 1, mtype=mtype
                )
            self.deliver(origin, mtype, body)

    def __repr__(self) -> str:
        return f"<FifoBroadcast@{self.node.name}>"
